"""The Global Load Table (paper section 3.3).

Each server keeps its own best-effort copy of ``(Server, LoadMetric)``
rows.  Rows carry the origin server's measurement timestamp; merging two
tables keeps, per server, the row with the newest timestamp, which makes
merge commutative, associative and idempotent — gossip can arrive in any
order, duplicated, over any transfer, and every server converges to the
same table once communication quiesces.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.document import Location
from repro.http.piggyback import LoadReport


class GlobalLoadTable:
    """One server's local view of cluster load."""

    def __init__(self, own: Location) -> None:
        self.own = own
        self._rows: Dict[str, LoadReport] = {}
        self._ping_failures: Dict[str, int] = {}

    def update_own(self, metric: float, now: float) -> None:
        """Record this server's own measurement (always trusted)."""
        key = str(self.own)
        self._rows[key] = LoadReport(server=key, metric=metric, timestamp=now)

    def observe(self, report: LoadReport) -> bool:
        """Merge one piggybacked row; newest timestamp wins.

        Ties keep the existing row, so replaying a report is a no-op.
        Returns True when the table changed.
        """
        current = self._rows.get(report.server)
        if current is not None and current.timestamp >= report.timestamp:
            return False
        self._rows[report.server] = report
        self._ping_failures.pop(report.server, None)
        return True

    def merge(self, reports: Iterable[LoadReport]) -> int:
        """Merge many rows; returns how many changed the table."""
        return sum(1 for report in reports if self.observe(report))

    def snapshot(self) -> List[LoadReport]:
        """Every row, sorted by server name (deterministic piggyback order)."""
        return sorted(self._rows.values(), key=lambda r: r.server)

    def get(self, server: Location) -> Optional[LoadReport]:
        return self._rows.get(str(server))

    def servers(self) -> List[Location]:
        """Every known server, including this one."""
        return [Location.parse(key) for key in sorted(self._rows)]

    def peers(self) -> List[Location]:
        """Every known server except this one."""
        own_key = str(self.own)
        return [Location.parse(key) for key in sorted(self._rows) if key != own_key]

    def register(self, server: Location) -> None:
        """Introduce a peer with no measurement yet (metric 0 at t=-inf),
        so a fresh cluster can bootstrap before any gossip arrives."""
        key = str(server)
        if key not in self._rows:
            self._rows[key] = LoadReport(server=key, metric=0.0,
                                         timestamp=float("-inf"))

    def least_loaded(self, exclude: Sequence[Location] = ()) -> Optional[Location]:
        """The peer with the lowest metric (paper section 4.2: "the server
        with the lowest LoadMetric value is selected"), excluding this
        server and *exclude*; ties break by server name."""
        excluded = {str(self.own)} | {str(loc) for loc in exclude}
        best: Optional[LoadReport] = None
        for key in sorted(self._rows):
            if key in excluded:
                continue
            row = self._rows[key]
            if best is None or row.metric < best.metric:
                best = row
        return Location.parse(best.server) if best else None

    def mean_metric(self) -> float:
        """Mean metric across all known servers (including self)."""
        if not self._rows:
            return 0.0
        return sum(row.metric for row in self._rows.values()) / len(self._rows)

    def stale_peers(self, now: float, max_age: float) -> List[Location]:
        """Peers whose rows are older than *max_age* — pinger targets."""
        own_key = str(self.own)
        stale = [key for key, row in self._rows.items()
                 if key != own_key and now - row.timestamp > max_age]
        return [Location.parse(key) for key in sorted(stale)]

    def record_ping_failure(self, server: Location) -> int:
        """Count a failed ping; returns the consecutive-failure count."""
        key = str(server)
        self._ping_failures[key] = self._ping_failures.get(key, 0) + 1
        return self._ping_failures[key]

    def clear_ping_failures(self, server: Location) -> None:
        self._ping_failures.pop(str(server), None)

    def remove(self, server: Location) -> None:
        """Drop a server declared dead."""
        key = str(server)
        self._rows.pop(key, None)
        self._ping_failures.pop(key, None)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, server: object) -> bool:
        if isinstance(server, Location):
            return str(server) in self._rows
        return isinstance(server, str) and server in self._rows
