"""The local-document-graph tuple (paper Figure 2).

Each document a server knows about is one :class:`DocumentRecord`::

    (Name, Location, Size, Hits, LinkTo, LinkFrom, Dirty)

``Name`` is the request path (``/dir/foo.html``) and doubles as the disk
file name.  ``Location`` is the server currently hosting the document.
``LinkTo``/``LinkFrom`` are document names on the same site; ``LinkFrom``
is maintained as the exact transpose of ``LinkTo`` by
:class:`~repro.core.ldg.LocalDocumentGraph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set


@dataclass(frozen=True)
class Location:
    """A server identity: ``host:port``.

    Server names in the GLT and in ``Location`` fields use this one type so
    comparisons are never string-formatting-sensitive.
    """

    host: str
    port: int

    @classmethod
    def parse(cls, text: str) -> "Location":
        host, sep, port_text = text.partition(":")
        if not sep or not host:
            raise ValueError(f"malformed location: {text!r}")
        return cls(host, int(port_text))

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass
class DocumentRecord:
    """One tuple of the local document graph.

    Beyond the paper's seven fields this carries ``entry_point`` (step 2 of
    Algorithm 1 must never migrate well-known entry points), ``embedded_in``
    (names of documents embedding this one as an image/frame, a subset of
    ``link_from``), a ``version`` counter driving validation (section 4.5),
    and ``replicas`` for the replication extension.
    """

    name: str
    location: Location
    size: int
    hits: int = 0
    link_to: Set[str] = field(default_factory=set)
    link_from: Set[str] = field(default_factory=set)
    dirty: bool = False

    entry_point: bool = False
    content_type: str = "text/html"
    version: int = 0
    # Strong content digest of the identity body at ``version``
    # (``sha256:<hex>``; "" when never computed).  Anchors bit-rot and
    # in-transit verification — see repro.server.integrity.
    digest: str = ""
    # Recent-window hits, reset each stats interval; Algorithm 1 selects on
    # these so selection tracks the *current* access pattern.
    window_hits: int = 0
    # Extra locations when replication (future work) is enabled.
    replicas: Set[Location] = field(default_factory=set)

    @property
    def is_html(self) -> bool:
        return self.content_type.startswith("text/html")

    def locations(self) -> Set[Location]:
        """Primary location plus replicas."""
        return {self.location} | set(self.replicas)

    def record_hit(self, count: int = 1) -> None:
        self.hits += count
        self.window_hits += count

    def reset_window(self) -> None:
        self.window_hits = 0
