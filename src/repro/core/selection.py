"""Algorithm 1: Document Selection for Migration (paper Figure 4).

Given a home server's local document graph and a hit threshold ``T``:

1. Candidate set C = all documents in the graph.
2. Remove well-known entry points; if C is empty, return nil.
3. Remove documents with load below T; if that empties C, restore it and
   retry with a reduced T until non-empty.
4. Among C, keep the documents pointed to by a minimal number of LinkFrom
   documents that do not reside on the home server.
5. If several remain, pick one pointing to a minimal number of LinkTo
   documents.

Step 3 ensures migrations are worth their cost; step 4 minimizes network
traffic for regenerating referrers hosted remotely; step 5 keeps the
migrated document itself cheap to keep consistent.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.document import DocumentRecord
from repro.core.ldg import LocalDocumentGraph


def eligible_candidates(
    graph: LocalDocumentGraph,
    threshold: float,
    *,
    reduction_factor: float = 0.5,
    protect_entry_points: bool = True,
) -> List[DocumentRecord]:
    """Steps 1-3 of Algorithm 1: the candidate set after entry-point and
    threshold filtering.

    ``protect_entry_points=False`` skips step 2 — an ablation knob used to
    quantify the entry-points hypothesis (section 3.1), never the default.
    """
    # Step 1 (restricted to home-resident documents) and step 2.
    candidates = [record for record in graph.documents()
                  if record.location == graph.home
                  and (not protect_entry_points or not record.entry_point)]
    if not candidates:
        return []

    # Step 3, with threshold reduction.  A document with zero recent hits
    # "does not do much good for load balancing", so zero-hit documents are
    # never selected no matter how far the threshold falls.
    candidates = [record for record in candidates if record.window_hits > 0]
    if not candidates:
        return []
    effective = threshold
    while effective > 1.0:
        filtered = [r for r in candidates if r.window_hits >= effective]
        if filtered:
            candidates = filtered
            break
        effective *= reduction_factor
    return candidates


def select_documents_for_migration(
    graph: LocalDocumentGraph,
    threshold: float,
    *,
    reduction_factor: float = 0.5,
    count: int = 1,
    protect_entry_points: bool = True,
) -> List[DocumentRecord]:
    """Run Algorithm 1 and return up to *count* documents to migrate.

    Only documents currently at home are candidates (a document already on
    a co-op cannot be migrated again by its home; re-migration goes through
    revocation first).  Load is the recent-window hit count.  Returns an
    empty list when the graph holds nothing but entry points or already-
    migrated documents.
    """
    candidates = eligible_candidates(
        graph, threshold, reduction_factor=reduction_factor,
        protect_entry_points=protect_entry_points)
    if not candidates:
        return []

    selected: List[DocumentRecord] = []
    remaining = list(candidates)
    for _ in range(max(1, count)):
        choice = _select_one(graph, remaining)
        if choice is None:
            break
        selected.append(choice)
        remaining = [r for r in remaining if r.name != choice.name]
    return selected


def _select_one(graph: LocalDocumentGraph,
                candidates: List[DocumentRecord]) -> Optional[DocumentRecord]:
    if not candidates:
        return None
    # Step 4: minimal count of remote LinkFrom referrers.
    remote_counts = {r.name: graph.remote_linkfrom_count(r.name)
                     for r in candidates}
    minimum_remote = min(remote_counts.values())
    step4 = [r for r in candidates if remote_counts[r.name] == minimum_remote]
    if len(step4) == 1:
        return step4[0]
    # Step 5: minimal LinkTo fan-out; remaining ties break toward the
    # hottest document (best balancing effect), then by name (determinism).
    minimum_fanout = min(len(r.link_to) for r in step4)
    step5 = [r for r in step4 if len(r.link_to) == minimum_fanout]
    step5.sort(key=lambda r: (-r.window_hits, r.name))
    return step5[0]
