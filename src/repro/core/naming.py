"""The migrated-document naming convention (paper section 3.4).

A document ``/dir1/dir2/foo.html`` whose home server is ``h_name:h_port``
is addressed on a co-op server as::

    http://c_name:c_port/~migrate/h_name/h_port/dir1/dir2/foo.html

The co-op recovers the original URL by stripping everything up to and
including the ``~migrate`` component and re-assembling host, port and path
from the following segments.  The encoding is self-describing: co-op
servers need no out-of-band state to know which home server to pull from.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.document import Location
from repro.errors import NamingError
from repro.http.urls import URL, split_path

MIGRATE_MARKER = "~migrate"

# Replication extension: a home server's redirect for a replicated
# document names every live holder (comma-separated ``host:port``) so
# requesters can apply power-of-two-choices — and fail over — without a
# second round trip.  Shared by the engine (writer) and the real client
# (reader); ordinary clients ignore the extension header.
REPLICAS_HEADER = "X-DCWS-Replicas"


def encode_migrated_path(home: Location, path: str) -> str:
    """Encode *path* (on its *home* server) into the co-op request path.

    >>> encode_migrated_path(Location("www.cs.arizona.edu", 80), "/a/foo.html")
    '/~migrate/www.cs.arizona.edu/80/a/foo.html'
    """
    if not path.startswith("/"):
        raise NamingError(f"document path must be absolute: {path!r}")
    if is_migrated_path(path):
        raise NamingError(f"path is already in migrated form: {path!r}")
    return f"/{MIGRATE_MARKER}/{home.host}/{home.port}{path}"


def decode_migrated_path(path: str) -> Tuple[Location, str]:
    """Recover ``(home, original_path)`` from a migrated-form path.

    >>> decode_migrated_path("/~migrate/www.cs.arizona.edu/80/a/foo.html")
    (Location(host='www.cs.arizona.edu', port=80), '/a/foo.html')
    """
    segments = split_path(path)
    if not segments or segments[0] != MIGRATE_MARKER:
        raise NamingError(f"not a migrated-form path: {path!r}")
    if len(segments) < 4:
        raise NamingError(f"migrated-form path too short: {path!r}")
    host = segments[1]
    try:
        port = int(segments[2])
    except ValueError as exc:
        raise NamingError(f"migrated-form path has bad port: {path!r}") from exc
    if not (0 < port < 65536):
        raise NamingError(f"migrated-form path port out of range: {path!r}")
    original = "/" + "/".join(segments[3:])
    return Location(host, port), original


def is_migrated_path(path: str) -> bool:
    """True when *path*'s first component is ``~migrate``."""
    return path.startswith(f"/{MIGRATE_MARKER}/")


def migrated_url(coop: Location, home: Location, path: str) -> URL:
    """The full URL a hyperlink is rewritten to after migration.

    This is the exact string embedded into referring documents by the
    rewriter, and the ``Location`` header value of the home server's 301.
    """
    return URL(host=coop.host, port=coop.port,
               path=encode_migrated_path(home, path))


def home_url(home: Location, path: str) -> URL:
    """The original (pre-migration) URL of a document."""
    return URL(host=home.host, port=home.port, path=path)
