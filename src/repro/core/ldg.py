"""The Local Document Graph (paper section 3.3, Figure 2).

Each server maintains one LDG for the documents it is the *home* of: a
hash table from document name to its
``(Name, Location, Size, Hits, LinkTo, LinkFrom, Dirty)`` tuple.  The graph
is computed at server start by scanning the disk and parsing every HTML
document, and mutated afterwards by migrations, revocations, and content
updates.

Maintained invariants (property-tested in ``tests/property``):

- ``LinkFrom`` is the exact transpose of ``LinkTo`` over documents present
  in the graph;
- migrating a document sets ``Dirty`` on precisely its ``LinkFrom``
  documents and nothing else;
- entry points always have ``Location == home``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.core.document import DocumentRecord, Location
from repro.errors import DocumentNotFound, MigrationError


class LocalDocumentGraph:
    """Hash-indexed document tuples plus transpose-maintained link edges."""

    def __init__(self, home: Location, *,
                 enforce_entry_home: bool = True) -> None:
        self.home = home
        # Algorithm 1 step 2 invariant; relaxed only by the entry-point
        # ablation (ServerConfig.protect_entry_points=False).
        self.enforce_entry_home = enforce_entry_home
        self._records: Dict[str, DocumentRecord] = {}

    # ------------------------------------------------------------------
    # Construction and structure maintenance
    # ------------------------------------------------------------------

    def add_document(self, name: str, size: int, *,
                     content_type: str = "text/html",
                     entry_point: bool = False,
                     link_to: Iterable[str] = ()) -> DocumentRecord:
        """Register a document homed on this server.

        ``link_to`` may name documents added later; transpose edges are
        (re)established as soon as both endpoints exist.
        """
        if name in self._records:
            raise MigrationError(f"document already in graph: {name!r}")
        record = DocumentRecord(name=name, location=self.home, size=size,
                                content_type=content_type,
                                entry_point=entry_point)
        self._records[name] = record
        self.set_links(name, link_to)
        # Documents added earlier may already point at this one.
        for other in self._records.values():
            if name in other.link_to:
                record.link_from.add(other.name)
        return record

    def remove_document(self, name: str) -> None:
        """Delete a document and all edges touching it."""
        record = self.get(name)
        for target in list(record.link_to):
            target_record = self._records.get(target)
            if target_record is not None:
                target_record.link_from.discard(name)
        for source in list(record.link_from):
            source_record = self._records.get(source)
            if source_record is not None:
                source_record.link_to.discard(name)
        del self._records[name]

    def set_links(self, name: str, link_to: Iterable[str]) -> None:
        """Replace *name*'s outgoing edges, keeping transposes exact.

        Called at build time and again when an administrator edits a page
        (the LDG "is intended to be a dynamic structure").
        """
        record = self.get(name)
        new_targets: Set[str] = {t for t in link_to if t != name}
        for removed in record.link_to - new_targets:
            removed_record = self._records.get(removed)
            if removed_record is not None:
                removed_record.link_from.discard(name)
        for added in new_targets - record.link_to:
            added_record = self._records.get(added)
            if added_record is not None:
                added_record.link_from.add(name)
        record.link_to = new_targets

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, name: str) -> DocumentRecord:
        record = self._records.get(name)
        if record is None:
            raise DocumentNotFound(name)
        return record

    def find(self, name: str) -> Optional[DocumentRecord]:
        return self._records.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._records

    def __len__(self) -> int:
        return len(self._records)

    def documents(self) -> Iterator[DocumentRecord]:
        return iter(self._records.values())

    def names(self) -> List[str]:
        return sorted(self._records)

    def entry_points(self) -> List[DocumentRecord]:
        return [r for r in self._records.values() if r.entry_point]

    def migrated_documents(self) -> List[DocumentRecord]:
        """Documents currently hosted away from home."""
        return [r for r in self._records.values() if r.location != self.home]

    # ------------------------------------------------------------------
    # Hits
    # ------------------------------------------------------------------

    def record_hit(self, name: str, count: int = 1) -> None:
        self.get(name).record_hit(count)

    def reset_windows(self) -> None:
        """Zero the per-window hit counters (each stats interval)."""
        for record in self._records.values():
            record.reset_window()

    def total_hits(self) -> int:
        return sum(r.hits for r in self._records.values())

    # ------------------------------------------------------------------
    # Migration bookkeeping (paper section 4.2)
    # ------------------------------------------------------------------

    def mark_migrated(self, name: str, coop: Location) -> List[str]:
        """Logically migrate *name* to *coop*.

        Updates ``Location``, sets ``Dirty`` on every ``LinkFrom`` document
        so referrers are regenerated with rewritten hyperlinks on their
        next request, and bumps referrer versions so co-op-hosted referrers
        are refreshed by validation.  Returns the dirtied names.
        """
        record = self.get(name)
        if record.entry_point and self.enforce_entry_home:
            raise MigrationError(f"cannot migrate entry point: {name!r}")
        if coop == self.home:
            raise MigrationError(f"cannot migrate {name!r} to its own home")
        record.location = coop
        self._dirty_self(record)
        return self._dirty_referrers(record)

    def mark_revoked(self, name: str) -> List[str]:
        """Return *name* to its home server, dirtying referrers again."""
        record = self.get(name)
        if record.location == self.home and not record.replicas:
            raise MigrationError(f"document is not migrated: {name!r}")
        record.location = self.home
        record.replicas.clear()
        self._dirty_self(record)
        return self._dirty_referrers(record)

    def add_replica(self, name: str, coop: Location) -> List[str]:
        """Replication extension: host *name* on an additional co-op."""
        record = self.get(name)
        if record.entry_point:
            raise MigrationError(f"cannot replicate entry point: {name!r}")
        if coop == self.home or coop in record.locations():
            raise MigrationError(f"replica location invalid for {name!r}: {coop}")
        if record.location == self.home:
            # First replica: treat like a primary migration.
            record.location = coop
        else:
            record.replicas.add(coop)
        self._dirty_self(record)
        return self._dirty_referrers(record)

    def drop_holder(self, name: str, dead: Location) -> List[str]:
        """Replication groups: remove *dead* from *name*'s holder set.

        When the primary died the lowest-sorted surviving replica is
        promoted to primary, so the document stays migrated instead of
        bouncing home.  Raises :class:`MigrationError` when *dead* is not
        a holder or no live holder would survive (callers revoke then).
        Returns the dirtied referrer names; the version bump from
        ``_dirty_self`` invalidates cached responses whose rewritten
        links may still point at the dead holder.
        """
        record = self.get(name)
        if dead not in record.locations():
            raise MigrationError(f"{dead} does not hold {name!r}")
        survivors = sorted(
            (loc for loc in record.locations() if loc != dead), key=str)
        if not survivors or survivors == [self.home]:
            raise MigrationError(f"no surviving holder for {name!r}")
        if record.location == dead:
            promoted = survivors[0]
            record.location = promoted
            record.replicas.discard(promoted)
        record.replicas.discard(dead)
        self._dirty_self(record)
        return self._dirty_referrers(record)

    def _dirty_self(self, record: DocumentRecord) -> None:
        """A relocated document's own hyperlinks must be rewritten to
        absolute URLs (it may now be served from a foreign path), and its
        version bumped so co-op copies refresh at validation."""
        if record.content_type.startswith("text/html"):
            record.dirty = True
        record.version += 1

    def dirty_referrers(self, name: str) -> List[str]:
        """Set ``Dirty`` on every referrer of *name*; returns their names."""
        return self._dirty_referrers(self.get(name))

    def _dirty_referrers(self, record: DocumentRecord) -> List[str]:
        dirtied: List[str] = []
        for referrer_name in sorted(record.link_from):
            referrer = self._records.get(referrer_name)
            if referrer is None:
                continue
            referrer.dirty = True
            referrer.version += 1
            dirtied.append(referrer_name)
        return dirtied

    def remote_linkfrom_count(self, name: str) -> int:
        """How many referrers of *name* are not currently on this server
        (Algorithm 1 step 4 minimizes this)."""
        record = self.get(name)
        count = 0
        for referrer_name in record.link_from:
            referrer = self._records.get(referrer_name)
            if referrer is not None and referrer.location != self.home:
                count += 1
        return count

    # ------------------------------------------------------------------
    # Invariant checking (used by property tests and the simulator's
    # self-checks)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`AssertionError` on any violated LDG invariant."""
        for record in self._records.values():
            for target in record.link_to:
                target_record = self._records.get(target)
                if target_record is not None:
                    assert record.name in target_record.link_from, (
                        f"missing transpose edge {record.name} -> {target}")
            for source in record.link_from:
                source_record = self._records.get(source)
                if source_record is not None:
                    assert record.name in source_record.link_to, (
                        f"dangling transpose edge {source} -> {record.name}")
            if record.entry_point and self.enforce_entry_home:
                assert record.location == self.home, (
                    f"entry point {record.name} migrated to {record.location}")
