"""Load metrics: connections per second (CPS) and bytes per second (BPS).

The paper's evaluation (section 5.3) uses CPS and BPS as its two
performance measures and chooses CPS as the load-balancing metric because
typical web transfers are small; BPS is noted as the better metric for
large-file workloads such as the Sequoia data set.  Both are computed here
over a sliding window so a server's ``LoadMetric`` reflects *recent* load,
matching the statistics re-calculation interval T_st.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Deque, Tuple

from repro.errors import ConfigError


class LoadMetricKind(str, Enum):
    """Which measurement a server reports as its GLT ``LoadMetric``."""

    CPS = "cps"
    BPS = "bps"


class WindowCounter:
    """Events-per-second over a fixed sliding time window.

    Events are recorded with a (timestamp, weight) pair; queries prune
    entries older than the window.  Timestamps must be non-decreasing per
    counter, which both the simulator (single virtual clock) and the real
    server (monotonic clock under a lock) guarantee.
    """

    __slots__ = ("window", "_events", "_total_weight", "_lifetime_weight",
                 "_lifetime_count")

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ConfigError(f"window must be positive, got {window!r}")
        self.window = window
        self._events: Deque[Tuple[float, float]] = deque()
        self._total_weight = 0.0
        self._lifetime_weight = 0.0
        self._lifetime_count = 0

    def record(self, now: float, weight: float = 1.0) -> None:
        """Record an event of *weight* at time *now*."""
        self._events.append((now, weight))
        self._total_weight += weight
        self._lifetime_weight += weight
        self._lifetime_count += 1
        self._prune(now)

    def rate(self, now: float) -> float:
        """Weighted events per second over the window ending at *now*."""
        self._prune(now)
        return self._total_weight / self.window

    def count_in_window(self, now: float) -> int:
        """Number of events still inside the window."""
        self._prune(now)
        return len(self._events)

    @property
    def lifetime_total(self) -> float:
        """Sum of all weights ever recorded (never pruned)."""
        return self._lifetime_weight

    @property
    def lifetime_count(self) -> int:
        """Number of events ever recorded (never pruned)."""
        return self._lifetime_count

    def _prune(self, now: float) -> None:
        cutoff = now - self.window
        events = self._events
        while events and events[0][0] <= cutoff:
            __, weight = events.popleft()
            self._total_weight -= weight
        if not events:
            self._total_weight = 0.0  # absorb float drift


@dataclass
class ServerMetrics:
    """A server's own measurements, from which it derives its GLT row.

    Connections, bytes and drops are recorded by the request path; the
    statistics module reads ``cps``/``bps`` at each T_st boundary.
    """

    window: float

    def __post_init__(self) -> None:
        self.connections = WindowCounter(self.window)
        self.bytes = WindowCounter(self.window)
        # Drops arrive in bursts separated by client backoff, so their
        # rate is averaged over several stats windows to give the
        # drop-pressure signal a stable value between bursts.
        self.drops = WindowCounter(self.window * 4)
        self.redirects = WindowCounter(self.window)
        self.reconstructions = WindowCounter(self.window)

    def record_connection(self, now: float, bytes_sent: int) -> None:
        self.connections.record(now)
        self.bytes.record(now, float(bytes_sent))

    def record_drop(self, now: float) -> None:
        self.drops.record(now)

    def record_redirect(self, now: float) -> None:
        self.redirects.record(now)

    def record_reconstruction(self, now: float) -> None:
        self.reconstructions.record(now)

    def cps(self, now: float) -> float:
        return self.connections.rate(now)

    def bps(self, now: float) -> float:
        return self.bytes.rate(now)

    def load_metric(self, now: float, kind: LoadMetricKind,
                    drop_pressure_weight: float = 0.0) -> float:
        """The value this server advertises in its GLT row.

        ``drop_pressure_weight`` is an extension beyond the paper: each
        dropped connection per second adds that many units of advertised
        load, so a machine shedding requests looks *loaded* even when its
        raw CPS is low (essential on heterogeneous clusters, where a slow
        machine's low CPS otherwise reads as idleness).
        """
        base = self.cps(now) if kind is LoadMetricKind.CPS else self.bps(now)
        if drop_pressure_weight > 0.0:
            base += drop_pressure_weight * self.drops.rate(now)
        return base
