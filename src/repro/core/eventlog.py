"""Structured event log for operational visibility.

Every consequential action a DCWS server takes — migrations, revocations,
lazy pulls, validations, pings, dead-peer declarations — is recorded as a
typed :class:`Event` in a bounded ring buffer.  The admin status endpoint
(:mod:`repro.server.admin`) renders it; tests and benches query it to
assert *why* the system did what it did, not just the end state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional

#: Known event kinds, for discoverability (the log accepts any string).
EVENT_KINDS = (
    "migrate", "remigrate", "revoke", "replicate",
    "pull", "pull_failed", "validate", "validate_refreshed",
    "ping", "peer_dead", "regenerate", "content_update",
    "checkpoint", "recover",
)


@dataclass(frozen=True)
class Event:
    """One logged occurrence."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        details = " ".join(f"{key}={value}"
                           for key, value in sorted(self.fields.items()))
        return f"[{self.time:10.3f}] {self.kind:<18} {details}".rstrip()


class EventLog:
    """A bounded, append-only log of :class:`Event` records."""

    def __init__(self, capacity: int = 1000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self._events: Deque[Event] = deque(maxlen=capacity)
        self._counts: Dict[str, int] = {}

    def record(self, time: float, kind: str, **fields: Any) -> Event:
        """Append an event; returns it (handy for chaining in tests)."""
        event = Event(time=time, kind=kind, fields=dict(fields))
        self._events.append(event)
        self._counts[kind] = self._counts.get(kind, 0) + 1
        return event

    def events(self, kind: Optional[str] = None,
               since: float = float("-inf")) -> List[Event]:
        """Events still in the buffer, optionally filtered."""
        return [event for event in self._events
                if event.time >= since and (kind is None or event.kind == kind)]

    def count(self, kind: str) -> int:
        """Lifetime count for *kind* (survives ring-buffer eviction)."""
        return self._counts.get(kind, 0)

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def last(self, kind: Optional[str] = None) -> Optional[Event]:
        for event in reversed(self._events):
            if kind is None or event.kind == kind:
                return event
        return None

    def tail(self, limit: int = 20) -> List[Event]:
        """The most recent *limit* events, oldest first."""
        if limit <= 0:
            return []
        return list(self._events)[-limit:]

    def render_tail(self, limit: int = 20) -> str:
        return "\n".join(event.render() for event in self.tail(limit))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)
