"""Adaptive cluster membership: accrual failure detection + rediscovery.

The paper's prototype declares a co-op dead after a fixed number of
consecutive failed pings (section 4.5, case 3) and then forgets it: the
peer is dropped from the GLT, so the pinger never probes it again and a
*falsely*-dead peer — merely slow, or behind a transient partition — can
only return via gossip from a third server that still remembers it.  The
delay-aware load-management line of work (Skowron & Rzadca) argues both
detection and targeting should key off *measured per-peer timing* rather
than fixed counts.  This module provides that machinery, transport-free
so the real hosts and the simulator share it:

- :class:`AccrualFailureDetector` — a φ-style suspicion score computed
  from the inter-arrival distribution of per-peer successes (pings,
  pulls, validations, piggybacked gossip alike).  Silence is judged
  against how often the peer *usually* talks to us, not a fixed count.
- :class:`MembershipTable` — the per-peer **alive → suspect → dead →
  forgotten** state machine.  A slow peer degrades to *suspect*
  (excluded from migration/repair targets, its hosted documents kept)
  before it is ever declared dead; explicit transport failures escalate
  faster than silence.  Dead transitions are *recommended*, never
  self-applied — the engine applies them exactly once through its
  journaled ``_declare_dead`` path, which makes the historical
  double-declaration (ping path and pull path racing in one tick)
  structurally impossible.
- A rediscovery schedule: dead/forgotten peers from the static
  configured peer list are re-probed at a jittered, exponentially
  backed-off low rate, so a false death heals without external gossip.

All timestamps are the caller's explicit ``now`` (monotonic in the real
hosts, virtual in the simulator); nothing here reads a wall clock.
"""

from __future__ import annotations

import math
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"
FORGOTTEN = "forgotten"

_LN10 = math.log(10.0)


class AccrualFailureDetector:
    """φ-style suspicion from per-peer success inter-arrival times.

    Each :meth:`heartbeat` records one success arrival; :meth:`phi`
    scores the current silence against the learned arrival process.
    Modelling inter-arrivals as exponential with scale ``mean + stddev``
    (the +stddev widens the model so pure jitter is absorbed), the
    probability a live peer stays silent for *t* seconds is
    ``exp(-t / scale)`` and::

        phi(t) = -log10 P(silence >= t) = t / (scale * ln 10)

    so phi 1 means 90 % confidence the peer is gone, phi 2 means 99 %,
    and so on.  Peers with fewer than ``min_samples`` observed intervals
    score 0 — silence from a peer we have barely heard from is not
    evidence (bootstrap safety).  ``floor`` is the minimum modelled
    scale: hosts pass their guaranteed heartbeat cadence (the pinger
    interval) so a burst of rapid data-path successes cannot shrink the
    model below the rate at which heartbeats are actually promised.
    """

    def __init__(self, *, window: int = 32, min_samples: int = 3,
                 floor: float = 0.1) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        if min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        if floor <= 0:
            raise ValueError("floor must be positive")
        self.window = window
        self.min_samples = min_samples
        self.floor = floor
        self._last: Dict[str, float] = {}
        self._intervals: Dict[str, Deque[float]] = {}

    def heartbeat(self, peer: str, now: float) -> None:
        """Record one success arrival from *peer* at *now*."""
        last = self._last.get(peer)
        if last is not None:
            interval = now - last
            if interval > 0.0:
                bucket = self._intervals.get(peer)
                if bucket is None:
                    bucket = self._intervals[peer] = deque(
                        maxlen=self.window)
                bucket.append(interval)
        # Same-instant repeats (piggyback bursts in one tick) refresh the
        # arrival time without recording a zero-length interval that
        # would drag the modelled scale toward zero.
        self._last[peer] = max(now, last) if last is not None else now

    def interval_scale(self, peer: str) -> Optional[float]:
        """The modelled inter-arrival scale (mean + stddev, floored), or
        ``None`` while the peer is still in its bootstrap window."""
        bucket = self._intervals.get(peer)
        if bucket is None or len(bucket) < self.min_samples:
            return None
        mean = sum(bucket) / len(bucket)
        variance = sum((x - mean) ** 2 for x in bucket) / len(bucket)
        return max(mean + math.sqrt(variance), self.floor)

    def phi(self, peer: str, now: float) -> float:
        """Current suspicion of *peer*; 0.0 while bootstrapping."""
        last = self._last.get(peer)
        scale = self.interval_scale(peer)
        if last is None or scale is None:
            return 0.0
        elapsed = now - last
        if elapsed <= 0.0:
            return 0.0
        return elapsed / (scale * _LN10)

    def last_arrival(self, peer: str) -> Optional[float]:
        return self._last.get(peer)

    def forget(self, peer: str) -> None:
        """Drop *peer*'s history (declared dead: the old arrival rhythm
        must not instantly re-condemn it after a rejoin)."""
        self._last.pop(peer, None)
        self._intervals.pop(peer, None)


@dataclass
class MembershipCounters:
    """Lifetime membership activity, summed by the cluster sampler."""

    suspicions: int = 0         # transitions into SUSPECT
    deaths: int = 0             # transitions into DEAD
    rediscoveries: int = 0      # DEAD/FORGOTTEN -> ALIVE (false deaths)
    probes_sent: int = 0        # rediscovery probes emitted
    reconcile_drops: int = 0            # rejoin copies that lost
    reconcile_reregistrations: int = 0  # rejoin copies re-registered


@dataclass
class _PeerEntry:
    state: str = ALIVE
    since: float = 0.0
    failures: int = 0           # consecutive explicit transport failures
    configured: bool = False    # on the static peer list (re-probe-able)
    probe_attempts: int = 0
    next_probe_at: float = 0.0
    last_backoff: float = 0.0   # the period behind next_probe_at
    probe_pending: bool = False


class MembershipTable:
    """The per-peer membership state machine and re-probe scheduler.

    Pure policy: transitions into SUSPECT/ALIVE/FORGOTTEN are applied
    here and *returned*; transitions into DEAD are only ever
    **recommended** (by :meth:`failure` and :meth:`sweep`) and applied by
    the caller via :meth:`mark_dead` — the engine's single journaled
    ``_declare_dead`` site — so death side effects (revocation, GLT
    removal, breaker trip, repair) run exactly once however many
    observation paths noticed the failure.
    """

    def __init__(self, *, suspect_phi: float = 2.0, dead_phi: float = 8.0,
                 failure_limit: int = 3, reprobe_interval: float = 5.0,
                 reprobe_backoff: float = 2.0,
                 reprobe_max_interval: float = 60.0,
                 reprobe_jitter: float = 0.1, forget_after: float = 300.0,
                 detector: Optional[AccrualFailureDetector] = None,
                 seed: int = 0) -> None:
        if not (0.0 < suspect_phi < dead_phi):
            raise ValueError("need 0 < suspect_phi < dead_phi")
        if failure_limit < 1:
            raise ValueError("failure_limit must be >= 1")
        if reprobe_interval <= 0:
            raise ValueError("reprobe_interval must be positive")
        if reprobe_backoff < 1.0:
            raise ValueError("reprobe_backoff must be >= 1")
        if reprobe_max_interval < reprobe_interval:
            raise ValueError(
                "reprobe_max_interval must be >= reprobe_interval")
        if reprobe_jitter < 0:
            raise ValueError("reprobe_jitter must be non-negative")
        if forget_after <= 0:
            raise ValueError("forget_after must be positive")
        self.suspect_phi = suspect_phi
        self.dead_phi = dead_phi
        self.failure_limit = failure_limit
        self.reprobe_interval = reprobe_interval
        self.reprobe_backoff = reprobe_backoff
        self.reprobe_max_interval = reprobe_max_interval
        self.reprobe_jitter = reprobe_jitter
        self.forget_after = forget_after
        self.detector = detector or AccrualFailureDetector()
        self.seed = seed
        self.counters = MembershipCounters()
        self._peers: Dict[str, _PeerEntry] = {}

    @classmethod
    def from_config(cls, config) -> "MembershipTable":
        """Build from a ``ServerConfig``, flooring the detector's modelled
        inter-arrival at the pinger interval — the cadence at which
        heartbeats are actually guaranteed."""
        detector = AccrualFailureDetector(
            window=config.membership_window,
            min_samples=config.membership_min_samples,
            floor=max(config.membership_floor, config.pinger_interval))
        return cls(suspect_phi=config.membership_suspect_phi,
                   dead_phi=config.membership_dead_phi,
                   failure_limit=config.ping_failure_limit,
                   reprobe_interval=config.reprobe_interval,
                   reprobe_backoff=config.reprobe_backoff,
                   reprobe_max_interval=config.reprobe_max_interval,
                   reprobe_jitter=config.reprobe_jitter,
                   forget_after=config.membership_forget_after,
                   detector=detector)

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------

    def register(self, peer: str, *, configured: bool = False,
                 now: float = 0.0) -> None:
        entry = self._peers.get(peer)
        if entry is None:
            self._peers[peer] = _PeerEntry(since=now, configured=configured)
        elif configured:
            entry.configured = True

    def _entry(self, peer: str, now: float) -> _PeerEntry:
        entry = self._peers.get(peer)
        if entry is None:
            entry = self._peers[peer] = _PeerEntry(since=now)
        return entry

    def state(self, peer: str) -> str:
        entry = self._peers.get(peer)
        return entry.state if entry is not None else ALIVE

    def is_dead(self, peer: str) -> bool:
        return self.state(peer) in (DEAD, FORGOTTEN)

    def is_suspect(self, peer: str) -> bool:
        return self.state(peer) == SUSPECT

    def phi(self, peer: str, now: float) -> float:
        return self.detector.phi(peer, now)

    # ------------------------------------------------------------------
    # Evidence: successes and explicit failures
    # ------------------------------------------------------------------

    def heartbeat(self, peer: str, now: float) -> Optional[Tuple[str, str]]:
        """A success arrived from *peer*.

        Feeds the detector, clears the failure count, and promotes the
        peer back to ALIVE.  Returns the applied ``(old, new)``
        transition when the state changed (``suspect -> alive`` recovery
        or ``dead/forgotten -> alive`` rejoin), else ``None``.
        """
        entry = self._entry(peer, now)
        self.detector.heartbeat(peer, now)
        entry.failures = 0
        if entry.state == ALIVE:
            return None
        old = entry.state
        entry.state = ALIVE
        entry.since = now
        entry.probe_attempts = 0
        entry.next_probe_at = 0.0
        entry.last_backoff = 0.0
        entry.probe_pending = False
        if old in (DEAD, FORGOTTEN):
            self.counters.rediscoveries += 1
        return (old, ALIVE)

    def failure(self, peer: str, now: float) -> Optional[str]:
        """An explicit transport failure toward *peer*.

        Escalates ``alive -> suspect`` immediately (applied here, the
        returned value is ``SUSPECT``); once ``failure_limit``
        consecutive failures accumulate, returns ``DEAD`` *without*
        applying it — the caller must route through its single declared-
        dead path.  Failures against already-dead peers (in-flight work
        completing after the declaration, missed rediscovery probes) are
        absorbed silently.
        """
        entry = self._entry(peer, now)
        if entry.state in (DEAD, FORGOTTEN):
            return None
        entry.failures += 1
        if entry.failures >= self.failure_limit:
            return DEAD
        if entry.state == ALIVE:
            entry.state = SUSPECT
            entry.since = now
            self.counters.suspicions += 1
            return SUSPECT
        return None

    def mark_dead(self, peer: str, now: float) -> bool:
        """Apply the DEAD transition; idempotent.

        Returns ``True`` when this call performed the transition (the
        caller then runs the death side effects exactly once) and
        ``False`` when the peer was already dead or forgotten.
        """
        entry = self._entry(peer, now)
        if entry.state in (DEAD, FORGOTTEN):
            return False
        entry.state = DEAD
        entry.since = now
        entry.failures = 0
        entry.probe_attempts = 0
        entry.probe_pending = False
        self._schedule_probe(peer, entry, now)
        self.detector.forget(peer)
        self.counters.deaths += 1
        return True

    # ------------------------------------------------------------------
    # Periodic evaluation (engine tick)
    # ------------------------------------------------------------------

    def sweep(self, now: float) -> Tuple[List[Tuple[str, str, str]],
                                         List[str]]:
        """Evaluate every peer's suspicion at *now*.

        Returns ``(transitions, deaths)``: *transitions* are applied
        ``(peer, old, new)`` state changes (``alive -> suspect`` when phi
        crossed the suspicion threshold, ``dead -> forgotten`` ageing);
        *deaths* are peers whose suspicion demands a DEAD declaration,
        returned unapplied for the caller's ``_declare_dead``.
        """
        transitions: List[Tuple[str, str, str]] = []
        deaths: List[str] = []
        for peer in sorted(self._peers):
            entry = self._peers[peer]
            if entry.state == ALIVE:
                if self.detector.phi(peer, now) >= self.suspect_phi:
                    entry.state = SUSPECT
                    entry.since = now
                    self.counters.suspicions += 1
                    transitions.append((peer, ALIVE, SUSPECT))
            elif entry.state == SUSPECT:
                if self.detector.phi(peer, now) >= self.dead_phi:
                    deaths.append(peer)
            elif entry.state == DEAD:
                if now - entry.since >= self.forget_after:
                    entry.state = FORGOTTEN
                    entry.since = now
                    transitions.append((peer, DEAD, FORGOTTEN))
        return transitions, deaths

    # ------------------------------------------------------------------
    # Rediscovery: jittered exponential re-probing of dead peers
    # ------------------------------------------------------------------

    def _backoff(self, peer: str, attempts: int) -> float:
        """The re-probe period after *attempts* probes, deterministically
        jittered per (peer, attempt) so replays reproduce exactly and
        co-located daemons do not probe in lockstep."""
        period = min(
            self.reprobe_interval * (self.reprobe_backoff ** attempts),
            self.reprobe_max_interval)
        token = f"{self.seed}:{peer}:{attempts}".encode("utf-8")
        fraction = (zlib.crc32(token) % 1000) / 999.0
        return period * (1.0 + self.reprobe_jitter * fraction)

    def _schedule_probe(self, peer: str, entry: _PeerEntry,
                        now: float) -> None:
        entry.last_backoff = self._backoff(peer, entry.probe_attempts)
        entry.next_probe_at = now + entry.last_backoff

    def due_probes(self, now: float) -> List[str]:
        """Configured dead/forgotten peers whose re-probe is due, sorted
        for determinism.  Only statically configured peers are probed —
        gossip-discovered strangers are somebody else's to rediscover."""
        due = [peer for peer, entry in self._peers.items()
               if entry.configured and entry.state in (DEAD, FORGOTTEN)
               and not entry.probe_pending and now >= entry.next_probe_at]
        return sorted(due)

    def probe_sent(self, peer: str, now: float) -> None:
        """One rediscovery probe left for *peer*: back off the next one.
        The slot stays closed until :meth:`probe_failed` or a heartbeat
        reopens it, so a slow in-flight probe is never duplicated."""
        entry = self._entry(peer, now)
        entry.probe_attempts += 1
        entry.probe_pending = True
        self._schedule_probe(peer, entry, now)
        self.counters.probes_sent += 1

    def probe_failed(self, peer: str, now: float) -> None:
        entry = self._peers.get(peer)
        if entry is not None:
            entry.probe_pending = False

    def reprobe_period(self, peer: str) -> float:
        """The current re-probe period (for "rediscovered within N
        re-probe periods" guarantees); 0 for peers not being probed."""
        entry = self._peers.get(peer)
        return entry.last_backoff if entry is not None else 0.0

    def reprobe_backlog(self) -> int:
        """How many configured peers await rediscovery."""
        return sum(1 for entry in self._peers.values()
                   if entry.configured and entry.state in (DEAD, FORGOTTEN))

    # ------------------------------------------------------------------
    # Introspection and persistence
    # ------------------------------------------------------------------

    def suspects(self) -> List[str]:
        return sorted(p for p, e in self._peers.items()
                      if e.state == SUSPECT)

    def dead_peers(self) -> List[str]:
        return sorted(p for p, e in self._peers.items()
                      if e.state in (DEAD, FORGOTTEN))

    def states(self) -> Dict[str, str]:
        return {peer: entry.state for peer, entry in self._peers.items()}

    def describe(self, peer: str) -> Dict[str, object]:
        entry = self._peers.get(peer)
        if entry is None:
            return {"state": ALIVE}
        return {
            "state": entry.state,
            "since": entry.since,
            "failures": entry.failures,
            "configured": entry.configured,
            "probe_attempts": entry.probe_attempts,
            "next_probe_at": entry.next_probe_at,
        }

    def install(self, peer: str, state: str, now: float) -> None:
        """Install *state* outright — journal replay and snapshot
        restore.  Idempotent, no counters, no recommendations: replaying
        a transition twice equals once."""
        if state not in (ALIVE, SUSPECT, DEAD, FORGOTTEN):
            return
        entry = self._entry(peer, now)
        if entry.state == state:
            return
        entry.state = state
        entry.since = now
        entry.failures = 0
        entry.probe_attempts = 0
        entry.probe_pending = False
        if state in (DEAD, FORGOTTEN):
            self._schedule_probe(peer, entry, now)
        else:
            entry.next_probe_at = 0.0
            entry.last_backoff = 0.0

    def snapshot(self) -> List[Dict[str, object]]:
        """Non-alive peers only (an absent row means alive), for the
        engine snapshot."""
        return [{"peer": peer, "state": entry.state, "since": entry.since}
                for peer, entry in sorted(self._peers.items())
                if entry.state != ALIVE]

    def restore(self, rows: List[Dict[str, object]], now: float) -> None:
        for row in rows:
            self.install(str(row.get("peer", "")),
                         str(row.get("state", "")), now)
