"""Migration policy: when to migrate, where to, and rate limiting.

Implements the decision procedure of paper section 4.2 on top of
Algorithm 1 (:mod:`repro.core.selection`):

- at each statistics re-calculation interval (T_st) an overloaded home
  server migrates at most ``max_migrations_per_interval`` documents
  (section 5.2: one file per 10 seconds);
- the target is the server with the lowest ``LoadMetric`` in the global
  load table, skipping co-ops that accepted a migration within the last
  T_coop seconds (60 s) so a co-op is never swamped before it can
  recalculate its own statistics;
- after T_home seconds (300 s) a home server may abandon a migration and
  re-migrate the document to a different co-op;
- all migrations are *logical*: only the LDG changes here; document bytes
  move lazily when the co-op first needs them.

The ``max_replicas`` extension (paper future work, section 6) lets a hot
document be hosted by several co-ops at once; referring links are spread
across the replica set by the engine's rewriter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.core.glt import GlobalLoadTable
from repro.core.ldg import LocalDocumentGraph
from repro.core.selection import (
    eligible_candidates,
    select_documents_for_migration,
)


@dataclass(frozen=True)
class MigrationDecision:
    """One applied (logical) migration, revocation, or replication.

    ``replica_drop`` removes a dead holder from a replication group
    (promoting a surviving replica to primary when the primary died);
    ``repair`` adds a replacement holder — both are issued by the
    autonomous repair machinery rather than the periodic load round.
    """

    name: str
    target: Location
    kind: str  # "migrate" | "revoke" | "remigrate" | "replicate"
               # | "replica_drop" | "repair"
    dirtied: Sequence[str] = ()


@dataclass
class _MigrationRecord:
    """Home-side bookkeeping for one migrated document."""

    coop: Location
    migrated_at: float
    replicas: Dict[str, float] = field(default_factory=dict)


class MigrationPolicy:
    """Stateful migration decision-maker for one home server."""

    def __init__(self, config: ServerConfig, graph: LocalDocumentGraph,
                 glt: GlobalLoadTable) -> None:
        self.config = config
        self.graph = graph
        self.glt = glt
        self._coop_last_accept: Dict[str, float] = {}
        self._migrations: Dict[str, _MigrationRecord] = {}
        # Optional availability predicate (set by the engine): peers whose
        # circuit breaker is open or that the health monitor holds dead
        # never receive new migrations, re-migrations, or replicas.
        self.peer_available: Optional[Callable[[Location], bool]] = None
        # Fired for every applied decision, from every decision site — the
        # engine hangs its write-ahead journal here so no migration can be
        # acknowledged without first being durable.
        self.on_decision: Optional[Callable[[MigrationDecision], None]] = None

    def _note(self, decision: MigrationDecision) -> MigrationDecision:
        if self.on_decision is not None:
            self.on_decision(decision)
        return decision

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def migrated_names(self) -> List[str]:
        return sorted(self._migrations)

    def migration_of(self, name: str) -> Optional[Location]:
        record = self._migrations.get(name)
        return record.coop if record else None

    def force_migrate(self, name: str, target: Location,
                      now: float) -> MigrationDecision:
        """Migrate *name* to *target* immediately, bypassing rate limits.

        Used by operators and by benchmark pre-warming (simulating a
        cluster that has already balanced itself); all bookkeeping matches
        a policy-driven migration, so revocation and re-migration work.
        """
        dirtied = self.graph.mark_migrated(name, target)
        self._migrations[name] = _MigrationRecord(coop=target, migrated_at=now)
        return self._note(MigrationDecision(
            name=name, target=target, kind="migrate", dirtied=tuple(dirtied)))

    # ------------------------------------------------------------------
    # Recovery (snapshot restore and journal replay)
    # ------------------------------------------------------------------

    def restore(self, name: str, coop: Location, migrated_at: float,
                replicas: Optional[Dict[str, float]] = None) -> None:
        """Re-install home-side bookkeeping for one migrated document.

        Pure state restoration: the LDG is untouched (the caller restores
        it separately), no decision fires, no rate-limit bookkeeping
        changes.  This is the supported way for persistence/recovery code
        to rebuild the migration table — never write ``_migrations``
        directly.
        """
        self._migrations[name] = _MigrationRecord(
            coop=coop, migrated_at=migrated_at,
            replicas=dict(replicas or {}))

    def discard(self, name: str) -> None:
        """Forget *name*'s migration record without touching the LDG.

        The replay-side complement of :meth:`restore`: journal replay of a
        revocation sets graph state directly (for idempotency) and uses
        this to keep the migration table consistent with it.
        """
        self._migrations.pop(name, None)

    def restored(self, name: str) -> Optional[Tuple[Location, float]]:
        """(coop, migrated_at) for *name*, if migrated — used by snapshot
        writers so they need no private-attribute access either."""
        record = self._migrations.get(name)
        if record is None:
            return None
        return record.coop, record.migrated_at

    def restored_replicas(self, name: str) -> Dict[str, float]:
        """Replica-addition times for *name* (snapshot writers)."""
        record = self._migrations.get(name)
        return dict(record.replicas) if record else {}

    # ------------------------------------------------------------------
    # Periodic decisions (driven by the statistics interval)
    # ------------------------------------------------------------------

    def consider(self, now: float, own_metric: float) -> List[MigrationDecision]:
        """Run one round of migration decisions.

        Called once per statistics interval with the server's current load
        metric.  Returns the decisions applied to the LDG (possibly none).
        """
        decisions: List[MigrationDecision] = []
        decisions.extend(self._consider_remigration(now))
        if self.config.max_replicas > 1:
            # Replication reacts to a *co-op* running hot, which can happen
            # whether or not this home server is itself overloaded.
            decisions.extend(self._consider_replication(now, own_metric))
        if not self._overloaded(own_metric):
            return decisions
        budget = self.config.max_migrations_per_interval - len(
            [d for d in decisions if d.kind in ("migrate", "remigrate")])
        for _ in range(max(0, budget)):
            decision = self._migrate_one(now, own_metric)
            if decision is None:
                break
            decisions.append(decision)
        return decisions

    def _overloaded(self, own_metric: float) -> bool:
        """Home migrates only when its load exceeds the cluster mean by the
        configured tolerance — with equal load nothing should move."""
        if len(self.glt) < 2:
            return False
        mean = self.glt.mean_metric()
        if mean <= 0.0:
            return own_metric > 0.0
        return own_metric > self.config.imbalance_tolerance * mean

    def _available(self, peer: Location) -> bool:
        return self.peer_available is None or self.peer_available(peer)

    def _unavailable_peers(self) -> List[Location]:
        """Peers the availability predicate currently rules out."""
        if self.peer_available is None:
            return []
        return [p for p in self.glt.peers() if not self.peer_available(p)]

    def _eligible_coops(self, now: float, own_metric: float) -> List[Location]:
        """Peers outside their T_coop cooldown, less loaded than we are,
        and currently reachable (closed circuit, not suspected dead)."""
        eligible: List[Location] = []
        for peer in self.glt.peers():
            if not self._available(peer):
                continue
            last = self._coop_last_accept.get(str(peer))
            if last is not None and now - last < self.config.coop_migration_spacing:
                continue
            row = self.glt.get(peer)
            if row is not None and row.metric < own_metric:
                eligible.append(peer)
        return eligible

    def _migrate_one(self, now: float,
                     own_metric: float) -> Optional[MigrationDecision]:
        eligible = self._eligible_coops(now, own_metric)
        if not eligible:
            return None
        target = self.glt.least_loaded(
            exclude=[p for p in self.glt.peers() if p not in eligible])
        if target is None:
            return None
        document = self._choose_document(now)
        if document is None:
            return None
        dirtied = self.graph.mark_migrated(document.name, target)
        self._coop_last_accept[str(target)] = now
        self._migrations[document.name] = _MigrationRecord(
            coop=target, migrated_at=now)
        return self._note(MigrationDecision(
            name=document.name, target=target, kind="migrate",
            dirtied=tuple(dirtied)))

    def _choose_document(self, now: float):
        """Pick the document to migrate per the configured policy.

        ``"paper"`` is Algorithm 1; ``"hottest"`` and ``"random"`` ablate
        the link-locality heuristics of steps 4-5 (the candidate filtering
        of steps 1-3 still applies to all policies).
        """
        config = self.config
        if config.selection_policy == "paper":
            chosen = select_documents_for_migration(
                self.graph, config.migration_hit_threshold,
                reduction_factor=config.threshold_reduction_factor,
                protect_entry_points=config.protect_entry_points)
            return chosen[0] if chosen else None
        candidates = eligible_candidates(
            self.graph, config.migration_hit_threshold,
            reduction_factor=config.threshold_reduction_factor,
            protect_entry_points=config.protect_entry_points)
        if not candidates:
            return None
        if config.selection_policy == "hottest":
            return max(candidates, key=lambda r: (r.window_hits, r.name))
        # "random": deterministic pseudo-random pick keyed by time so runs
        # stay reproducible without a mutable RNG in the policy.
        index = hash((round(now, 6), len(candidates))) % len(candidates)
        return sorted(candidates, key=lambda r: r.name)[index]

    # ------------------------------------------------------------------
    # Re-migration after T_home (section 4.5, case 2)
    # ------------------------------------------------------------------

    def _consider_remigration(self, now: float) -> List[MigrationDecision]:
        """Abandon migrations whose co-op became the hot spot.

        A document is re-migrated when its migration is older than T_home
        and its current co-op's load exceeds the cluster mean by the
        imbalance tolerance while some other peer is below the mean.
        """
        decisions: List[MigrationDecision] = []
        mean = self.glt.mean_metric()
        if mean <= 0.0:
            return decisions
        # Hottest first (co-ops report hosted hits back on validations):
        # abandoning the migration of a document nobody requests would
        # not relieve the overloaded co-op.
        by_demand = sorted(
            self._migrations,
            key=lambda n: (-(self.graph.find(n).hits
                             if self.graph.find(n) else 0), n))
        for name in by_demand:
            record = self._migrations[name]
            if now - record.migrated_at < self.config.home_remigration_interval:
                continue
            coop_row = self.glt.get(record.coop)
            if coop_row is None:
                continue
            if coop_row.metric <= self.config.imbalance_tolerance * mean:
                continue
            target = self.glt.least_loaded(
                exclude=[record.coop] + self._unavailable_peers())
            target_row = self.glt.get(target) if target else None
            if target is None or target_row is None or target_row.metric >= mean:
                continue
            dirtied = self.graph.mark_revoked(name)
            dirtied_again = self.graph.mark_migrated(name, target)
            self._coop_last_accept[str(target)] = now
            self._migrations[name] = _MigrationRecord(coop=target, migrated_at=now)
            decisions.append(self._note(MigrationDecision(
                name=name, target=target, kind="remigrate",
                dirtied=tuple(sorted(set(dirtied) | set(dirtied_again))))))
            # Re-migration is cheaper than first migration (the revoked
            # co-op simply drops its copy), so it gets twice the budget.
            if len(decisions) >= 2 * self.config.max_migrations_per_interval:
                break
        return decisions

    # ------------------------------------------------------------------
    # Replication extension (future work, section 6)
    # ------------------------------------------------------------------

    def _consider_replication(self, now: float,
                              own_metric: float) -> List[MigrationDecision]:
        """Give an over-hot migrated document an additional replica.

        Candidates are ordered by accumulated hits (co-ops report hosted
        hits back on validations), so the document actually responsible
        for the co-op's heat replicates first.
        """
        decisions: List[MigrationDecision] = []
        mean = self.glt.mean_metric()
        if mean <= 0.0:
            return decisions
        by_demand = sorted(
            self._migrations,
            key=lambda n: (-(self.graph.find(n).hits
                             if self.graph.find(n) else 0), n))
        for name in by_demand:
            record = self._migrations[name]
            document = self.graph.find(name)
            if document is None:
                continue
            if len(document.locations()) >= self.config.max_replicas:
                continue
            coop_row = self.glt.get(record.coop)
            if coop_row is None or \
                    coop_row.metric <= self.config.imbalance_tolerance * mean:
                continue
            target = self.glt.least_loaded(
                exclude=list(document.locations()) + self._unavailable_peers())
            if target is None:
                continue
            last = self._coop_last_accept.get(str(target))
            if last is not None and now - last < self.config.coop_migration_spacing:
                continue
            dirtied = self.graph.add_replica(name, target)
            self._coop_last_accept[str(target)] = now
            record.replicas[str(target)] = now
            decisions.append(self._note(MigrationDecision(
                name=name, target=target, kind="replicate",
                dirtied=tuple(dirtied))))
            if len(decisions) >= self.config.max_replications_per_interval:
                break  # per-round replication budget exhausted
        return decisions

    # ------------------------------------------------------------------
    # Replication groups: holder death and autonomous repair
    # ------------------------------------------------------------------

    def drop_holder(self, name: str, dead: Location) -> Optional[MigrationDecision]:
        """Remove *dead* from *name*'s holder set, keeping survivors.

        The replication-group alternative to a full revocation: when the
        primary died, the lowest-sorted surviving replica is promoted to
        primary, so the document never bounces back home and referring
        links are rewritten straight to live copies.  Returns ``None``
        when *dead* is not a holder or no live holder would survive (the
        caller then falls back to :meth:`revoke`).
        """
        record = self._migrations.get(name)
        document = self.graph.find(name)
        if record is None or document is None:
            return None
        if dead != record.coop and dead not in document.replicas:
            return None
        survivors = [loc for loc in document.locations() if loc != dead]
        if not survivors or survivors == [self.graph.home]:
            return None
        dirtied = self.graph.drop_holder(name, dead)
        if record.coop == dead:
            record.coop = document.location  # the promoted survivor
            record.replicas.pop(str(record.coop), None)
        record.replicas.pop(str(dead), None)
        return self._note(MigrationDecision(
            name=name, target=record.coop, kind="replica_drop",
            dirtied=tuple(dirtied)))

    def repair_replica(self, name: str, target: Location,
                       now: float) -> MigrationDecision:
        """Add *target* as a replacement holder of migrated *name*.

        Issued by the repair loop; like :meth:`force_migrate` it bypasses
        the T_coop rate limit — restoring availability beats pacing.
        """
        dirtied = self.graph.add_replica(name, target)
        record = self._migrations.get(name)
        if record is None:
            # First holder: add_replica promoted target to primary.
            self._migrations[name] = _MigrationRecord(coop=target,
                                                      migrated_at=now)
        else:
            record.replicas[str(target)] = now
        return self._note(MigrationDecision(
            name=name, target=target, kind="repair",
            dirtied=tuple(dirtied)))

    # ------------------------------------------------------------------
    # Revocation (section 4.5, cases 1 and 3)
    # ------------------------------------------------------------------

    def revoke(self, name: str) -> MigrationDecision:
        """Return one document to home (content change or operator action)."""
        dirtied = self.graph.mark_revoked(name)
        self._migrations.pop(name, None)
        return self._note(MigrationDecision(
            name=name, target=self.graph.home, kind="revoke",
            dirtied=tuple(dirtied)))

    def revoke_all_from(self, coop: Location) -> List[MigrationDecision]:
        """Recall every document hosted by a dead co-op server.

        Documents with surviving holders stay migrated: the dead holder
        is dropped from the group (``replica_drop``, promoting a replica
        when the primary died) instead of bouncing the document home —
        the availability win replication groups exist to provide.  Only
        sole-holder documents take the classic full revocation.
        """
        decisions: List[MigrationDecision] = []
        for name in list(self._migrations):
            record = self._migrations[name]
            document = self.graph.find(name)
            hosted_there = record.coop == coop or (
                document is not None and coop in document.replicas)
            if not hosted_there:
                continue
            dropped = self.drop_holder(name, coop)
            if dropped is not None:
                decisions.append(dropped)
                continue
            decisions.append(self.revoke(name))
        return decisions
