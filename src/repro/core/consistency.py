"""Consistency timers: validation, staleness tracking, dead-peer detection.

Paper section 4.5 describes four consistency concerns, three of which are
timer-driven:

1. *content change* — co-op servers re-request ("validate") every hosted
   document at interval T_val, so an edit is inconsistent for at most
   T_val seconds;
2. *workload change* — home servers may abandon a migration after T_home
   (handled by :class:`repro.core.migration.MigrationPolicy`);
3. *co-op crash* — the pinger probes peers whose load information has gone
   stale; several consecutive failures declare the peer dead and its
   documents are recalled.

This module provides the small generic pieces: a :class:`DueTracker` that
answers "which keys are due for periodic work at time *now*" and a
:class:`PeerHealth` monitor implementing the failure-count rule.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, TypeVar

K = TypeVar("K", bound=Hashable)


class DueTracker:
    """Tracks when each key was last serviced; reports keys past their
    interval.  Used for co-op document validation (key = document name)
    and any other fixed-interval chore."""

    def __init__(self, interval: float) -> None:
        self.interval = interval
        self._last: Dict[Hashable, float] = {}

    def register(self, key: Hashable, now: float) -> None:
        """Start tracking *key*; its first service is due at now+interval."""
        self._last.setdefault(key, now)

    def restore(self, key: Hashable, last: float) -> None:
        """Re-install *key* with its persisted last-serviced time.

        Recovery uses this instead of :meth:`register` so a restart does
        not silently push every deadline one full interval into the
        future — a document validated just before the crash stays
        not-yet-due; one overdue at crash time is due immediately.
        """
        self._last[key] = last

    def forget(self, key: Hashable) -> None:
        self._last.pop(key, None)

    def mark(self, key: Hashable, now: float) -> None:
        """Record that *key* was serviced at *now*."""
        self._last[key] = now

    def due(self, now: float) -> List[Hashable]:
        """Keys whose last service is at least one interval old (sorted for
        determinism)."""
        overdue = [key for key, last in self._last.items()
                   if now - last >= self.interval]
        return sorted(overdue, key=str)

    def last_serviced(self, key: Hashable) -> Optional[float]:
        return self._last.get(key)

    def keys(self) -> List[Hashable]:
        return sorted(self._last, key=str)

    def __len__(self) -> int:
        return len(self._last)

    def __contains__(self, key: object) -> bool:
        return key in self._last


class PeerHealth:
    """Consecutive-ping-failure accounting for dead co-op detection.

    A peer is *suspect* after one failed ping and *dead* after
    ``failure_limit`` consecutive failures; any success resets it.
    Failures come from the pinger *and* (since the failure-domain
    hardening) from data-path transfers — a pull or validation that hits
    a dead peer counts just like a failed probe, so detection no longer
    waits out the full staleness window.

    Successes measured by the host (pings and pooled data-path
    exchanges) also feed a per-peer round-trip-time EWMA, surfaced on
    ``/~dcws/peers`` and available to delay-aware targeting.
    """

    #: EWMA weight of each new RTT sample.
    RTT_ALPHA = 0.2

    def __init__(self, failure_limit: int) -> None:
        self.failure_limit = failure_limit
        self._failures: Dict[str, int] = {}
        self._last_success: Dict[str, float] = {}
        self._rtt: Dict[str, float] = {}

    def record_success(self, peer: str,
                       now: Optional[float] = None,
                       rtt: Optional[float] = None) -> None:
        self._failures.pop(peer, None)
        if now is not None:
            self._last_success[peer] = now
        if rtt is not None and rtt >= 0.0:
            previous = self._rtt.get(peer)
            if previous is None:
                self._rtt[peer] = rtt
            else:
                self._rtt[peer] = (1.0 - self.RTT_ALPHA) * previous \
                    + self.RTT_ALPHA * rtt

    def record_failure(self, peer: str) -> int:
        """Count a failure; returns the consecutive count."""
        self._failures[peer] = self._failures.get(peer, 0) + 1
        return self._failures[peer]

    def failures(self, peer: str) -> int:
        """Current consecutive-failure count for *peer* (0 = healthy)."""
        return self._failures.get(peer, 0)

    def last_success(self, peer: str) -> Optional[float]:
        """When *peer* last succeeded, if a timestamp was recorded."""
        return self._last_success.get(peer)

    def rtt(self, peer: str) -> Optional[float]:
        """Smoothed round-trip time toward *peer*, if ever measured."""
        return self._rtt.get(peer)

    def rtts(self) -> Dict[str, float]:
        return dict(self._rtt)

    def is_dead(self, peer: str) -> bool:
        return self._failures.get(peer, 0) >= self.failure_limit

    def dead_peers(self) -> List[str]:
        return sorted(p for p, n in self._failures.items()
                      if n >= self.failure_limit)

    def suspects(self) -> List[str]:
        return sorted(p for p, n in self._failures.items()
                      if 0 < n < self.failure_limit)

    def forget(self, peer: str) -> None:
        self._failures.pop(peer, None)
        self._last_success.pop(peer, None)
        self._rtt.pop(peer, None)

    def reset(self, peers: Iterable[str] = ()) -> None:
        if not peers:
            self._failures.clear()
            self._last_success.clear()
            self._rtt.clear()
            return
        for peer in peers:
            self._failures.pop(peer, None)
            self._last_success.pop(peer, None)
            self._rtt.pop(peer, None)
