"""DCWS core: the paper's primary contribution.

Data structures and policies for application-level load balancing by
hyperlink rewriting:

- :class:`~repro.core.config.ServerConfig` — the Table 1 parameters;
- :class:`~repro.core.ldg.LocalDocumentGraph` — the per-server document
  graph of ``(Name, Location, Size, Hits, LinkTo, LinkFrom, Dirty)`` tuples;
- :class:`~repro.core.glt.GlobalLoadTable` — each server's best-effort view
  of cluster load, spread by piggybacking;
- :mod:`~repro.core.naming` — the ``~migrate`` URL convention;
- :mod:`~repro.core.selection` — Algorithm 1, document selection;
- :class:`~repro.core.migration.MigrationPolicy` — when/where to migrate,
  rate limits, revocation, optional hot-spot replication (future work §6);
- :mod:`~repro.core.consistency` — validation, re-migration and pinger
  timeouts (section 4.5).
"""

from repro.core.config import ServerConfig
from repro.core.document import DocumentRecord, Location
from repro.core.glt import GlobalLoadTable
from repro.core.ldg import LocalDocumentGraph
from repro.core.metrics import LoadMetricKind, ServerMetrics, WindowCounter
from repro.core.migration import MigrationDecision, MigrationPolicy
from repro.core.naming import (
    MIGRATE_MARKER,
    decode_migrated_path,
    encode_migrated_path,
    is_migrated_path,
)
from repro.core.selection import select_documents_for_migration

__all__ = [
    "DocumentRecord",
    "GlobalLoadTable",
    "LoadMetricKind",
    "LocalDocumentGraph",
    "Location",
    "MIGRATE_MARKER",
    "MigrationDecision",
    "MigrationPolicy",
    "ServerConfig",
    "ServerMetrics",
    "WindowCounter",
    "decode_migrated_path",
    "encode_migrated_path",
    "is_migrated_path",
    "select_documents_for_migration",
]
