"""Server configuration: the paper's Table 1 parameters plus policy knobs.

Defaults reproduce Table 1 exactly::

    Number of front-end threads        1
    Number of pinger threads           1
    Number of worker threads           12
    Socket queue length                100
    Statistics re-calculation interval 10 s   (T_st)
    Pinger activation interval         20 s   (T_pi)
    Co-op validation interval          120 s  (T_val)
    Home re-migration interval         300 s  (T_home)
    Min time between migrations to the
    same co-op server                  60 s   (T_coop)

The additional fields parameterize behaviour the paper describes in prose:
the hit threshold of Algorithm 1, the overload trigger, and the choice of
CPS vs BPS as the balancing metric (section 5.3 justifies CPS).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict

from repro.core.metrics import LoadMetricKind
from repro.errors import ConfigError


@dataclass(frozen=True)
class ServerConfig:
    """Tunable parameters of one DCWS server.

    Instances are immutable; derive variants with :meth:`scaled` or
    :func:`dataclasses.replace`.
    """

    # --- Table 1 -------------------------------------------------------
    front_end_threads: int = 1
    pinger_threads: int = 1
    worker_threads: int = 12
    socket_queue_length: int = 100
    stats_interval: float = 10.0        # T_st, seconds
    pinger_interval: float = 20.0       # T_pi, seconds
    validation_interval: float = 120.0  # T_val, seconds
    home_remigration_interval: float = 300.0  # T_home, seconds
    coop_migration_spacing: float = 60.0      # T_coop, seconds

    # --- migration policy (sections 4.1-4.2) ---------------------------
    # Initial hit threshold T of Algorithm 1 step 3 (hits per stats window).
    migration_hit_threshold: float = 10.0
    # Factor by which the threshold shrinks when step 3 empties the set.
    threshold_reduction_factor: float = 0.5
    # Home servers migrate at most one file per stats interval (section
    # 5.2: "a maximum of one file per 10 seconds").
    max_migrations_per_interval: int = 1
    # Migrate only when own load exceeds the cluster mean by this factor.
    imbalance_tolerance: float = 1.15
    # Load metric used for balancing decisions; the paper argues CPS for
    # typical web workloads and BPS for large-file workloads (section 5.3).
    load_metric: LoadMetricKind = LoadMetricKind.CPS
    # Extension: each dropped connection/second adds this much advertised
    # load.  0 (default) is the paper's plain CPS/BPS; positive values let
    # slow machines on heterogeneous clusters signal their overload.
    drop_pressure_weight: float = 0.0

    # --- consistency (section 4.5) --------------------------------------
    # Pinger probes a peer whose GLT entry is older than this many
    # pinger intervals.
    staleness_intervals: float = 1.0
    # Consecutive failed pings before a co-op is declared dead and its
    # documents are revoked.
    ping_failure_limit: int = 3
    # --- adaptive membership (repro.core.membership) ---------------------
    # Accrual failure detection: the φ suspicion score grows with silence
    # measured against the peer's learned success inter-arrival
    # distribution.  φ >= suspect threshold degrades the peer to
    # *suspect* (excluded from migration/repair targets, documents
    # kept); a suspect peer at φ >= dead threshold is declared dead —
    # the timing-based complement to ``ping_failure_limit``'s explicit
    # consecutive-failure bound.
    membership_suspect_phi: float = 2.0
    membership_dead_phi: float = 8.0
    # Sliding window of inter-arrival samples per peer, the bootstrap
    # sample count below which silence is never evidence, and the
    # minimum modelled inter-arrival (additionally floored at the pinger
    # interval — the cadence at which heartbeats are guaranteed).
    membership_window: int = 32
    membership_min_samples: int = 3
    membership_floor: float = 0.1
    # Rediscovery daemon: dead/forgotten peers from the static configured
    # peer list are re-probed every ``reprobe_interval`` seconds, backed
    # off by ``reprobe_backoff`` per failed probe up to
    # ``reprobe_max_interval``, with deterministic per-(peer, attempt)
    # jitter up to ``reprobe_jitter`` (a fraction of the period).
    reprobe_interval: float = 5.0
    reprobe_backoff: float = 2.0
    reprobe_max_interval: float = 60.0
    reprobe_jitter: float = 0.1
    # A peer dead this long demotes to *forgotten* (still re-probed, at
    # the capped rate).
    membership_forget_after: float = 300.0

    # --- extensions beyond the prototype --------------------------------
    # Paper future work (section 6): replicate hot documents to several
    # co-ops.  0 disables replication (prototype behaviour: footnote 1,
    # "each document may be migrated to only one co-op server").
    max_replicas: int = 1
    # Reactive replication budget: how many documents the periodic
    # replication pass may replicate per statistics interval.  1 is the
    # historical behaviour (one replication per round, mirroring the
    # paper's one-migration-per-interval pacing).
    max_replications_per_interval: int = 1
    # --- replication groups with autonomous repair ----------------------
    # ``replication_k`` is the target number of live holders per
    # replication group (the k of k-copy placement).  1 disables the
    # subsystem entirely; with k >= 2 every hot migrated document gets a
    # group that the repair loop proactively tops up to k holders and
    # autonomously re-replicates when the circuit breaker or the pinger
    # declares a holder dead — a single co-op crash then costs zero
    # availability and no revoke/re-home cycle.
    replication_k: int = 1
    # Groups with at least ``replication_sufficient`` live holders (but
    # fewer than k) are *degraded*; below that they are *critical* and
    # repair first.  Must satisfy 1 <= sufficient <= k.
    replication_sufficient: int = 1
    # Accumulated hits below which a migrated document does not get a
    # replication group (0 = every migrated document is group-managed).
    replication_heat_threshold: float = 0.0
    # How often the repair loop runs off the engine tick.  0 means
    # "every statistics interval" (T_st), the migration round's cadence.
    replication_repair_interval: float = 0.0
    # Document-selection policy.  "paper" is Algorithm 1; "hottest" takes
    # the highest-hit candidate ignoring link locality (ablating steps
    # 4-5); "random" picks uniformly among threshold survivors.
    selection_policy: str = "paper"
    # Algorithm 1 step 2: never migrate well-known entry points.  False is
    # an ablation knob quantifying the entry-points hypothesis (§3.1).
    protect_entry_points: bool = True
    # Entry gate (§3.1): when the shared secret is non-empty, non-entry
    # documents require a session cookie issued at an entry point; deep
    # links without one are redirected to the front door.  The secret is
    # shared cluster-wide so co-ops validate tokens statelessly.
    entry_gate_secret: str = ""
    entry_gate_ttl: float = 900.0
    # Persistent connections: workers serve multiple requests per
    # connection (Connection: keep-alive / HTTP/1.1 semantics) and
    # server-to-server channels are pooled.  ``keep_alive_timeout`` is how
    # long a worker holds an idle connection between requests;
    # ``keep_alive_max_requests`` bounds requests per connection so one
    # client cannot pin a worker forever.
    keep_alive: bool = True
    keep_alive_timeout: float = 5.0
    keep_alive_max_requests: int = 100
    # Serve-path cache hierarchy (template cache -> byte cache -> response
    # cache; see DESIGN.md).  ``link_templates`` enables splice-based
    # dirty-document reconstruction instead of the full parse/serialize
    # round trip (False is the ablation knob quantifying the ~20 ms cost
    # of section 5.3).  ``byte_cache_bytes`` bounds the LRU byte cache in
    # front of a disk-backed store (0 disables; memory stores never need
    # one).  ``response_cache_entries`` bounds the rendered-response cache
    # keyed by (name, version, method) (0 disables).
    link_templates: bool = True
    byte_cache_bytes: int = 8 * 1024 * 1024
    response_cache_entries: int = 512
    # Socket tuning and event-loop admission control.  ``listen_backlog``
    # is the kernel accept backlog of both front ends (Table 1's socket
    # queue length keeps its original meaning: the threaded server's
    # bounded worker hand-off queue).  The remaining knobs govern the
    # event-loop front end (repro.server.aio): ``max_connections`` caps
    # concurrently open client connections — connections over the cap are
    # shed at accept with 503 + Retry-After, the paper's overload rule
    # applied at the edge — and ``write_buffer_limit`` is the
    # per-connection outbound high-water mark above which the loop stops
    # reading from that client (backpressure) until the buffer drains
    # below half the limit.
    listen_backlog: int = 128
    max_connections: int = 1024
    write_buffer_limit: int = 256 * 1024
    # Multi-core scale-out (repro.server.multiproc).  ``workers`` is the
    # number of serving processes sharing the listen port (1 = the
    # classic single-process front ends; >1 forks SO_REUSEPORT workers,
    # each running its own aio loop).  ``lock_stripes`` sizes the striped
    # per-shard locks and seqlock version stamps the engine uses for its
    # lock-free clean-read fast path (hash(name) % lock_stripes); it also
    # partitions document *ownership* across workers — per-document
    # mutating work executes on the worker owning the document's shard.
    # ``sendfile_min_bytes``: disk-backed bodies at least this large are
    # served via os.sendfile on the threaded front end instead of being
    # read into memory (and deliberately bypass the byte/response caches
    # so one big file cannot flush the hot set).
    workers: int = 1
    lock_stripes: int = 16
    sendfile_min_bytes: int = 256 * 1024
    # Failure-domain hardening: per-peer circuit breakers on the pooled
    # server-to-server channels.  After ``breaker_failure_threshold``
    # consecutive transport failures the peer's circuit opens and fetches
    # toward it fail instantly; after ``breaker_reset_timeout`` (doubled
    # per consecutive open, capped at ``breaker_max_reset_timeout``,
    # jittered by up to ``breaker_jitter``) it goes half-open and admits
    # ``breaker_half_open_probes`` trial fetches.  ``circuit_breaker``
    # False disables the whole mechanism (pre-hardening behaviour).
    circuit_breaker: bool = True
    breaker_failure_threshold: int = 3
    breaker_reset_timeout: float = 0.5
    breaker_max_reset_timeout: float = 30.0
    breaker_half_open_probes: int = 1
    breaker_jitter: float = 0.1
    # HTTP content negotiation on the serve path.  ``gzip_enabled`` turns
    # on pre-compressed response variants: at cache-fill time compressible
    # bodies at least ``gzip_min_bytes`` long get a deterministic gzip
    # variant stored alongside the identity bytes, negotiated per request
    # via ``Accept-Encoding`` (with ``Vary: Accept-Encoding``).
    gzip_enabled: bool = True
    gzip_min_bytes: int = 256
    # Tiered load shedding: when a front end reports queue/connection
    # pressure at or above ``shed_pressure`` (a fraction of its capacity),
    # the engine sheds *expensive* work — dirty-document regenerations and
    # first-use co-op pulls — with 503 + Retry-After while cheap work
    # (cache hits, 304 validations) keeps being served.  False restores
    # the single-tier behaviour: overload is handled only at the edge.
    tiered_shedding: bool = True
    shed_pressure: float = 0.9
    # End-to-end content integrity (repro.server.integrity).  The scrub
    # daemon runs off the engine tick every ``scrub_interval`` seconds
    # (0 disables scrubbing), re-hashing at most ``scrub_budget`` hosted
    # or owned copies per round against their recorded digests — a
    # resumable cursor walk, so the whole corpus is revisited every
    # ceil(docs / budget) rounds.  ``integrity_serve_sample`` verifies
    # one in N cache-miss store reads on the serve path (0 disables the
    # sampling; scrub and transfer verification are unaffected).
    scrub_interval: float = 30.0
    scrub_budget: int = 8
    integrity_serve_sample: int = 16
    # Write-ahead journal fsync discipline (repro.server.wal).
    # ``always`` fsyncs every append (group-committed); ``interval``
    # defers to the periodic tick, bounding loss to ``wal_fsync_interval``
    # seconds at near-zero hot-path cost (the default); ``off`` leaves
    # durability to the OS page cache (a crash of the *process* still
    # loses nothing — only power loss can).
    wal_fsync: str = "interval"
    wal_fsync_interval: float = 0.05

    def __post_init__(self) -> None:
        positive = (
            "front_end_threads", "pinger_threads", "worker_threads",
            "socket_queue_length", "stats_interval", "pinger_interval",
            "validation_interval", "home_remigration_interval",
            "coop_migration_spacing", "max_migrations_per_interval",
            "ping_failure_limit", "max_replicas",
            "max_replications_per_interval", "replication_k",
            "replication_sufficient",
            "keep_alive_timeout", "keep_alive_max_requests",
            "listen_backlog", "max_connections", "write_buffer_limit",
            "breaker_failure_threshold", "breaker_reset_timeout",
            "breaker_half_open_probes", "workers", "lock_stripes",
            "sendfile_min_bytes",
        )
        for name in positive:
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive, got {getattr(self, name)!r}")
        if self.migration_hit_threshold < 0:
            raise ConfigError("migration_hit_threshold must be non-negative")
        if not (0.0 < self.threshold_reduction_factor < 1.0):
            raise ConfigError("threshold_reduction_factor must be in (0, 1)")
        if self.imbalance_tolerance < 1.0:
            raise ConfigError("imbalance_tolerance must be >= 1.0")
        if self.selection_policy not in ("paper", "hottest", "random"):
            raise ConfigError(
                f"unknown selection_policy: {self.selection_policy!r}")
        if self.entry_gate_ttl <= 0:
            raise ConfigError("entry_gate_ttl must be positive")
        if self.byte_cache_bytes < 0:
            raise ConfigError("byte_cache_bytes must be non-negative")
        if self.response_cache_entries < 0:
            raise ConfigError("response_cache_entries must be non-negative")
        if self.breaker_max_reset_timeout < self.breaker_reset_timeout:
            raise ConfigError(
                "breaker_max_reset_timeout must be >= breaker_reset_timeout")
        if self.breaker_jitter < 0:
            raise ConfigError("breaker_jitter must be non-negative")
        if self.gzip_min_bytes < 0:
            raise ConfigError("gzip_min_bytes must be non-negative")
        if not (0.0 < self.shed_pressure <= 1.0):
            raise ConfigError("shed_pressure must be in (0, 1]")
        if self.scrub_interval < 0:
            raise ConfigError("scrub_interval must be non-negative")
        if self.scrub_budget <= 0:
            raise ConfigError("scrub_budget must be positive")
        if self.integrity_serve_sample < 0:
            raise ConfigError(
                "integrity_serve_sample must be non-negative")
        if self.wal_fsync not in ("always", "interval", "off"):
            raise ConfigError(f"unknown wal_fsync policy: {self.wal_fsync!r}")
        if self.wal_fsync_interval <= 0:
            raise ConfigError("wal_fsync_interval must be positive")
        if self.replication_sufficient > self.replication_k:
            raise ConfigError(
                "replication_sufficient must be <= replication_k")
        if self.replication_heat_threshold < 0:
            raise ConfigError(
                "replication_heat_threshold must be non-negative")
        if self.replication_repair_interval < 0:
            raise ConfigError(
                "replication_repair_interval must be non-negative")
        if not (0.0 < self.membership_suspect_phi
                < self.membership_dead_phi):
            raise ConfigError(
                "need 0 < membership_suspect_phi < membership_dead_phi")
        if self.membership_window < 2:
            raise ConfigError("membership_window must be >= 2")
        if self.membership_min_samples < 2:
            raise ConfigError("membership_min_samples must be >= 2")
        if self.membership_floor <= 0:
            raise ConfigError("membership_floor must be positive")
        if self.reprobe_interval <= 0:
            raise ConfigError("reprobe_interval must be positive")
        if self.reprobe_backoff < 1.0:
            raise ConfigError("reprobe_backoff must be >= 1.0")
        if self.reprobe_max_interval < self.reprobe_interval:
            raise ConfigError(
                "reprobe_max_interval must be >= reprobe_interval")
        if self.reprobe_jitter < 0:
            raise ConfigError("reprobe_jitter must be non-negative")
        if self.membership_forget_after <= 0:
            raise ConfigError("membership_forget_after must be positive")

    def scaled(self, time_factor: float) -> "ServerConfig":
        """Return a copy with every time interval multiplied by
        *time_factor* — used to compress virtual time in benchmarks while
        keeping the paper's interval *ratios* intact."""
        if time_factor <= 0:
            raise ConfigError("time_factor must be positive")
        return replace(
            self,
            stats_interval=self.stats_interval * time_factor,
            pinger_interval=self.pinger_interval * time_factor,
            validation_interval=self.validation_interval * time_factor,
            home_remigration_interval=self.home_remigration_interval * time_factor,
            coop_migration_spacing=self.coop_migration_spacing * time_factor,
            replication_repair_interval=(
                self.replication_repair_interval * time_factor),
            scrub_interval=self.scrub_interval * time_factor,
            membership_floor=self.membership_floor * time_factor,
            reprobe_interval=self.reprobe_interval * time_factor,
            reprobe_max_interval=self.reprobe_max_interval * time_factor,
            membership_forget_after=(
                self.membership_forget_after * time_factor),
        )

    def as_table(self) -> Dict[str, Any]:
        """Field name → value mapping, used by the Table 1 bench reporter."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: The configuration used throughout the paper's experiments (Table 1).
PAPER_CONFIG = ServerConfig()
