"""DCWS — Distributed Cooperative Web Server.

A complete Python reproduction of *"Scalable Web Server Design for
Distributed Data Management"* (Scott M. Baker & Bongki Moon, Univ. of
Arizona TR 98-8 / ICDE 1999): application-level web-server load balancing
by dynamic hyperlink rewriting.

Top-level map (see README.md and DESIGN.md):

- :mod:`repro.core`      — LDG, GLT, Algorithm 1, migration policy,
  ``~migrate`` naming, consistency timers (the paper's contribution);
- :mod:`repro.html`      — HTML tokenizer/parser/rewriter/serializer;
- :mod:`repro.http`      — HTTP messages, URLs, piggyback headers;
- :mod:`repro.server`    — the transport-free engine + the real
  multithreaded socket server + document stores;
- :mod:`repro.sim`       — the discrete-event cluster simulator;
- :mod:`repro.datasets`  — the four evaluation corpora (MAPUG, SBLog,
  LOD, Sequoia) plus a synthetic generator;
- :mod:`repro.client`    — the Algorithm 2 hyperlink-walking benchmark;
- :mod:`repro.baselines` — round-robin DNS and TCP-router comparators;
- :mod:`repro.bench`     — drivers regenerating every table and figure.

Quick use::

    from repro.datasets import build_lod
    from repro.sim.cluster import ClusterConfig, SimCluster

    result = SimCluster(build_lod(), ClusterConfig(servers=8,
                                                   clients=192)).run()
    print(result.steady_cps())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
