"""The benchmark's client-side cache (paper section 5.2).

Web browsers keep a client-side cache that significantly reduces temporal
locality of server-visible requests.  The custom benchmark simulates this
with a cache maintained for the duration of each access sequence (1–25
document requests) and reset between sequences.  Two real-world effects the
paper calls out: hot images linked from many pages hit the server less, and
stale hyperlinks cached client-side generate 301 redirects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class ClientCache:
    """URL-keyed cache of fetched resources for one browse sequence.

    Keys are full URL strings (location-sensitive: the same document at its
    home and at a co-op are distinct cache entries, exactly as a browser
    sees them).  Values carry the response body size and the document's
    outgoing links so a cached page can still be navigated.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, Tuple[int, List[str]]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, url: str) -> Optional[Tuple[int, List[str]]]:
        """Return ``(size, links)`` or ``None``; counts hit/miss."""
        entry = self._entries.get(url)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(self, url: str, size: int, links: List[str]) -> None:
        self._entries[url] = (size, list(links))

    def __contains__(self, url: object) -> bool:
        return url in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def reset(self) -> None:
        """Called between sequences ("reset cache", Algorithm 2)."""
        self._entries.clear()


@dataclass
class ValidatorEntry:
    """What a browser's disk cache remembers about one URL: the
    validators to revalidate with and enough of the entity (size, parsed
    links) to reuse the stored copy on a 304."""

    etag: str = ""
    last_modified: str = ""
    size: int = 0
    links: List[str] = field(default_factory=list)
    images: List[str] = field(default_factory=list)


class ValidatorCache:
    """Browser-style validator store, persistent *across* sequences.

    :class:`ClientCache` models the per-sequence memory cache Algorithm 2
    resets; this models the disk cache that survives the reset — entries
    are never served without revalidation, but a revalidation that comes
    back 304 costs validator headers instead of the entity bytes.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, ValidatorEntry] = {}
        self.revalidations = 0   # conditional requests sent
        self.not_modified = 0    # of those, answered 304

    def entry(self, url: str) -> Optional[ValidatorEntry]:
        return self._entries.get(url)

    def store(self, url: str, *, etag: str = "", last_modified: str = "",
              size: int = 0, links: Optional[List[str]] = None,
              images: Optional[List[str]] = None) -> None:
        if not etag and not last_modified:
            return  # nothing to revalidate with
        self._entries[url] = ValidatorEntry(
            etag=etag, last_modified=last_modified, size=size,
            links=list(links or []), images=list(images or []))

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
