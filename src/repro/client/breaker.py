"""Per-peer circuit breakers for server-to-server channels.

The pinger detects dead co-ops only after ``staleness_intervals ×
pinger_interval`` plus ``ping_failure_limit`` failed probes; until then,
every lazy pull or validation toward a dead peer burned a full connect
timeout *per request*.  A :class:`CircuitBreaker` moves failure detection
onto the data path: consecutive transport failures *open* the breaker,
subsequent fetches short-circuit instantly (:class:`BreakerOpenError`,
an ``OSError`` so every existing peer-failure handler applies), and after
a jittered exponential backoff the breaker goes *half-open*, letting a
bounded probe budget through.  A probe success closes it; a probe failure
re-opens it with doubled backoff.

The breaker lives in :class:`repro.client.pool.ConnectionPool` (one per
host, covering pulls, validations and pings alike); the engine reads its
state for migration-target exclusion and the ``/~dcws/peers`` endpoint.
All methods are thread-safe.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class BreakerOpenError(ConnectionError):
    """The peer's circuit is open: fail fast instead of burning a timeout.

    Subclasses ``ConnectionError`` (hence ``OSError``) so callers that
    already treat transport errors as peer failure need no new handling.
    """

    def __init__(self, peer: str, retry_after: float) -> None:
        super().__init__(f"circuit open for {peer}; "
                         f"retry in {max(retry_after, 0.0):.3f}s")
        self.peer = peer
        self.retry_after = retry_after


@dataclass
class _PeerState:
    state: str = CLOSED
    consecutive_failures: int = 0
    open_count: int = 0        # consecutive opens (drives the backoff)
    retry_at: float = 0.0      # when an open breaker admits a probe
    probes: int = 0            # half-open probes currently in flight
    trips: int = 0             # lifetime closed->open transitions
    last_success: Optional[float] = None
    last_failure: Optional[float] = None


def build_breaker(config) -> "Optional[CircuitBreaker]":
    """A :class:`CircuitBreaker` from a ``ServerConfig``'s breaker knobs,
    or ``None`` when ``config.circuit_breaker`` is off (duck-typed so the
    client layer needs no import from :mod:`repro.core.config`)."""
    if not getattr(config, "circuit_breaker", False):
        return None
    return CircuitBreaker(
        failure_threshold=config.breaker_failure_threshold,
        reset_timeout=config.breaker_reset_timeout,
        max_reset_timeout=config.breaker_max_reset_timeout,
        half_open_probes=config.breaker_half_open_probes,
        jitter=config.breaker_jitter)


class CircuitBreaker:
    """Closed / open / half-open state per peer, with jittered backoff."""

    def __init__(self, *, failure_threshold: int = 3,
                 reset_timeout: float = 0.5,
                 max_reset_timeout: float = 30.0,
                 half_open_probes: int = 1,
                 jitter: float = 0.1,
                 seed: int = 0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0 or max_reset_timeout < reset_timeout:
            raise ValueError("need 0 < reset_timeout <= max_reset_timeout")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.max_reset_timeout = max_reset_timeout
        self.half_open_probes = half_open_probes
        self.jitter = jitter
        self.clock = clock
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._peers: Dict[str, _PeerState] = {}

    # ------------------------------------------------------------------
    # The data-path protocol: check(), then record_success/record_failure
    # ------------------------------------------------------------------

    def check(self, peer: str, now: Optional[float] = None) -> None:
        """Gate one fetch toward *peer*.

        Raises :class:`BreakerOpenError` while the circuit is open (or
        half-open with its probe budget exhausted); otherwise admits the
        fetch — and, in half-open state, counts it against the probe
        budget until its outcome is recorded.
        """
        if now is None:
            now = self.clock()
        with self._lock:
            state = self._peers.get(peer)
            if state is None or state.state == CLOSED:
                return
            if state.state == OPEN:
                if now < state.retry_at:
                    raise BreakerOpenError(peer, state.retry_at - now)
                state.state = HALF_OPEN
                state.probes = 0
            if state.probes >= self.half_open_probes:
                raise BreakerOpenError(peer, 0.0)
            state.probes += 1

    def record_success(self, peer: str, now: Optional[float] = None) -> None:
        if now is None:
            now = self.clock()
        with self._lock:
            state = self._peers.get(peer)
            if state is None:
                state = self._peers[peer] = _PeerState()
            if state.probes > 0:
                state.probes -= 1
            state.state = CLOSED
            state.consecutive_failures = 0
            state.open_count = 0
            state.last_success = now

    def record_failure(self, peer: str, now: Optional[float] = None) -> None:
        if now is None:
            now = self.clock()
        with self._lock:
            state = self._peers.get(peer)
            if state is None:
                state = self._peers[peer] = _PeerState()
            if state.probes > 0:
                state.probes -= 1
            state.consecutive_failures += 1
            state.last_failure = now
            trip = (state.state == HALF_OPEN
                    or (state.state == CLOSED
                        and state.consecutive_failures
                        >= self.failure_threshold))
            if trip:
                self._trip_locked(state, now)

    def trip(self, peer: str, now: Optional[float] = None) -> None:
        """Force the circuit open — the peer was declared dead out of
        band (e.g. by the health monitor); it heals through the normal
        half-open probe path when the peer answers again."""
        if now is None:
            now = self.clock()
        with self._lock:
            state = self._peers.get(peer)
            if state is None:
                state = self._peers[peer] = _PeerState()
            self._trip_locked(state, now)

    def allow_probe(self, peer: str, now: Optional[float] = None) -> None:
        """Collapse an open circuit's remaining backoff so the very next
        fetch toward *peer* is admitted as the half-open trial probe.

        The rediscovery daemon paces its own (exponentially backed-off)
        re-probe schedule for dead peers; when a probe is due it must
        actually reach the wire rather than fast-fail against a breaker
        whose independent backoff has not elapsed.  The probe then heals
        or re-opens the circuit through the normal half-open machinery.
        """
        if now is None:
            now = self.clock()
        with self._lock:
            state = self._peers.get(peer)
            if state is not None and state.state == OPEN:
                state.retry_at = min(state.retry_at, now)

    def _trip_locked(self, state: _PeerState, now: float) -> None:
        if state.state != OPEN:
            state.trips += 1
        state.state = OPEN
        state.open_count += 1
        backoff = min(
            self.reset_timeout * (2 ** (state.open_count - 1)),
            self.max_reset_timeout)
        backoff *= 1.0 + self._rng.uniform(0.0, self.jitter)
        state.retry_at = now + backoff

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def state(self, peer: str) -> str:
        with self._lock:
            record = self._peers.get(peer)
            return record.state if record else CLOSED

    def is_open(self, peer: str, now: Optional[float] = None) -> bool:
        """Open *and* still inside its backoff window (a half-open-able
        breaker should not exclude the peer from consideration)."""
        if now is None:
            now = self.clock()
        with self._lock:
            record = self._peers.get(peer)
            return (record is not None and record.state == OPEN
                    and now < record.retry_at)

    def total_trips(self) -> int:
        with self._lock:
            return sum(state.trips for state in self._peers.values())

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-peer breaker state for the ``/~dcws/peers`` endpoint."""
        with self._lock:
            return {
                peer: {
                    "state": state.state,
                    "consecutive_failures": state.consecutive_failures,
                    "trips": state.trips,
                    "retry_at": state.retry_at,
                    "last_success": state.last_success,
                    "last_failure": state.last_failure,
                }
                for peer, state in self._peers.items()
            }

    def forget(self, peer: str) -> None:
        with self._lock:
            self._peers.pop(peer, None)

    def __repr__(self) -> str:
        with self._lock:
            opened = sum(1 for s in self._peers.values() if s.state != CLOSED)
        return (f"CircuitBreaker(peers={len(self._peers)}, "
                f"not_closed={opened})")
