"""Client side: the custom benchmark of paper Algorithm 2.

Conventional benchmarks (SPECweb96) request documents without regard to
hyperlinks; DCWS rewrites hyperlinks, so the paper builds a custom client
that *navigates*: start at a random well-known entry point, walk 1–25
random hyperlinks, fetch embedded images in parallel, keep a client-side
cache for the duration of each sequence, and back off exponentially on 503.

:class:`~repro.client.walker.RandomWalker` is the synchronous walker used
against the real threaded server; the simulator's event-driven client
(:mod:`repro.sim.simclient`) reuses the same cache, link-selection and
backoff pieces.
"""

from repro.client.cache import ClientCache
from repro.client.pool import ConnectionPool
from repro.client.realclient import http_fetch
from repro.client.walker import (
    ExponentialBackoff,
    FetchOutcome,
    RandomWalker,
    WalkerStats,
    select_next_link,
)

__all__ = [
    "ClientCache",
    "ConnectionPool",
    "ExponentialBackoff",
    "FetchOutcome",
    "RandomWalker",
    "WalkerStats",
    "http_fetch",
    "select_next_link",
]
