"""Algorithm 2: the custom client benchmark (paper Figure 5).

::

    do forever:
        reset cache
        current_url <- a randomly selected well-known entry point
        no_steps <- random(1..25)
        for i = 1 to no_steps:
            request current_url from its server if not cached
            request all embedded images in parallel
            wait until everything arrives
            parse the document, select a new link
            current_url <- new link

Plus the request-drop behaviour of section 5.2: on a 503 the client backs
off exponentially (1 s, 2 s, 4 s, ...).

:class:`RandomWalker` is a synchronous implementation parameterized by a
``fetch`` callable, so it runs against the real socket server, an in-memory
engine (tests), or anything else that answers URL fetches.  The simulator
uses the same :func:`select_next_link`, :class:`ClientCache` and
:class:`ExponentialBackoff` pieces in event-driven form.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.client.cache import ClientCache
from repro.http.urls import URL, join_url, parse_url

MIN_STEPS = 1
MAX_STEPS = 25


@dataclass
class FetchOutcome:
    """What the transport returns for one URL fetch.

    ``links``/``images`` are the raw hyperlink values found in the body
    (absolute or relative); empty for non-HTML.  ``dropped`` marks a 503.
    ``redirected`` marks that a 301 was followed (one extra connection).
    ``not_modified`` marks a revalidation answered 304 (the entity came
    from the client's validator cache; ``size``/``links`` describe that
    cached entity).  ``wire_size``, when set, is the body bytes actually
    received — smaller than ``size`` for gzip responses, zero for 304s —
    so byte accounting can distinguish entity size from transfer size.
    """

    status: int
    size: int = 0
    links: List[str] = field(default_factory=list)
    images: List[str] = field(default_factory=list)
    redirected: bool = False
    not_modified: bool = False
    wire_size: Optional[int] = None
    # A replica holder failed at the transport level and the client
    # recovered by itself — re-deriving the home URL from the migrated
    # path, or rerouting to an advertised sibling replica.
    replica_fallback: bool = False
    # Integrity verdicts from the transport: the body did not match its
    # Content-Length (``short_body``), or decoded/verified wrong against
    # its gzip framing or X-DCWS-Digest (``corrupt_body``).  Either way
    # the entity is unusable, whatever the status code says.
    short_body: bool = False
    corrupt_body: bool = False

    @property
    def ok(self) -> bool:
        """Usable entity: a 2xx, or a 304 satisfied from the client's
        validator cache — and the body passed its integrity checks."""
        if self.short_body or self.corrupt_body:
            return False
        return 200 <= self.status < 300 or self.not_modified

    @property
    def dropped(self) -> bool:
        return self.status == 503

    @property
    def transport_failed(self) -> bool:
        """Connection refused/reset/timeout — no HTTP response at all.
        (599 is the transport's sentinel, never sent by a server.)"""
        return self.status == 599


FetchFn = Callable[[URL], FetchOutcome]


class ExponentialBackoff:
    """503 handling: sleep 1 s, 2 s, 4 s, ... per consecutive drop."""

    def __init__(self, base: float = 1.0, ceiling: float = 64.0) -> None:
        self.base = base
        self.ceiling = ceiling
        self._consecutive = 0

    def on_drop(self) -> float:
        """Return how long to sleep after this drop."""
        delay = min(self.base * (2 ** self._consecutive), self.ceiling)
        self._consecutive += 1
        return delay

    def on_success(self) -> None:
        self._consecutive = 0

    @property
    def consecutive_drops(self) -> int:
        return self._consecutive


def select_next_link(links: Sequence[str], rng: random.Random) -> Optional[str]:
    """Pick the next hyperlink to follow, uniformly at random.

    Returns ``None`` when the page has no outgoing hyperlinks, which ends
    the sequence early (a user hitting a leaf page).
    """
    if not links:
        return None
    return links[rng.randrange(len(links))]


@dataclass
class WalkerStats:
    """Counters one walker accumulates across its sequences."""

    sequences: int = 0
    steps: int = 0
    requests: int = 0
    bytes_received: int = 0   # body bytes on the wire (wire_size-aware)
    entity_bytes: int = 0     # logical entity bytes the client obtained
    not_modified: int = 0     # revalidations answered 304
    cache_hits: int = 0
    drops: int = 0
    redirects: int = 0
    errors: int = 0
    transport_failures: int = 0
    transport_retries: int = 0
    backoff_time: float = 0.0
    replica_fallbacks: int = 0  # fetches that self-healed via home/replica
    short_bodies: int = 0       # body length disagreed with Content-Length
    corrupt_bodies: int = 0     # body failed gzip decode or digest check


class RandomWalker:
    """A synchronous Algorithm 2 client.

    ``fetch`` performs one URL fetch (following redirects itself and
    reporting them via ``redirected``); ``sleep`` is injectable so tests
    need not wait wall-clock seconds.
    """

    def __init__(self, entry_points: Sequence[str], fetch: FetchFn, *,
                 seed: int = 0,
                 sleep: Callable[[float], None] = None,
                 min_steps: int = MIN_STEPS,
                 max_steps: int = MAX_STEPS,
                 max_transport_retries: int = 3) -> None:
        if not entry_points:
            raise ValueError("walker needs at least one entry-point URL")
        self.entry_points = [parse_url(e) if isinstance(e, str) else e
                             for e in entry_points]
        self.fetch = fetch
        self.rng = random.Random(seed)
        self.sleep = sleep if sleep is not None else _default_sleep
        self.min_steps = min_steps
        self.max_steps = max_steps
        self.max_transport_retries = max_transport_retries
        self.cache = ClientCache()
        self.backoff = ExponentialBackoff()
        self.stats = WalkerStats()

    # ------------------------------------------------------------------

    def run(self, sequences: int) -> WalkerStats:
        """Execute *sequences* complete browse sequences."""
        for _ in range(sequences):
            self.run_sequence()
        return self.stats

    def run_sequence(self) -> None:
        """One iteration of Algorithm 2's outer loop."""
        self.cache.reset()
        self.stats.sequences += 1
        current = self.entry_points[self.rng.randrange(len(self.entry_points))]
        steps = self.rng.randint(self.min_steps, self.max_steps)
        for _ in range(steps):
            outcome = self._fetch_document(current)
            if outcome is None:
                return  # unrecoverable error ends the sequence
            self.stats.steps += 1
            size, links, images = outcome
            self._fetch_images(current, images)
            raw_next = select_next_link(links, self.rng)
            if raw_next is None:
                return
            current = join_url(current, raw_next)

    # ------------------------------------------------------------------

    def _fetch_document(self, url: URL):
        cached = self.cache.lookup(str(url))
        if cached is not None:
            self.stats.cache_hits += 1
            size, links = cached
            return size, links, []  # images were fetched with the page
        outcome = self._fetch_with_backoff(url)
        if outcome is None or not outcome.ok:
            if outcome is not None:
                self.stats.errors += 1
            return None
        self.cache.store(str(url), outcome.size, outcome.links)
        return outcome.size, outcome.links, outcome.images

    def _fetch_images(self, base: URL, images: List[str]) -> None:
        """Request embedded images (sequentially here; the real benchmark
        binary uses four helper threads — the threaded harness in
        :mod:`repro.bench.harness` provides that parallelism)."""
        for raw in images:
            image_url = join_url(base, raw)
            if self.cache.lookup(str(image_url)) is not None:
                self.stats.cache_hits += 1
                continue
            outcome = self._fetch_with_backoff(image_url)
            if outcome is not None and outcome.ok:
                self.cache.store(str(image_url), outcome.size, [])

    def _fetch_with_backoff(self, url: URL) -> Optional[FetchOutcome]:
        """Fetch with exponential backoff on 503 drops *and* transport
        failures (connection refused/reset); transport retries are bounded
        by ``max_transport_retries``, drops retry indefinitely."""
        transport_tries = 0
        while True:
            try:
                outcome = self.fetch(url)
            except OSError:
                # Transports that raise instead of returning the 599
                # sentinel (refused/reset) get the same retry treatment.
                outcome = FetchOutcome(status=599)
            except Exception:
                self.stats.errors += 1
                return None
            self.stats.requests += 1
            self.stats.entity_bytes += outcome.size
            self.stats.bytes_received += (
                outcome.wire_size if outcome.wire_size is not None
                else outcome.size)
            if outcome.not_modified:
                self.stats.not_modified += 1
            if outcome.redirected:
                self.stats.redirects += 1
            if outcome.replica_fallback:
                self.stats.replica_fallbacks += 1
            if outcome.short_body:
                self.stats.short_bodies += 1
            if outcome.corrupt_body:
                self.stats.corrupt_bodies += 1
            if outcome.transport_failed:
                self.stats.transport_failures += 1
                if transport_tries >= self.max_transport_retries:
                    return outcome  # counted as an error by the caller
                transport_tries += 1
                self.stats.transport_retries += 1
                delay = self.backoff.on_drop()
                self.stats.backoff_time += delay
                self.sleep(delay)
                continue
            if outcome.dropped:
                self.stats.drops += 1
                delay = self.backoff.on_drop()
                self.stats.backoff_time += delay
                self.sleep(delay)
                continue
            self.backoff.on_success()
            return outcome


def _default_sleep(seconds: float) -> None:
    import time

    time.sleep(seconds)
