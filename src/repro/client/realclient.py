"""A small blocking HTTP client over real sockets.

Used by the threaded DCWS server for server-to-server transfers (lazy
migration pulls, validations, pings) and by the real-transport walker.
One request per connection, HTTP/1.0 style, exactly like the 1998
prototype's inter-server sessions.
"""

from __future__ import annotations

import socket
from typing import List

from repro.core.document import Location
from repro.errors import HTTPError
from repro.html.links import extract_links
from repro.html.parser import parse_html
from repro.http.messages import Request, Response, parse_response
from repro.http.urls import URL
from repro.client.walker import FetchOutcome

_RECV_CHUNK = 65536
_MAX_RESPONSE = 64 * 1024 * 1024


def http_fetch(peer: Location, request: Request, *,
               timeout: float = 10.0) -> Response:
    """Send *request* to *peer* and read the complete response.

    Raises :class:`repro.errors.HTTPError` (or ``OSError``) on transport
    or framing problems; callers treat those as peer failure.
    """
    with socket.create_connection((peer.host, peer.port), timeout=timeout) as sock:
        sock.sendall(request.serialize())
        data = _read_response_bytes(sock)
    return parse_response(data)


def _parse_content_length(head: str):
    """Content-Length from a raw response head, or None when absent."""
    for line in head.split("\r\n")[1:]:
        name, sep, value = line.partition(":")
        if sep and name.strip().lower() == "content-length":
            try:
                return int(value.strip())
            except ValueError:
                raise HTTPError(f"bad Content-Length: {value!r}") from None
    return None


def _read_response_bytes(sock: socket.socket) -> bytes:
    """Read head + Content-Length body (or until EOF without one)."""
    buffer = bytearray()
    head_end = -1
    while head_end < 0:
        chunk = sock.recv(_RECV_CHUNK)
        if not chunk:
            break
        buffer.extend(chunk)
        if len(buffer) > _MAX_RESPONSE:
            raise HTTPError("response exceeds size limit")
        head_end = buffer.find(b"\r\n\r\n")
    if head_end < 0:
        raise HTTPError("connection closed before response head completed")
    head = bytes(buffer[:head_end]).decode("latin-1", "replace")
    content_length = _parse_content_length(head)
    if content_length is None:
        # No Content-Length: read to EOF (HTTP/1.0 close-delimited).
        while True:
            chunk = sock.recv(_RECV_CHUNK)
            if not chunk:
                return bytes(buffer)
            buffer.extend(chunk)
            if len(buffer) > _MAX_RESPONSE:
                raise HTTPError("response exceeds size limit")
    needed = head_end + 4 + content_length
    while len(buffer) < needed:
        chunk = sock.recv(_RECV_CHUNK)
        if not chunk:
            break
        buffer.extend(chunk)
        if len(buffer) > _MAX_RESPONSE:
            raise HTTPError("response exceeds size limit")
    return bytes(buffer[:needed])


def fetch_url(url: URL, *, timeout: float = 10.0,
              max_redirects: int = 5) -> FetchOutcome:
    """Fetch *url* as a browser would: follow redirects, parse HTML links.

    This is the ``fetch`` callable handed to
    :class:`repro.client.walker.RandomWalker` for real-transport runs.
    """
    redirected = False
    current = url
    followed = 0
    while True:
        request = Request(method="GET", target=current.request_target)
        request.headers.set("Host", current.authority)
        try:
            response = http_fetch(Location(current.host, current.port),
                                  request, timeout=timeout)
        except (OSError, HTTPError):
            return FetchOutcome(status=599, redirected=redirected)
        if response.status in (301, 302):
            location = response.headers.get("Location")
            if not location or followed >= max_redirects:
                # Out of follows (or nowhere to go): report the redirect
                # itself, the way max_redirects=0 callers expect.
                return FetchOutcome(status=response.status,
                                    size=len(response.body),
                                    redirected=redirected)
            from repro.http.urls import join_url

            current = join_url(current, location)
            redirected = True
            followed += 1
            continue
        links, images = _split_links(response)
        return FetchOutcome(status=response.status, size=len(response.body),
                            links=links, images=images, redirected=redirected)


def _split_links(response: Response) -> "tuple[List[str], List[str]]":
    content_type = response.headers.get("Content-Type", "") or ""
    if not content_type.startswith("text/html") or not response.body:
        return [], []
    document = parse_html(response.body.decode("latin-1", "replace"))
    links: List[str] = []
    images: List[str] = []
    for link in extract_links(document):
        if link.embedded:
            images.append(link.value)
        elif link.tag == "a":
            links.append(link.value)
    return links, images


def head_ok(peer: Location, *, timeout: float = 3.0) -> bool:
    """Cheap liveness probe used by examples and tests."""
    request = Request(method="HEAD", target="/")
    try:
        response = http_fetch(peer, request, timeout=timeout)
    except (OSError, HTTPError):
        return False
    return response.status < 500
