"""A small blocking HTTP client over real sockets.

Used by the threaded DCWS server for server-to-server transfers (lazy
migration pulls, validations, pings) and by the real-transport walker.
By default each call opens one connection, HTTP/1.0 style, exactly like
the 1998 prototype's inter-server sessions; pass a
:class:`repro.client.pool.ConnectionPool` to reuse persistent per-peer
channels instead.
"""

from __future__ import annotations

import socket
import time
import zlib
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.document import Location
from repro.core.naming import (
    REPLICAS_HEADER,
    decode_migrated_path,
    is_migrated_path,
)
from repro.errors import HTTPError, NamingError
from repro.faults import apply_corruption
from repro.html.links import extract_links
from repro.html.parser import parse_html
from repro.http.content import DIGEST_HEADER, digest_matches, gunzip_bytes
from repro.http.messages import Request, Response, parse_response
from repro.http.urls import URL, parse_url
from repro.client.walker import FetchOutcome

if TYPE_CHECKING:
    from repro.client.cache import ValidatorCache
    from repro.client.pool import ConnectionPool
    from repro.faults import FaultPlan

_RECV_CHUNK = 65536
_MAX_RESPONSE = 64 * 1024 * 1024

# Responses that never carry a body, regardless of Content-Length (which,
# when present, describes the entity the body *would* have been).
_BODYLESS_STATUSES = (204, 304)

# Requester-side replica failure memory: authorities whose transport
# recently refused/reset, remembered briefly so the replica chooser and
# the home fallback route around them instead of re-timing-out on every
# request (DistCache-style client-side failover).
_REPLICA_FAILURE_TTL = 5.0
_replica_failures: Dict[str, float] = {}


def _note_replica_failure(authority: str) -> None:
    _replica_failures[authority] = time.monotonic()


def _replica_recently_failed(authority: str) -> bool:
    failed_at = _replica_failures.get(authority)
    if failed_at is None:
        return False
    if time.monotonic() - failed_at > _REPLICA_FAILURE_TTL:
        del _replica_failures[authority]
        return False
    return True


def reset_replica_failures() -> None:
    """Forget the failure memory (test isolation)."""
    _replica_failures.clear()


def _home_fallback(url: URL) -> Optional[URL]:
    """The home-server URL a migrated-form *url* encodes, if any.

    Pull-through naming means the home always holds the permanent copy,
    so a requester that cannot reach a co-op can re-derive the home URL
    from the path alone — no second lookup, no out-of-band state.
    """
    try:
        home, original = decode_migrated_path(url.path)
    except NamingError:
        return None
    if f"{home.host}:{home.port}" == url.authority:
        return None
    return parse_url(f"http://{home.host}:{home.port}{original}")


def _choose_replica(url: URL, header: str) -> URL:
    """Apply two-choices with failure memory to an advertised replica set.

    The home's redirect already made a load-weighted pick; keep it
    unless its authority recently failed at the transport level, in
    which case reroute to a digest-spread sibling that has not.
    """
    candidates = [a.strip() for a in header.split(",") if a.strip()]
    if len(candidates) < 2 or not is_migrated_path(url.path):
        return url
    if url.authority in candidates and \
            not _replica_recently_failed(url.authority):
        return url
    digest = zlib.crc32(url.request_target.encode("latin-1", "replace"))
    order = [candidates[digest % len(candidates)],
             candidates[(digest >> 16) % len(candidates)]]
    for authority in order + candidates:
        if authority != url.authority and \
                not _replica_recently_failed(authority):
            return parse_url(f"http://{authority}{url.request_target}")
    return url


def http_fetch(peer: Location, request: Request, *,
               timeout: float = 10.0,
               pool: "Optional[ConnectionPool]" = None,
               faults: "Optional[FaultPlan]" = None) -> Response:
    """Send *request* to *peer* and read the complete response.

    With a *pool*, the exchange rides a persistent per-peer channel
    (opened on demand, reused across calls) and the pool's own fault
    plan applies; *faults* covers the unpooled one-shot path.  Raises
    :class:`repro.errors.HTTPError` (or ``OSError``) on transport or
    framing problems; callers treat those as peer failure.
    """
    if pool is not None:
        return pool.fetch(peer, request, timeout=timeout)
    key = f"{peer.host}:{peer.port}"
    if faults is not None:
        faults.on_connect(key)
    corrupt = None
    with socket.create_connection((peer.host, peer.port), timeout=timeout) as sock:
        if faults is not None:
            corrupt = faults.on_exchange(key)
        sock.sendall(request.serialize())
        response, __ = read_framed_response(
            sock, bytearray(), head_request=request.method == "HEAD")
    if corrupt is not None:
        # A seeded ``corrupt`` event is silent by contract: the flipped
        # byte flows onward and only digest verification can notice.
        response.body = apply_corruption(corrupt, response.body)
    return response


def read_framed_response(sock: socket.socket, buffer: bytearray, *,
                         head_request: bool = False) -> Tuple[Response, bool]:
    """Read one complete response off *sock*, honouring framing.

    *buffer* holds bytes already read from the connection (a persistent
    channel's leftover); on return it holds any bytes past this response.
    Returns ``(response, framed)`` where *framed* is True when the body was
    delimited by Content-Length (or was necessarily empty) — i.e. the
    connection is still usable — and False when the body was read to EOF
    (HTTP/1.0 close-delimited).

    Raises :class:`HTTPError` when the peer closes before the head or the
    promised body completes, instead of silently returning a truncation.
    """
    head_end = buffer.find(b"\r\n\r\n")
    while head_end < 0:
        if not _recv_into(sock, buffer):
            raise HTTPError("connection closed before response head completed")
        head_end = buffer.find(b"\r\n\r\n")
    response = parse_response(bytes(buffer[:head_end + 4]))
    expected = None
    if head_request or response.status in _BODYLESS_STATUSES:
        expected = 0
    else:
        expected = response.headers.get_int("content-length")
    if expected is None:
        # No Content-Length: read to EOF (HTTP/1.0 close-delimited).
        while _recv_into(sock, buffer):
            pass
        response.body = bytes(buffer[head_end + 4:])
        del buffer[:]
        return response, False
    needed = head_end + 4 + expected
    if needed > _MAX_RESPONSE:
        raise HTTPError("response exceeds size limit")
    while len(buffer) < needed:
        if not _recv_into(sock, buffer):
            raise HTTPError("connection closed before response body completed")
    response.body = bytes(buffer[head_end + 4:needed])
    del buffer[:needed]
    return response, True


def _recv_into(sock: socket.socket, buffer: bytearray) -> bool:
    """One recv; False on EOF.  Enforces the response size limit."""
    chunk = sock.recv(_RECV_CHUNK)
    if not chunk:
        return False
    buffer.extend(chunk)
    if len(buffer) > _MAX_RESPONSE:
        raise HTTPError("response exceeds size limit")
    return True


def fetch_url(url: URL, *, timeout: float = 10.0,
              max_redirects: int = 5,
              pool: "Optional[ConnectionPool]" = None,
              validators: "Optional[ValidatorCache]" = None,
              accept_gzip: bool = False) -> FetchOutcome:
    """Fetch *url* as a browser would: follow redirects, parse HTML links.

    With a *validators* cache the request carries ``If-None-Match`` /
    ``If-Modified-Since`` for previously seen URLs, and a 304 answer is
    satisfied from the cached entry (zero entity bytes on the wire).
    With ``accept_gzip`` the request advertises ``Accept-Encoding: gzip``
    and a compressed body is transparently decoded before link parsing —
    ``wire_size`` reports the compressed transfer, ``size`` the entity.

    This is the ``fetch`` callable handed to
    :class:`repro.client.walker.RandomWalker` for real-transport runs.
    """
    redirected = False
    fell_back = False
    current = url
    followed = 0
    while True:
        request = Request(method="GET", target=current.request_target)
        request.headers.set("Host", current.authority)
        if accept_gzip:
            request.headers.set("Accept-Encoding", "gzip")
        cached = validators.entry(str(current)) if validators is not None \
            else None
        if cached is not None:
            if cached.etag:
                request.headers.set("If-None-Match", cached.etag)
            if cached.last_modified:
                request.headers.set("If-Modified-Since", cached.last_modified)
            validators.revalidations += 1
        try:
            response = http_fetch(Location(current.host, current.port),
                                  request, timeout=timeout, pool=pool)
        except (OSError, HTTPError):
            _note_replica_failure(current.authority)
            if not fell_back and followed < max_redirects:
                # A dead co-op is not a dead document: the migrated path
                # encodes the home, which always holds the permanent
                # copy — retry there once before giving up.
                fallback = _home_fallback(current)
                if fallback is not None:
                    current = fallback
                    fell_back = True
                    redirected = True
                    followed += 1
                    continue
            return FetchOutcome(status=599, redirected=redirected,
                                replica_fallback=fell_back)
        if response.status == 304 and cached is not None:
            validators.not_modified += 1
            return FetchOutcome(status=304, size=cached.size,
                                links=list(cached.links),
                                images=list(cached.images),
                                redirected=redirected,
                                not_modified=True, wire_size=0,
                                replica_fallback=fell_back)
        if response.status in (301, 302):
            location = response.headers.get("Location")
            if not location or followed >= max_redirects:
                # Out of follows (or nowhere to go): report the redirect
                # itself, the way max_redirects=0 callers expect.
                return FetchOutcome(status=response.status,
                                    size=len(response.body),
                                    redirected=redirected,
                                    replica_fallback=fell_back)
            from repro.http.urls import join_url

            current = join_url(current, location)
            replicas = response.headers.get(REPLICAS_HEADER, "") or ""
            if replicas:
                rerouted = _choose_replica(current, replicas)
                if rerouted is not current:
                    fell_back = fell_back or \
                        rerouted.authority != current.authority
                    current = rerouted
            redirected = True
            followed += 1
            continue
        wire_size = len(response.body)
        declared = response.headers.get_int("content-length")
        if declared is not None and declared != wire_size \
                and response.status not in _BODYLESS_STATUSES:
            # The framing layer raises on close-before-complete, but a
            # buggy or lying server can still hand over fewer (or more)
            # bytes than Content-Length promised.  Never accept such a
            # document silently: report it for WalkerStats accounting.
            return FetchOutcome(status=response.status, size=wire_size,
                                redirected=redirected, wire_size=wire_size,
                                replica_fallback=fell_back, short_body=True)
        encoding = (response.headers.get("Content-Encoding", "") or "").lower()
        if encoding == "gzip" and response.body:
            try:
                response.body = gunzip_bytes(response.body)
            except (OSError, ValueError):
                # Framing was intact but the compressed stream does not
                # decode — the payload was damaged in transit or storage.
                return FetchOutcome(status=response.status,
                                    redirected=redirected,
                                    wire_size=wire_size,
                                    replica_fallback=fell_back,
                                    corrupt_body=True)
            response.headers.remove("Content-Encoding")
        claimed = response.headers.get(DIGEST_HEADER, "") or ""
        if claimed and response.status == 200 \
                and not response.headers.get("Content-Range") \
                and not digest_matches(response.body, claimed):
            # The digest covers the identity body, so this check runs
            # after gzip decode; a mismatch means the entity the server
            # authored is not the entity we received.
            return FetchOutcome(status=response.status,
                                size=len(response.body),
                                redirected=redirected, wire_size=wire_size,
                                replica_fallback=fell_back,
                                corrupt_body=True)
        links, images = _split_links(response)
        if validators is not None and response.ok:
            validators.store(
                str(current),
                etag=response.headers.get("ETag", "") or "",
                last_modified=response.headers.get("Last-Modified", "") or "",
                size=len(response.body), links=links, images=images)
        return FetchOutcome(status=response.status, size=len(response.body),
                            links=links, images=images, redirected=redirected,
                            wire_size=wire_size, replica_fallback=fell_back)


def browser_fetch(*, timeout: float = 10.0,
                  pool: "Optional[ConnectionPool]" = None):
    """A ``fetch`` callable for :class:`RandomWalker` that behaves like
    a real browser: one validator cache for the walker's lifetime (so
    repeat visits revalidate with 304s) and gzip accepted.  The cache is
    exposed as ``fetch.validators`` for assertions and stats.
    """
    from repro.client.cache import ValidatorCache

    validators = ValidatorCache()

    def fetch(url: URL) -> FetchOutcome:
        return fetch_url(url, timeout=timeout, pool=pool,
                         validators=validators, accept_gzip=True)

    fetch.validators = validators
    return fetch


def _split_links(response: Response) -> "tuple[List[str], List[str]]":
    content_type = response.headers.get("Content-Type", "") or ""
    if not content_type.startswith("text/html") or not response.body:
        return [], []
    document = parse_html(response.body.decode("latin-1", "replace"))
    links: List[str] = []
    images: List[str] = []
    for link in extract_links(document):
        if link.embedded:
            images.append(link.value)
        elif link.tag == "a":
            links.append(link.value)
    return links, images


def head_ok(peer: Location, *, timeout: float = 3.0) -> bool:
    """Cheap liveness probe used by examples and tests.

    Targets ``/~dcws/health``, which the engine answers before any
    accounting — probing never inflates hit counters or load metrics.
    """
    request = Request(method="HEAD", target="/~dcws/health")
    try:
        response = http_fetch(peer, request, timeout=timeout)
    except (OSError, HTTPError):
        return False
    return response.status < 500
