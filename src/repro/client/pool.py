"""Pooled persistent server-to-server HTTP channels.

The 1998 prototype paid full TCP setup/teardown for every inter-server
transfer (lazy pulls, validations, pings).  :class:`ConnectionPool` keeps
one or more keep-alive channels per peer instead: a fetch takes an idle
channel (or opens one), runs a framed request/response exchange on it,
and returns it for the next transfer to the same peer.

Because every pooled exchange is a server-to-server transfer, the
piggybacked ``X-DCWS-Load`` headers ride each reuse for free — channel
reuse directly raises the global-load-table refresh rate (paper
section 3.3) on top of saving the connection overhead.

Health is observed, not probed: a channel that raises ``OSError`` or
misframes a response is evicted on the spot; if it had been idle in the
pool (the peer may simply have timed it out), the exchange is retried
once on a fresh connection.  The retry is restricted to idempotent
methods (GET/HEAD): a non-idempotent request whose exchange failed is
*not* silently replayed — the peer may have executed it before the
channel died — and raises instead.

Failure-domain hardening rides here too: an optional per-peer
:class:`repro.client.breaker.CircuitBreaker` fails fetches toward an
open peer instantly (no timeout burned per request), and an optional
:class:`repro.faults.FaultPlan` injects deterministic connect/exchange
faults for the chaos suite.
"""

from __future__ import annotations

import socket
import threading
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.document import Location
from repro.errors import DigestMismatch, HTTPError
from repro.faults import apply_corruption
from repro.http.content import DIGEST_HEADER, body_digest, digest_matches
from repro.http.messages import Request, Response, response_allows_keep_alive
from repro.client.breaker import CircuitBreaker
from repro.client.realclient import read_framed_response

if TYPE_CHECKING:
    from repro.faults import FaultPlan

#: Methods safe to replay once on a fresh connection after a failed
#: exchange on a previously-idle channel.
_IDEMPOTENT_METHODS = ("GET", "HEAD")


class _Channel:
    """One persistent socket plus its read-ahead buffer."""

    __slots__ = ("sock", "buffer", "exchanges", "peer_key")

    def __init__(self, sock: socket.socket, peer_key: str = "") -> None:
        self.sock = sock
        self.buffer = bytearray()
        self.exchanges = 0
        self.peer_key = peer_key

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class ConnectionPool:
    """Bounded per-peer pool of persistent HTTP channels.

    Thread-safe: channels are checked out under a lock and the blocking
    exchange runs outside it, so concurrent workers fetch from the same
    peer over distinct channels.

    Counters (``opens``, ``reuses``, ``evictions``, ``requests``) let
    tests and the admin endpoints assert channel reuse: a healthy pool
    shows ``opens`` far below ``requests``.
    """

    def __init__(self, *, max_per_peer: int = 4,
                 timeout: float = 10.0,
                 breaker: Optional[CircuitBreaker] = None,
                 faults: "Optional[FaultPlan]" = None) -> None:
        if max_per_peer < 1:
            raise ValueError(f"max_per_peer must be >= 1: {max_per_peer}")
        self.max_per_peer = max_per_peer
        self.timeout = timeout
        # Per-peer circuit breaker; None = always attempt (legacy mode).
        self.breaker = breaker
        # Deterministic fault injection (chaos suite); None in production.
        self.faults = faults
        self._idle: Dict[str, List[_Channel]] = {}
        self._lock = threading.Lock()
        self._closed = False
        self.opens = 0
        self.reuses = 0
        self.evictions = 0
        self.requests = 0
        self.breaker_fastfails = 0  # fetches short-circuited while open
        self.digest_rejects = 0     # bodies failing X-DCWS-Digest checks

    # ------------------------------------------------------------------
    # The one public operation
    # ------------------------------------------------------------------

    def fetch(self, peer: Location, request: Request, *,
              timeout: Optional[float] = None) -> Response:
        """Send *request* to *peer* over a pooled channel; return the
        response.  Raises ``OSError``/``HTTPError`` on peer failure."""
        if timeout is None:
            timeout = self.timeout
        request.headers.set("Connection", "keep-alive")
        key = f"{peer.host}:{peer.port}"
        if self.breaker is not None:
            try:
                self.breaker.check(key)
            except ConnectionError:
                with self._lock:
                    self.requests += 1
                    self.breaker_fastfails += 1
                raise
        try:
            response = self._fetch_attempts(peer, key, request, timeout)
        except (OSError, HTTPError):
            if self.breaker is not None:
                self.breaker.record_failure(key)
            raise
        if self.breaker is not None:
            self.breaker.record_success(key)
        return response

    def _fetch_attempts(self, peer: Location, key: str, request: Request,
                        timeout: float) -> Response:
        channel = self._take(key)
        reused = channel is not None
        if channel is None:
            channel = self._open(peer, timeout)
        try:
            response, framed = self._exchange(channel, request, timeout)
        except (OSError, HTTPError) as exc:
            self._evict(channel)
            # A digest mismatch is retry-worthy even on a fresh channel:
            # in-transit corruption is transient, and the request never
            # mutated anything on the peer (GET/HEAD only, below).
            if not (reused or isinstance(exc, DigestMismatch)) \
                    or request.method not in _IDEMPOTENT_METHODS:
                # Fresh-connection failure, or a method the peer may have
                # executed before the channel died: never silently replay.
                raise
            # An idle channel the peer had silently closed: retry once on
            # a fresh connection before declaring the peer unhealthy.
            channel = self._open(peer, timeout)
            try:
                response, framed = self._exchange(channel, request, timeout)
            except (OSError, HTTPError):
                self._evict(channel)
                raise
        if framed and response_allows_keep_alive(response) \
                and not channel.buffer:
            self._give_back(key, channel)
        else:
            channel.close()
        return response

    # ------------------------------------------------------------------

    def _exchange(self, channel: _Channel, request: Request,
                  timeout: float) -> Tuple[Response, bool]:
        corrupt = None
        if self.faults is not None:
            corrupt = self.faults.on_exchange(channel.peer_key)
        channel.sock.settimeout(timeout)
        channel.sock.sendall(request.serialize())
        response, framed = read_framed_response(
            channel.sock, channel.buffer,
            head_request=request.method == "HEAD")
        channel.exchanges += 1
        if corrupt is not None:
            # Injected in-transit corruption (chaos suite): flip after
            # the read so framing succeeds and only verification can
            # tell the body is wrong.
            response.body = apply_corruption(corrupt, response.body)
        self._verify_digest(channel.peer_key, request, response)
        return response, framed

    def _verify_digest(self, key: str, request: Request,
                       response: Response) -> None:
        """Reject a 200 body that fails its ``X-DCWS-Digest``.

        The digest covers the whole identity entity, so only full
        uncompressed 200 bodies are checkable here (inter-server
        transfers are exactly that); encoded or partial responses pass
        through for higher layers to verify after decoding.
        """
        claimed = response.headers.get(DIGEST_HEADER)
        if not claimed or response.status != 200 \
                or request.method == "HEAD" \
                or response.headers.get("Content-Encoding"):
            return
        if not digest_matches(response.body, claimed):
            with self._lock:
                self.digest_rejects += 1
            raise DigestMismatch(key, claimed, body_digest(response.body))

    def _take(self, key: str) -> Optional[_Channel]:
        with self._lock:
            self.requests += 1
            idle = self._idle.get(key)
            if not idle:
                return None
            self.reuses += 1
            return idle.pop()  # LIFO: the most recently warm channel

    def _open(self, peer: Location, timeout: float) -> _Channel:
        key = f"{peer.host}:{peer.port}"
        if self.faults is not None:
            self.faults.on_connect(key)
        sock = socket.create_connection((peer.host, peer.port),
                                        timeout=timeout)
        with self._lock:
            self.opens += 1
        return _Channel(sock, key)

    def _give_back(self, key: str, channel: _Channel) -> None:
        with self._lock:
            if not self._closed:
                idle = self._idle.setdefault(key, [])
                if len(idle) < self.max_per_peer:
                    idle.append(channel)
                    return
        channel.close()

    def _evict(self, channel: _Channel) -> None:
        with self._lock:
            self.evictions += 1
        channel.close()

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close every idle channel and refuse new returns."""
        with self._lock:
            self._closed = True
            channels = [c for idle in self._idle.values() for c in idle]
            self._idle.clear()
        for channel in channels:
            channel.close()

    def idle_count(self) -> int:
        with self._lock:
            return sum(len(idle) for idle in self._idle.values())

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ConnectionPool(requests={self.requests}, "
                f"opens={self.opens}, reuses={self.reuses}, "
                f"evictions={self.evictions}, idle={self.idle_count()})")
