"""Baseline architectures from the paper's related work (section 2).

Two comparators for the ablation benches:

- :class:`~repro.baselines.rr_dns.RoundRobinDNSCluster` — the NCSA-style
  cluster: every server holds a full replica (AFS-shared content) and a
  round-robin DNS spreads clients across servers, with TTL-cached
  mappings (the coarse-grained control the paper criticizes);
- :class:`~repro.baselines.tcprouter.TCPRouterCluster` — the
  LocalDirector/MagicRouter pattern: one router owns the virtual IP and
  every packet (we model every connection and its response bytes) passes
  through it, making the router the bottleneck the paper predicts.

Both reuse the simulator's node, network and Algorithm 2 client models so
comparisons against DCWS differ only in architecture.
"""

from repro.baselines.rr_dns import RoundRobinDNSCluster
from repro.baselines.tcprouter import TCPRouterCluster

__all__ = ["RoundRobinDNSCluster", "TCPRouterCluster"]
