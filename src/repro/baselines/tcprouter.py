"""Central TCP-router cluster baseline (paper section 2).

Models the Cisco LocalDirector / IBM TCP-router / MagicRouter pattern the
paper argues against: one router owns the virtual address, rewrites each
inbound connection to a backend chosen round-robin, and — in the common
one-armed deployment — carries the response bytes back out through its own
NIC.  "The packet router is expected to be a bottleneck as all packets
must pass through it" (section 1): here that is literal, because every
response reserves the router's 100 Mbps egress and a per-connection slice
of router CPU.

Backends are full replicas (the router pattern assumes identical servers).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.client.walker import WalkerStats
from repro.datasets.base import SiteContent
from repro.errors import SimulationError
from repro.html.links import extract_links
from repro.html.parser import parse_html
from repro.http.messages import Request, Response
from repro.http.urls import URL
from repro.server.filestore import MemoryStore
from repro.baselines.rr_dns import BaselineResult, _CountingSampler
from repro.sim.cluster import ClusterConfig
from repro.sim.events import EventLoop
from repro.sim.network import BandwidthLink, Serializer
from repro.sim.simclient import SimClient
from repro.sim.simserver import StaticServer

#: CPU the router spends rewriting one connection's packets (seconds).
ROUTER_CONNECTION_CPU = 0.0002


class TCPRouterCluster:
    """N replicated backends behind one connection-rewriting router."""

    def __init__(self, site: SiteContent, config: ClusterConfig) -> None:
        if config.servers < 1:
            raise SimulationError("need at least one backend")
        self.site = site
        self.config = config
        self.loop = EventLoop()
        self.switch = BandwidthLink(config.costs.switch_bandwidth, "switch")
        shared = MemoryStore(site.documents)
        self.backends: List[StaticServer] = [
            StaticServer(f"backend{i}", shared, self.loop, config.costs,
                         workers=config.server_config.worker_threads,
                         queue_length=config.server_config.socket_queue_length,
                         switch=self.switch)
            for i in range(config.servers)
        ]
        self.router_cpu = Serializer("router-cpu")
        self.router_nic = BandwidthLink(config.costs.node_bandwidth, "router-nic")
        self._rotor = 0
        self._sampler = _CountingSampler(config.sample_interval)
        self._served_last: Dict[str, int] = {}
        self._parse_cache: Dict[bytes, tuple] = {}
        self.clients: List[SimClient] = []
        entry_urls = [URL("vip", 80, entry) for entry in site.entry_points]
        for index in range(config.clients):
            self.clients.append(SimClient(
                index, self.loop, config.costs,
                send=self._route, parse=self._parse,
                entry_points=entry_urls,
                seed=config.seed * 10_000 + index))

    # ------------------------------------------------------------------
    # The router data path
    # ------------------------------------------------------------------

    def _route(self, url: URL, request: Request,
               on_response: Callable[[Optional[Response]], None]) -> None:
        """client -> router (CPU) -> backend -> router (NIC) -> client."""
        costs = self.config.costs
        backend = self.backends[self._rotor % len(self.backends)]
        self._rotor += 1
        __, cpu_end = self.router_cpu.reserve(
            self.loop.now + costs.link_latency, ROUTER_CONNECTION_CPU)

        def backend_responded(response: Optional[Response]) -> None:
            if response is None:
                self._sampler.count(None)
                on_response(None)
                return
            nbytes = len(response.body) + costs.effective_connection_overhead()
            __, nic_end = self.router_nic.reserve_bytes(self.loop.now, nbytes)
            arrival = nic_end + costs.link_latency
            self.loop.schedule(arrival, lambda: _deliver(response))

        def _deliver(response: Response) -> None:
            self._sampler.count(response)
            on_response(response)

        self.loop.schedule(cpu_end + costs.link_latency,
                           lambda: backend.deliver(request, backend_responded))

    def _parse(self, content_type: str, body: bytes):
        if not content_type.startswith("text/html") or not body:
            return [], []
        cached = self._parse_cache.get(body)
        if cached is not None:
            return cached
        document = parse_html(body.decode("latin-1", "replace"))
        links = [l.value for l in extract_links(document) if not l.embedded]
        images = [l.value for l in extract_links(document) if l.embedded]
        result = (links, images)
        self._parse_cache[body] = result
        return result

    # ------------------------------------------------------------------

    def run(self) -> BaselineResult:
        rng = random.Random(self.config.seed)
        ramp = max(self.config.client_ramp, 1e-9)
        for client in self.clients:
            client.start(delay=rng.uniform(0.0, ramp))
        self.loop.every(self.config.sample_interval, self._take_sample,
                        end=self.config.duration)
        self.loop.run_until(self.config.duration)
        for client in self.clients:
            client.stop()
        return self._result()

    def _take_sample(self) -> None:
        per_server: Dict[str, float] = {}
        for backend in self.backends:
            last = self._served_last.get(backend.name, 0)
            per_server[backend.name] = (
                (backend.served - last) / self.config.sample_interval)
            self._served_last[backend.name] = backend.served
        self._sampler.take(self.loop.now, per_server)

    def _result(self) -> BaselineResult:
        client_stats = WalkerStats()
        for client in self.clients:
            client_stats.requests += client.stats.requests
            client_stats.sequences += client.stats.sequences
            client_stats.drops += client.stats.drops
            client_stats.errors += client.stats.errors
            client_stats.bytes_received += client.stats.bytes_received
        per_server = {
            b.name: {"served": b.served, "dropped": b.dropped,
                     "cpu_utilization": b.cpu.utilization(self.loop.now)}
            for b in self.backends}
        per_server["router"] = {
            "cpu_utilization": self.router_cpu.utilization(self.loop.now),
            "nic_utilization": self.router_nic.utilization(self.loop.now),
        }
        return BaselineResult(
            series=self._sampler.series,
            client_stats=client_stats,
            drops=sum(b.dropped for b in self.backends),
            storage_bytes=self.site.stats.total_bytes * len(self.backends),
            events_processed=self.loop.events_processed,
            per_server=per_server,
        )
