"""Round-robin DNS cluster baseline (paper section 2, NCSA prototype).

Every server is an identical replica of the whole site (the NCSA system
shared content through AFS).  A DNS round-robin hands out server addresses;
clients cache the mapping for a TTL, so one client sticks to one server
for TTL seconds — the coarse granularity the paper contrasts with DCWS's
per-document control.

Storage cost is ``N × site size`` (reported in the result), which is the
baseline's structural disadvantage even when its throughput matches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.client.walker import WalkerStats
from repro.datasets.base import SiteContent
from repro.errors import SimulationError
from repro.http.messages import Request, Response
from repro.http.urls import URL
from repro.server.filestore import MemoryStore
from repro.server.stats import ClusterSample, TimeSeries
from repro.sim.cluster import ClusterConfig
from repro.sim.events import EventLoop
from repro.sim.network import BandwidthLink
from repro.sim.simclient import SimClient
from repro.sim.simserver import StaticServer

from repro.html.links import extract_links
from repro.html.parser import parse_html


@dataclass
class BaselineResult:
    """Mirror of :class:`repro.sim.cluster.SimulationResult` essentials."""

    series: TimeSeries
    client_stats: WalkerStats
    drops: int
    storage_bytes: int
    events_processed: int
    per_server: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def peak_cps(self) -> float:
        return self.series.peak_cps()

    @property
    def peak_bps(self) -> float:
        return self.series.peak_bps()

    def steady_cps(self, fraction: float = 0.5) -> float:
        return self.series.steady_state(fraction).mean_cps()

    def steady_bps(self, fraction: float = 0.5) -> float:
        return self.series.steady_state(fraction).mean_bps()


class _CountingSampler:
    """Derives CPS/BPS series from cluster-level delta counters."""

    def __init__(self, interval: float) -> None:
        self.interval = interval
        self.requests = 0
        self.bytes = 0
        self.drops = 0
        self._last_requests = 0
        self._last_bytes = 0
        self.series = TimeSeries()

    def count(self, response: Optional[Response]) -> None:
        if response is None:
            return
        self.requests += 1
        self.bytes += len(response.body)
        if response.status == 503:
            self.drops += 1

    def take(self, now: float, per_server_cps: Dict[str, float]) -> None:
        cps = (self.requests - self._last_requests) / self.interval
        bps = (self.bytes - self._last_bytes) / self.interval
        self._last_requests = self.requests
        self._last_bytes = self.bytes
        self.series.add(ClusterSample(time=now, cps=cps, bps=bps,
                                      drops_per_second=0.0,
                                      per_server_cps=per_server_cps))


class RoundRobinDNSCluster:
    """N replicated static servers behind a round-robin DNS."""

    def __init__(self, site: SiteContent, config: ClusterConfig, *,
                 dns_ttl: float = 30.0) -> None:
        if config.servers < 1:
            raise SimulationError("need at least one server")
        self.site = site
        self.config = config
        self.dns_ttl = dns_ttl
        self.loop = EventLoop()
        self.switch = BandwidthLink(config.costs.switch_bandwidth, "switch")
        # One shared dict: replicas without N copies in host memory (the
        # model charges storage_bytes = N × size in the result instead).
        shared = MemoryStore(site.documents)
        self.servers: List[StaticServer] = [
            StaticServer(f"replica{i}", shared, self.loop, config.costs,
                         workers=config.server_config.worker_threads,
                         queue_length=config.server_config.socket_queue_length,
                         switch=self.switch)
            for i in range(config.servers)
        ]
        self._rotor = 0
        self._sampler = _CountingSampler(config.sample_interval)
        self._served_last: Dict[str, int] = {}
        self._parse_cache: Dict[bytes, tuple] = {}
        self.clients: List[SimClient] = []
        entry_urls = [URL("www", 80, entry) for entry in site.entry_points]
        for index in range(config.clients):
            self.clients.append(SimClient(
                index, self.loop, config.costs,
                send=self._make_send(index), parse=self._parse,
                entry_points=entry_urls,
                seed=config.seed * 10_000 + index))

    # ------------------------------------------------------------------

    def _resolve(self, lease: Dict[str, object]) -> StaticServer:
        """Round-robin DNS with client-side TTL caching."""
        now = self.loop.now
        expires = lease.get("expires", -1.0)
        if lease.get("server") is None or now >= float(expires):  # type: ignore[arg-type]
            lease["server"] = self.servers[self._rotor % len(self.servers)]
            self._rotor += 1
            lease["expires"] = now + self.dns_ttl
        return lease["server"]  # type: ignore[return-value]

    def _make_send(self, client_index: int):
        lease: Dict[str, object] = {"server": None, "expires": -1.0}

        def send(url: URL, request: Request,
                 on_response: Callable[[Optional[Response]], None]) -> None:
            server = self._resolve(lease)

            def counted(response: Optional[Response]) -> None:
                self._sampler.count(response)
                on_response(response)

            arrival = self.loop.now + self.config.costs.link_latency
            self.loop.schedule(arrival,
                               lambda: server.deliver(request, counted))

        return send

    def _parse(self, content_type: str, body: bytes):
        if not content_type.startswith("text/html") or not body:
            return [], []
        cached = self._parse_cache.get(body)
        if cached is not None:
            return cached
        document = parse_html(body.decode("latin-1", "replace"))
        links = [l.value for l in extract_links(document) if not l.embedded]
        images = [l.value for l in extract_links(document) if l.embedded]
        result = (links, images)
        self._parse_cache[body] = result
        return result

    # ------------------------------------------------------------------

    def run(self) -> BaselineResult:
        rng = random.Random(self.config.seed)
        ramp = max(self.config.client_ramp, 1e-9)
        for client in self.clients:
            client.start(delay=rng.uniform(0.0, ramp))
        self.loop.every(self.config.sample_interval, self._take_sample,
                        end=self.config.duration)
        self.loop.run_until(self.config.duration)
        for client in self.clients:
            client.stop()
        return self._result()

    def _take_sample(self) -> None:
        per_server: Dict[str, float] = {}
        for server in self.servers:
            last = self._served_last.get(server.name, 0)
            per_server[server.name] = (
                (server.served - last) / self.config.sample_interval)
            self._served_last[server.name] = server.served
        self._sampler.take(self.loop.now, per_server)

    def _result(self) -> BaselineResult:
        client_stats = WalkerStats()
        for client in self.clients:
            client_stats.requests += client.stats.requests
            client_stats.sequences += client.stats.sequences
            client_stats.drops += client.stats.drops
            client_stats.errors += client.stats.errors
            client_stats.bytes_received += client.stats.bytes_received
        per_server = {
            s.name: {"served": s.served, "dropped": s.dropped,
                     "cpu_utilization": s.cpu.utilization(self.loop.now)}
            for s in self.servers}
        return BaselineResult(
            series=self._sampler.series,
            client_stats=client_stats,
            drops=sum(s.dropped for s in self.servers),
            storage_bytes=self.site.stats.total_bytes * len(self.servers),
            events_processed=self.loop.events_processed,
            per_server=per_server,
        )
