"""Command-line interface: ``python -m repro <command>``.

Four commands cover the library's main entry points:

- ``serve``    — run a real DCWS server over a directory of documents;
- ``simulate`` — run a virtual-time cluster experiment and print results;
- ``dataset``  — generate one of the paper's corpora (stats or to disk);
- ``bench``    — run one paper experiment driver (figure6/7/8, table2, ...).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.datasets import DATASET_BUILDERS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DCWS: Distributed Cooperative Web Server (Baker & "
                    "Moon, ICDE 1999) — reproduction toolkit")
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser(
        "serve", help="run a real DCWS server over a document directory")
    serve.add_argument("--root", required=True,
                       help="directory containing the site's documents")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--peer", action="append", default=[],
                       metavar="HOST:PORT",
                       help="co-operating server (repeatable)")
    serve.add_argument("--entry", action="append", default=[],
                       metavar="/PATH",
                       help="well-known entry point (repeatable; "
                            "default /index.html if present)")
    serve.add_argument("--time-factor", type=float, default=1.0,
                       help="compress every Table 1 interval by this factor")
    serve.add_argument("--state-file", default=None,
                       help="snapshot migration state here (restored on "
                            "restart)")
    serve.add_argument("--journal", default=None, metavar="FILE",
                       help="write-ahead journal of every state mutation; "
                            "with --state-file, restarts recover by "
                            "snapshot + replay instead of snapshot alone")
    serve.add_argument("--wal-fsync", choices=["always", "interval", "off"],
                       default="interval",
                       help="journal fsync policy: every record (group-"
                            "committed), the periodic tick, or never")
    serve.add_argument("--front-end", choices=["threaded", "aio"],
                       default="threaded",
                       help="socket front end: thread-per-connection "
                            "(the paper's prototype) or the nonblocking "
                            "event loop (thousands of keep-alive clients)")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes sharing the port "
                            "(SO_REUSEPORT, or fd hand-off where "
                            "unavailable); 1 = single-process")
    serve.add_argument("--replication-k", type=int, default=1, metavar="K",
                       help="replication-group size for hot documents: "
                            "K >= 2 enables k-copy placement with "
                            "autonomous repair; 1 = single-location "
                            "(the prototype)")

    simulate = commands.add_parser(
        "simulate", help="run a virtual-time cluster experiment")
    simulate.add_argument("--dataset", default="lod",
                          choices=sorted(DATASET_BUILDERS))
    simulate.add_argument("--servers", type=int, default=4)
    simulate.add_argument("--clients", type=int, default=64)
    simulate.add_argument("--duration", type=float, default=60.0)
    simulate.add_argument("--sample-interval", type=float, default=10.0)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument("--time-factor", type=float, default=0.3)
    simulate.add_argument("--prewarm", action="store_true",
                          help="start from a balanced (warmed) cluster")
    simulate.add_argument("--replication-k", type=int, default=1,
                          metavar="K",
                          help="replication-group size (K >= 2 enables "
                               "replication groups with autonomous repair)")

    dataset = commands.add_parser(
        "dataset", help="generate one of the paper's data sets")
    dataset.add_argument("--name", required=True,
                         choices=sorted(DATASET_BUILDERS))
    dataset.add_argument("--seed", type=int, default=0)
    dataset.add_argument("--out", default=None,
                         help="write documents under this directory "
                              "(default: print statistics only)")

    bench = commands.add_parser(
        "bench", help="run one paper experiment driver")
    bench.add_argument("experiment",
                       choices=["figure6", "figure7", "figure8", "table2",
                                "overhead", "cps_vs_bps",
                                "ablation_baselines", "ablation_replication",
                                "ablation_selection", "bench_kill_holder"])
    return parser


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------

def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.server.aio import AsyncDCWSServer
    from repro.server.engine import DCWSEngine
    from repro.server.filestore import DiskStore
    from repro.server.threaded import ThreadedDCWSServer

    store = DiskStore(args.root)
    names = store.names()
    if not names:
        print(f"no documents under {args.root}", file=sys.stderr)
        return 1
    entries = args.entry or (["/index.html"] if "/index.html" in names else [])
    peers = [Location.parse(peer) for peer in args.peer]
    import dataclasses

    config = ServerConfig().scaled(args.time_factor) \
        if args.time_factor != 1.0 else ServerConfig()
    if getattr(args, "wal_fsync", "interval") != config.wal_fsync:
        config = dataclasses.replace(config, wal_fsync=args.wal_fsync)
    replication_k = getattr(args, "replication_k", 1)
    if replication_k > 1:
        config = dataclasses.replace(
            config, replication_k=replication_k,
            max_replicas=max(config.max_replicas, replication_k))
    workers = getattr(args, "workers", 1)
    if workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if workers > 1:
        from repro.server.multiproc import WorkerSupervisor, choose_mode

        mode = choose_mode()
        if mode is None:
            print("warning: neither SO_REUSEPORT nor unix fd passing is "
                  "available on this platform; running a single process",
                  file=sys.stderr)
            workers = 1
        else:
            def factory(index: int, location: Location) -> DCWSEngine:
                return DCWSEngine(location, config, DiskStore(args.root),
                                  entry_points=entries, peers=peers)

            supervisor = WorkerSupervisor(
                factory, workers, host=args.host, port=args.port,
                mode=mode, stripes=config.lock_stripes,
                server_options={"snapshot_path": args.state_file,
                                "journal_path": getattr(args, "journal",
                                                        None)})
            supervisor.start()
            print(f"DCWS server on http://{args.host}:{supervisor.port} "
                  f"({len(names)} documents, {len(peers)} peers, "
                  f"{workers} workers via {mode})")
            print(f"workers: http://{args.host}:{supervisor.port}"
                  f"/~dcws/workers")
            try:
                while True:
                    time.sleep(1.0)
            except KeyboardInterrupt:
                print("\nshutting down")
            finally:
                supervisor.stop()
            return 0
    engine = DCWSEngine(Location(args.host, args.port), config, store,
                        entry_points=entries, peers=peers)
    server_cls = (AsyncDCWSServer if getattr(args, "front_end", "threaded")
                  == "aio" else ThreadedDCWSServer)
    server = server_cls(engine, snapshot_path=args.state_file,
                        journal_path=getattr(args, "journal", None))
    server.start()
    print(f"DCWS server on http://{args.host}:{args.port} "
          f"({len(names)} documents, {len(peers)} peers, "
          f"{args.front_end} front end)")
    print(f"status: http://{args.host}:{args.port}/~dcws/status")
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.bench.reporting import format_table, sparkline
    from repro.sim.cluster import ClusterConfig, SimCluster

    site = DATASET_BUILDERS[args.dataset](seed=0)
    server_config = ServerConfig().scaled(args.time_factor)
    replication_k = getattr(args, "replication_k", 1)
    if replication_k > 1:
        import dataclasses

        server_config = dataclasses.replace(
            server_config, replication_k=replication_k,
            max_replicas=max(server_config.max_replicas, replication_k))
    config = ClusterConfig(
        servers=args.servers, clients=args.clients, duration=args.duration,
        sample_interval=args.sample_interval, seed=args.seed,
        server_config=server_config,
        prewarm=args.prewarm)
    print(f"simulating {args.dataset}: {args.servers} servers, "
          f"{args.clients} clients, {args.duration:g}s virtual "
          f"(prewarm={args.prewarm})")
    result = SimCluster(site, config).run()
    cps = result.series.cps_series()
    print("\nCPS " + sparkline(cps))
    print(format_table(
        ("t (s)", "CPS", "BPS (MB/s)"),
        [(t, c, b / 1e6) for t, c, b in
         zip(result.series.times(), cps, result.series.bps_series())]))
    print(f"\nsteady CPS {result.steady_cps():.0f}   "
          f"steady BPS {result.steady_bps() / 1e6:.2f} MB/s")
    print(f"migrations {result.migrations}   drops {result.drops}   "
          f"redirects {result.redirects_served}   "
          f"events {result.events_processed}")
    if result.repairs or result.replica_drops:
        print(f"replica repairs {result.repairs}   "
              f"replica drops {result.replica_drops}")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    site = DATASET_BUILDERS[args.name](seed=args.seed)
    stats = site.stats
    print(f"{site.name}: {stats.documents} documents "
          f"({stats.html_documents} HTML, {stats.images} images), "
          f"{stats.links} links, {stats.total_kbytes:.0f} KB")
    print(f"entry points: {site.entry_points}")
    if args.out:
        from repro.server.filestore import DiskStore

        store = DiskStore(args.out)
        for name, data in site.documents.items():
            store.put(name, data)
        print(f"wrote {len(site.documents)} files under {args.out}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import figures

    driver = getattr(figures, args.experiment)
    result = driver()
    print(result.format())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "serve": _cmd_serve,
        "simulate": _cmd_simulate,
        "dataset": _cmd_dataset,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
