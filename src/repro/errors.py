"""Exception hierarchy shared by every subsystem of the DCWS reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class at the API boundary.  Subsystems define narrower types
here rather than in their own modules so that low-level packages (``http``,
``html``) never import higher-level ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class HTTPError(ReproError):
    """Malformed HTTP message, header, or URL."""


class InvalidContentLength(HTTPError):
    """A ``Content-Length`` value that is not a plain ASCII-digit integer.

    Negative numbers, signs, whitespace, underscores — anything ``int()``
    would tolerate but RFC 7230 section 3.3.2 forbids.  Raised separately
    from the base class because an invalid length frames *no* body bytes:
    a connection-oriented parser can consume exactly the request head,
    answer 400, and keep serving subsequent pipelined requests.
    """


class RecoverableProtocolError(HTTPError):
    """A request-level protocol violation whose bytes were fully consumed.

    Raised by :class:`repro.http.wire.RequestParser` after it has removed
    the offending request from its buffer: the front end should answer
    400 for *this* request and may keep the connection open — the next
    pipelined request still parses from a clean buffer.  Contrast with
    plain :class:`HTTPError`, where framing is unknowable and the only
    safe reaction is to close the connection.
    """


class URLError(HTTPError):
    """A URL could not be parsed, joined, or encoded."""


class DigestMismatch(HTTPError):
    """A response body failed verification against its ``X-DCWS-Digest``.

    The bytes were corrupted in transit or at the sender (bit-rot served
    before the scrubber caught it).  An HTTPError subclass so every
    transport-failure handler (pool retry, circuit accounting, pull
    degradation) treats it as a failed exchange — the one divergence is
    that callers who *know* the distinction count it separately and may
    retry another holder immediately.
    """

    def __init__(self, target: str, expected: str, actual: str) -> None:
        super().__init__(
            f"digest mismatch from {target}: expected {expected}, "
            f"got {actual}")
        self.target = target
        self.expected = expected
        self.actual = actual


class HTMLParseError(ReproError):
    """The HTML tokenizer/parser met input it cannot recover from.

    The parser is deliberately lenient (real-world 1998 HTML is messy), so
    this is raised only for conditions that indicate a caller bug, such as
    serializing a foreign object injected into a parse tree.
    """


class DocumentNotFound(ReproError):
    """A requested document name has no tuple in the local document graph."""

    def __init__(self, name: str) -> None:
        super().__init__(f"document not found: {name!r}")
        self.name = name


class MigrationError(ReproError):
    """A document-migration operation violated a policy invariant.

    Examples: migrating a well-known entry point, migrating a document that
    is already hosted by a co-op server, or revoking a document that was
    never migrated.
    """


class NamingError(ReproError):
    """A migrated-document URL does not follow the ``~migrate`` convention."""


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistency.

    Raised for programming errors such as scheduling an event in the past or
    running a cluster with no clients; never raised for modelled phenomena
    like dropped requests (those are results, not errors).
    """


class ConfigError(ReproError):
    """A server/benchmark configuration value is out of its valid domain."""
