"""Deterministic fault injection for the failure-domain chaos suite.

DCWS's value proposition is surviving dead co-ops and hot spots (paper
section 4.5), which is only testable if failures can be *injected* — on
the real socket path, in the disk store, and in the simulator — and
*reproduced*: a chaos run that fails in CI must replay identically from
its seed.

A :class:`FaultPlan` is a seeded schedule of :class:`FaultRule` matches.
Every injection point (a *site*) asks the plan before doing the real
work:

- ``connect``  — opening a server-to-server channel
  (:meth:`repro.client.pool.ConnectionPool._open`, the unpooled path in
  :func:`repro.client.realclient.http_fetch`);
- ``exchange`` — sending a request / reading a response on an open
  channel (:meth:`repro.client.pool.ConnectionPool._exchange`);
- ``disk``     — reading document bytes
  (:meth:`repro.server.filestore.DiskStore.get`);
- ``disk_write`` — durably writing bytes: document puts
  (:meth:`repro.server.filestore.DiskStore.put`) and write-ahead journal
  appends (:meth:`repro.server.wal.WriteAheadJournal.append`).  The
  ``torn_write`` kind persists only a prefix of the data before failing,
  simulating power loss mid-write;
- the simulator consults the same plan through
  :class:`repro.sim.network.FaultyTransport`, so one seed describes one
  fault schedule whether the transport is real sockets or virtual time.

Determinism: all randomness (probabilistic rules, delay jitter) comes
from one ``random.Random(seed)`` consumed in call order under a lock, and
every injected fault is appended to :attr:`FaultPlan.injected`.  Two
plans with equal rules and seeds driven through the same sequence of
checks produce byte-identical schedules — the property
``tests/test_faults.py`` asserts and the CI chaos step relies on for
seed-replay debugging.

Injected failures are subclasses of the exception a *real* failure would
raise (``ConnectionRefusedError``, ``ConnectionResetError``,
``socket.timeout``, :class:`repro.errors.HTTPError`, ``OSError``), so
the code under test cannot tell injection from the genuine article and
no special-casing leaks into production paths.
"""

from __future__ import annotations

import os
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigError, HTTPError

#: Fault kinds and the site each fires at by default.
KINDS = {
    "connect_refused": "connect",   # peer's listener is gone (fast failure)
    "blackhole": "connect",         # partition: packets vanish, timeout
    "reset": "exchange",            # RST mid-exchange
    "truncate": "exchange",         # peer closes before the body completes
    "delay": "exchange",            # slow peer (fixed + jittered latency)
    "disk_error": "disk",           # unreadable file under a healthy path
    "disk_write_error": "disk_write",  # write to disk fails outright
    "torn_write": "disk_write",     # power loss mid-write: a prefix lands
    # Silent data corruption: one byte of the payload is flipped at a
    # seeded offset.  Fires at ``exchange`` (in-transit corruption of a
    # response body) by default; with ``site="disk"`` it models bit-rot
    # on a stored document instead.  Never raises — the corrupted bytes
    # flow onward, which is the whole point: only digest verification
    # (repro.server.integrity) can catch it.
    "corrupt": "exchange",
}

SITES = ("connect", "exchange", "disk", "disk_write")


class InjectedConnectRefused(ConnectionRefusedError):
    """Fault injection: the peer refused the connection."""


class InjectedReset(ConnectionResetError):
    """Fault injection: the peer reset the connection mid-exchange."""


class InjectedTimeout(socket.timeout):
    """Fault injection: a blackholed peer never answered (partition)."""


class InjectedTruncation(HTTPError):
    """Fault injection: the response was cut short of its framed length."""


class InjectedDiskError(OSError):
    """Fault injection: the document bytes could not be read from disk."""


@dataclass(frozen=True)
class FaultRule:
    """One fault to inject when its site/target filters match.

    ``peer`` matches the ``host:port`` of the remote end (``"*"`` = any);
    ``name`` matches the document path for disk faults.  ``probability``
    draws from the plan's seeded RNG; ``skip_first`` lets the first N
    matching events through untouched (e.g. allow the lazy pull, then
    partition); ``max_injections`` retires the rule after N injections.
    ``delay``/``jitter`` apply to ``kind="delay"`` (seconds).
    """

    kind: str
    site: str = ""                 # defaults to the kind's natural site
    peer: str = "*"
    name: str = "*"
    probability: float = 1.0
    skip_first: int = 0
    max_injections: Optional[int] = None
    delay: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(f"unknown fault kind: {self.kind!r}")
        site = self.site or KINDS[self.kind]
        if site not in SITES:
            raise ConfigError(f"unknown fault site: {site!r}")
        object.__setattr__(self, "site", site)
        if not (0.0 <= self.probability <= 1.0):
            raise ConfigError("probability must be in [0, 1]")
        if self.skip_first < 0 or self.delay < 0 or self.jitter < 0:
            raise ConfigError("skip_first/delay/jitter must be non-negative")

    def matches_target(self, site: str, target: str) -> bool:
        if site != self.site:
            return False
        pattern = self.name if site in ("disk", "disk_write") else self.peer
        return pattern == "*" or pattern == target


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, in schedule order."""

    index: int      # 0-based position in the plan's injection schedule
    site: str
    kind: str
    target: str     # peer "host:port" or document name
    delay: float = 0.0
    # ``corrupt`` only: seeded byte offset of the flip, reduced modulo
    # the payload length at the application site — one seed flips the
    # same byte whether the payload crosses a socket or sits on disk.
    offset: int = 0


def apply_corruption(event: FaultEvent, data: bytes) -> bytes:
    """Flip one byte of *data* at the event's seeded offset.

    The offset is reduced modulo the payload length and the byte XORed
    with 0xFF, so the flip is deterministic for (seed, payload length),
    always changes the bytes, and is identical whichever transport the
    payload crosses.  Empty payloads pass through untouched (nothing to
    corrupt, and digests of empty bodies stay consistent).
    """
    if event.kind != "corrupt" or not data:
        return data
    corrupted = bytearray(data)
    corrupted[event.offset % len(data)] ^= 0xFF
    return bytes(corrupted)


class FaultPlan:
    """A seeded, thread-safe fault schedule shared by every injection site.

    The plan is consulted with :meth:`on_connect`, :meth:`on_exchange`
    and :meth:`on_disk_read`, which sleep (delays) or raise (everything
    else).  The simulator uses :meth:`decide` directly and converts the
    returned event into virtual-time behaviour.

    ``enabled`` gates all injection; :meth:`block`/:meth:`unblock` toggle
    a runtime partition of one peer on top of the static rules (chaos
    tests partition and heal without rebuilding the plan — dynamic blocks
    are recorded in the schedule like any other injection).
    """

    def __init__(self, rules: List[FaultRule] = (), *, seed: int = 0,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.rules = list(rules)
        self.seed = seed
        self.enabled = True
        self.injected: List[FaultEvent] = []
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._seen: List[int] = [0] * len(self.rules)
        self._fired: List[int] = [0] * len(self.rules)
        self._blocked: set = set()

    @classmethod
    def from_env(cls, rules: List[FaultRule] = (), *,
                 variable: str = "REPRO_FAULT_SEED") -> "FaultPlan":
        """A plan seeded from the environment, so a failing CI chaos run
        prints one number that replays the identical schedule locally."""
        return cls(rules, seed=int(os.environ.get(variable, "0") or "0"))

    # ------------------------------------------------------------------
    # Decision core (shared by the real hooks and the sim adapter)
    # ------------------------------------------------------------------

    def decide(self, site: str, target: str) -> Optional[FaultEvent]:
        """Should a fault fire for this event?  Consumes RNG/counters, so
        every consult advances the schedule deterministically."""
        with self._lock:
            if not self.enabled:
                return None
            if site in ("connect", "exchange") and target in self._blocked:
                return self._record(site, "blackhole", target, 0.0)
            for index, rule in enumerate(self.rules):
                if not rule.matches_target(site, target):
                    continue
                self._seen[index] += 1
                if self._seen[index] <= rule.skip_first:
                    continue
                if rule.max_injections is not None and \
                        self._fired[index] >= rule.max_injections:
                    continue
                if rule.probability < 1.0 and \
                        self._rng.random() >= rule.probability:
                    continue
                self._fired[index] += 1
                delay = rule.delay
                if rule.kind == "delay" and rule.jitter > 0.0:
                    delay += self._rng.uniform(0.0, rule.jitter)
                offset = 0
                if rule.kind == "corrupt":
                    offset = self._rng.randrange(1 << 20)
                return self._record(site, rule.kind, target, delay,
                                    offset=offset)
        return None

    def _record(self, site: str, kind: str, target: str,
                delay: float, offset: int = 0) -> FaultEvent:
        event = FaultEvent(index=len(self.injected), site=site, kind=kind,
                           target=target, delay=delay, offset=offset)
        self.injected.append(event)
        return event

    def schedule(self) -> List[Tuple[int, str, str, str, int]]:
        """The injection schedule as comparable tuples (determinism
        checks; ``delay`` is excluded so jittered schedules from equal
        seeds still compare equal on identity, not float formatting —
        ``offset`` is an exact int, so it stays: same seed, same flips)."""
        return [(e.index, e.site, e.kind, e.target, e.offset)
                for e in self.injected]

    # ------------------------------------------------------------------
    # Runtime partition control (chaos harness convenience)
    # ------------------------------------------------------------------

    def block(self, peer: str) -> None:
        """Partition *peer*: every connect/exchange to it blackholes."""
        with self._lock:
            self._blocked.add(peer)

    def unblock(self, peer: str) -> None:
        """Heal the partition toward *peer*."""
        with self._lock:
            self._blocked.discard(peer)

    # ------------------------------------------------------------------
    # Real-transport hooks
    # ------------------------------------------------------------------

    def on_connect(self, peer: str) -> None:
        """Called before opening a connection to *peer*."""
        self._apply(self.decide("connect", peer), peer)

    def on_exchange(self, peer: str) -> Optional[FaultEvent]:
        """Called before a request/response exchange with *peer*.

        Raises (or sleeps) for every kind except ``corrupt``, which is
        *returned*: the caller must run :func:`apply_corruption` over the
        response body it reads — corruption is silent by definition, so
        the transport cannot raise it."""
        event = self.decide("exchange", peer)
        if event is not None and event.kind == "corrupt":
            return event
        self._apply(event, peer)
        return None

    def on_disk_read(self, name: str) -> Optional[FaultEvent]:
        """Called before reading *name*'s bytes from a disk store.

        Same contract as :meth:`on_exchange`: a ``corrupt`` event is
        returned for the store to apply to the bytes it reads; every
        other disk fault raises."""
        event = self.decide("disk", name)
        if event is None or event.kind == "corrupt":
            return event
        raise InjectedDiskError(f"injected disk-read error: {name}")

    def check_disk_write(self, name: str) -> Optional[FaultEvent]:
        """Called before writing *name*'s bytes durably.

        ``disk_write_error`` raises here (the write never happens).  A
        ``torn_write`` event is *returned* instead: the call site must
        persist only a prefix of the data and then raise
        :class:`InjectedDiskError` itself — simulating power loss partway
        through the write, which is exactly the failure crash-atomic
        stores and journal recovery have to survive.
        """
        event = self.decide("disk_write", name)
        if event is None:
            return None
        if event.kind == "disk_write_error":
            raise InjectedDiskError(f"injected disk-write error: {name}")
        return event

    def _apply(self, event: Optional[FaultEvent], target: str) -> None:
        if event is None or event.kind == "corrupt":
            return
        if event.kind == "delay":
            self._sleep(event.delay)
            return
        if event.kind == "connect_refused":
            raise InjectedConnectRefused(f"injected connect refused: {target}")
        if event.kind == "blackhole":
            raise InjectedTimeout(f"injected partition: {target}")
        if event.kind == "reset":
            raise InjectedReset(f"injected connection reset: {target}")
        if event.kind == "truncate":
            raise InjectedTruncation(
                f"injected truncation: connection closed before the "
                f"response body completed ({target})")
        raise InjectedDiskError(f"injected fault: {event.kind} ({target})")

    def __repr__(self) -> str:
        return (f"FaultPlan(seed={self.seed}, rules={len(self.rules)}, "
                f"injected={len(self.injected)})")
