"""Piggybacked load-information extension headers (paper section 3.3).

DCWS servers never open connections just to gossip load: whenever an HTTP
transfer already happens between two servers (a lazy-migration pull, a
validation re-request, or a pinger probe), each side attaches its view of
the global load table as ``X-DCWS-Load`` extension headers.  Standard HTTP
semantics guarantee unknown extension headers are ignored by servers and
clients that do not understand them, so the mechanism is fully compatible
with ordinary web traffic.

Wire format, one header per known server::

    X-DCWS-Load: server=<host:port>; metric=<float>; ts=<float>

``ts`` is the origin server's timestamp for the measurement; receivers merge
with newest-timestamp-wins (:meth:`repro.core.glt.GlobalLoadTable.merge`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.errors import HTTPError
from repro.http.headers import Headers

LOAD_HEADER = "X-DCWS-Load"
SENDER_HEADER = "X-DCWS-Sender"


@dataclass(frozen=True, order=True)
class LoadReport:
    """One server's load measurement at one point in time."""

    server: str
    metric: float
    timestamp: float

    def encode(self) -> str:
        return f"server={self.server}; metric={self.metric:.6g}; ts={self.timestamp:.6f}"

    @classmethod
    def decode(cls, text: str) -> "LoadReport":
        fields = {}
        for part in text.split(";"):
            key, sep, value = part.strip().partition("=")
            if not sep:
                raise HTTPError(f"malformed load report field: {part!r}")
            fields[key.strip()] = value.strip()
        try:
            return cls(server=fields["server"],
                       metric=float(fields["metric"]),
                       timestamp=float(fields["ts"]))
        except (KeyError, ValueError) as exc:
            raise HTTPError(f"malformed load report: {text!r}") from exc


def attach_load_reports(headers: Headers, sender: str,
                        reports: Iterable[LoadReport]) -> None:
    """Attach *sender*'s identity and its load-table snapshot to *headers*."""
    headers.set(SENDER_HEADER, sender)
    headers.remove(LOAD_HEADER)
    for report in reports:
        headers.add(LOAD_HEADER, report.encode())


def extract_load_reports(headers: Headers) -> List[LoadReport]:
    """Parse every piggybacked load report out of *headers*.

    Malformed reports raise :class:`repro.errors.HTTPError`; an absent
    header yields an empty list (plain clients piggyback nothing).
    """
    return [LoadReport.decode(raw) for raw in headers.get_all(LOAD_HEADER)]


def extract_sender(headers: Headers) -> str:
    """Return the ``X-DCWS-Sender`` value, or ``""`` when not a DCWS peer."""
    return headers.get(SENDER_HEADER, "") or ""
