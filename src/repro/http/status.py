"""HTTP status codes used by the DCWS prototype.

The paper's protocol surface is small: ``200 OK`` for served documents,
``301 Moved Permanently`` for requests reaching a home server after
migration (section 4.4), ``503 Service Unavailable`` for graceful request
dropping when the socket queue overflows (section 5.2), plus the usual
``404`` and ``400`` for robustness.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict


class StatusCode(IntEnum):
    """The status codes the DCWS servers and clients understand."""

    OK = 200
    PARTIAL_CONTENT = 206
    MOVED_PERMANENTLY = 301
    FOUND = 302
    NOT_MODIFIED = 304
    BAD_REQUEST = 400
    FORBIDDEN = 403
    NOT_FOUND = 404
    REQUEST_TIMEOUT = 408
    RANGE_NOT_SATISFIABLE = 416
    INTERNAL_SERVER_ERROR = 500
    NOT_IMPLEMENTED = 501
    BAD_GATEWAY = 502
    SERVICE_UNAVAILABLE = 503


STATUS_REASONS: Dict[int, str] = {
    StatusCode.OK: "OK",
    StatusCode.PARTIAL_CONTENT: "Partial Content",
    StatusCode.MOVED_PERMANENTLY: "Moved Permanently",
    StatusCode.FOUND: "Found",
    StatusCode.NOT_MODIFIED: "Not Modified",
    StatusCode.BAD_REQUEST: "Bad Request",
    StatusCode.FORBIDDEN: "Forbidden",
    StatusCode.NOT_FOUND: "Not Found",
    StatusCode.REQUEST_TIMEOUT: "Request Timeout",
    StatusCode.RANGE_NOT_SATISFIABLE: "Range Not Satisfiable",
    StatusCode.INTERNAL_SERVER_ERROR: "Internal Server Error",
    StatusCode.NOT_IMPLEMENTED: "Not Implemented",
    StatusCode.BAD_GATEWAY: "Bad Gateway",
    StatusCode.SERVICE_UNAVAILABLE: "Service Unavailable",
}


def reason_phrase(code: int) -> str:
    """Return the canonical reason phrase, or ``"Unknown"``."""
    return STATUS_REASONS.get(code, "Unknown")


def is_success(code: int) -> bool:
    """True for 2xx codes."""
    return 200 <= code < 300


def is_redirect(code: int) -> bool:
    """True for 3xx codes."""
    return 300 <= code < 400


def is_client_error(code: int) -> bool:
    """True for 4xx codes."""
    return 400 <= code < 500


def is_server_error(code: int) -> bool:
    """True for 5xx codes."""
    return 500 <= code < 600
