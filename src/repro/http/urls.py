"""URL parsing, joining, and path utilities.

Implemented from scratch (no :mod:`urllib`) because the DCWS naming
convention (paper section 3.4) needs precise control over every path
component: a migrated document's URL embeds its home server's host and port
as ordinary path segments under ``/~migrate/``.

Only ``http`` URLs are modelled; that is all the 1998 prototype speaks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.errors import URLError

DEFAULT_HTTP_PORT = 80


@dataclass(frozen=True)
class URL:
    """A parsed ``http://host:port/path?query`` URL.

    ``path`` always begins with ``/``.  ``query`` is ``None`` when absent
    (distinct from an empty query string, mirroring the wire form).
    """

    host: str
    port: int = DEFAULT_HTTP_PORT
    path: str = "/"
    query: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.host:
            raise URLError("URL host must be non-empty")
        # Hostnames are case-insensitive (RFC 3986 section 3.2.2); fold at
        # construction time so same_server and dict keys never misroute on
        # mixed-case configs (HOST.example:80 == host.example:80).
        if not self.host.islower():
            object.__setattr__(self, "host", self.host.lower())
        if not (0 < self.port < 65536):
            raise URLError(f"URL port out of range: {self.port}")
        if not self.path.startswith("/"):
            raise URLError(f"URL path must start with '/': {self.path!r}")

    @property
    def authority(self) -> str:
        """``host`` or ``host:port``, omitting the default port."""
        if self.port == DEFAULT_HTTP_PORT:
            return self.host
        return f"{self.host}:{self.port}"

    @property
    def request_target(self) -> str:
        """The path-plus-query form used on the request line."""
        if self.query is None:
            return self.path
        return f"{self.path}?{self.query}"

    def with_path(self, path: str) -> "URL":
        return replace(self, path=path, query=None)

    def same_server(self, other: "URL") -> bool:
        """True when both URLs point at the same host:port."""
        return self.host == other.host and self.port == other.port

    def __str__(self) -> str:
        return f"http://{self.authority}{self.request_target}"


def parse_url(text: str) -> URL:
    """Parse an absolute ``http://`` URL.

    >>> parse_url("http://www.cs.arizona.edu:8080/dcws/index.html")
    URL(host='www.cs.arizona.edu', port=8080, path='/dcws/index.html', query=None)
    """
    scheme = "http://"
    if not text.startswith(scheme):
        raise URLError(f"not an absolute http URL: {text!r}")
    rest = text[len(scheme):]
    if not rest:
        raise URLError(f"URL has no authority: {text!r}")
    slash = rest.find("/")
    if slash < 0:
        authority, path_query = rest, "/"
    else:
        authority, path_query = rest[:slash], rest[slash:]
    host, port = _parse_authority(authority, text)
    path, query = _split_query(path_query)
    return URL(host=host, port=port, path=path, query=query)


def _parse_authority(authority: str, original: str) -> Tuple[str, int]:
    host, sep, port_text = authority.partition(":")
    if not host:
        raise URLError(f"URL has empty host: {original!r}")
    if not sep:
        return host, DEFAULT_HTTP_PORT
    try:
        port = int(port_text)
    except ValueError as exc:
        raise URLError(f"URL has non-numeric port: {original!r}") from exc
    return host, port


def _split_query(path_query: str) -> Tuple[str, Optional[str]]:
    path, sep, query = path_query.partition("?")
    return path, (query if sep else None)


def split_path(path: str) -> List[str]:
    """Split an absolute path into its non-empty segments.

    >>> split_path("/a/b//c/")
    ['a', 'b', 'c']
    """
    if not path.startswith("/"):
        raise URLError(f"split_path requires an absolute path: {path!r}")
    return [segment for segment in path.split("/") if segment]


def normalize_path(path: str) -> str:
    """Resolve ``.`` and ``..`` segments; keep a trailing slash if present.

    ``..`` never escapes the root (matching browser behaviour).
    """
    if not path.startswith("/"):
        raise URLError(f"normalize_path requires an absolute path: {path!r}")
    stack: List[str] = []
    for segment in path.split("/"):
        if segment in ("", "."):
            continue
        if segment == "..":
            if stack:
                stack.pop()
            continue
        stack.append(segment)
    normalized = "/" + "/".join(stack)
    if path.endswith("/") and normalized != "/":
        normalized += "/"
    return normalized


def join_url(base: URL, reference: str) -> URL:
    """Resolve *reference* (absolute URL, absolute path, or relative path)
    against *base*, the way a browser resolves a hyperlink.

    >>> str(join_url(parse_url("http://a/dir/page.html"), "img/x.gif"))
    'http://a/dir/img/x.gif'
    >>> str(join_url(parse_url("http://a/dir/page.html"), "/top.html"))
    'http://a/top.html'
    """
    if reference.startswith("http://"):
        return parse_url(reference)
    if reference.startswith("//"):
        host, port = _parse_authority(reference[2:].split("/", 1)[0], reference)
        path_start = reference.find("/", 2)
        path_query = reference[path_start:] if path_start >= 0 else "/"
        path, query = _split_query(path_query)
        return URL(host=host, port=port, path=path, query=query)
    if reference.startswith("/"):
        path, query = _split_query(reference)
        return URL(base.host, base.port, normalize_path(path), query)
    # Relative reference: resolve against the base path's directory.
    ref_path, query = _split_query(reference)
    if ref_path == "" and query is not None:
        # Query-only reference ("?page=2"): same document, new query string
        # (RFC 3986 section 5.3).
        return URL(base.host, base.port, base.path, query)
    if ref_path.startswith("#") or ref_path == "":
        # Fragment-only (or empty) references point back at the base document.
        return URL(base.host, base.port, base.path, base.query)
    directory = base.path.rsplit("/", 1)[0]
    combined = normalize_path(f"{directory}/{ref_path}")
    return URL(base.host, base.port, combined, query)


def strip_fragment(reference: str) -> str:
    """Drop a ``#fragment`` suffix from a raw hyperlink reference."""
    return reference.split("#", 1)[0]
