"""Minimal HTTP cookie support (Netscape-era semantics).

Only what the entry-gate mechanism (paper section 3.1) needs: parse a
``Cookie`` request header into name/value pairs, and build/parse
``Set-Cookie`` response headers.  Attributes other than ``Path`` are
ignored on parse — 1998 clients did little more.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


def parse_cookie_header(value: str) -> Dict[str, str]:
    """``"a=1; b=2"`` -> ``{"a": "1", "b": "2"}`` (malformed pairs skipped).

    >>> parse_cookie_header("dcws_session=abc; theme=dark")
    {'dcws_session': 'abc', 'theme': 'dark'}
    """
    cookies: Dict[str, str] = {}
    for part in value.split(";"):
        name, sep, item_value = part.strip().partition("=")
        if sep and name:
            cookies[name.strip()] = item_value.strip()
    return cookies


def build_cookie_header(cookies: Dict[str, str]) -> str:
    """Inverse of :func:`parse_cookie_header`; deterministic ordering."""
    return "; ".join(f"{name}={value}"
                     for name, value in sorted(cookies.items()))


def build_set_cookie(name: str, value: str, *, path: str = "/",
                     max_age: Optional[int] = None) -> str:
    """A ``Set-Cookie`` header value."""
    parts = [f"{name}={value}", f"Path={path}"]
    if max_age is not None:
        parts.append(f"Max-Age={max_age}")
    return "; ".join(parts)


def parse_set_cookie(value: str) -> Optional[Tuple[str, str]]:
    """Extract ``(name, value)`` from a ``Set-Cookie`` header, or None."""
    first = value.split(";", 1)[0]
    name, sep, item_value = first.partition("=")
    if not sep or not name.strip():
        return None
    return name.strip(), item_value.strip()
