"""HTTP substrate for the DCWS reproduction.

A small, dependency-free HTTP/1.0-1.1 message layer: case-insensitive
headers, status codes, URL parsing/joining, request/response objects with
wire (de)serialization, and the ``X-DCWS-*`` extension-header codec used to
piggyback global load information on ordinary transfers (paper section 3.3).
"""

from repro.http.headers import Headers
from repro.http.messages import (
    Request,
    Response,
    parse_request,
    parse_response,
    request_wants_keep_alive,
    response_allows_keep_alive,
)
from repro.http.piggyback import LoadReport, attach_load_reports, extract_load_reports
from repro.http.status import (
    STATUS_REASONS,
    StatusCode,
    is_client_error,
    is_redirect,
    is_server_error,
    is_success,
    reason_phrase,
)
from repro.http.urls import URL, join_url, parse_url, split_path

__all__ = [
    "Headers",
    "LoadReport",
    "Request",
    "Response",
    "STATUS_REASONS",
    "StatusCode",
    "URL",
    "attach_load_reports",
    "extract_load_reports",
    "is_client_error",
    "is_redirect",
    "is_server_error",
    "is_success",
    "join_url",
    "parse_request",
    "parse_response",
    "parse_url",
    "reason_phrase",
    "request_wants_keep_alive",
    "response_allows_keep_alive",
    "split_path",
]
