"""Sans-I/O incremental HTTP request parsing: the shared protocol core.

Both real front ends — the thread-per-connection server
(:mod:`repro.server.threaded`) and the event-loop server
(:mod:`repro.server.aio`) — speak the same wire protocol: requests with a
CRLF-terminated head, bodies framed by ``Content-Length``, pipelining,
and hard size limits.  :class:`RequestParser` implements that protocol
once, over plain byte buffers, with no sockets, threads or clocks, so the
blocking reader and the nonblocking connection state machine are shims
over one tested implementation.

Usage pattern (the "feed bytes, ask for requests" loop)::

    parser = RequestParser()
    parser.feed(chunk)            # from recv(); raises HTTPError on abuse
    request = parser.next_request()
    if request is None:           # incomplete: need more bytes (or clean EOF)
        ...
    parser.feed_eof()             # the peer half-closed

``next_request`` returns each complete pipelined request in order,
``None`` while more bytes are needed — and, after :meth:`feed_eof`,
``None`` exactly when the stream ended *between* requests.  An EOF in the
middle of a request head or body raises :class:`HTTPError`: a truncated
request is never silently accepted.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import (
    HTTPError,
    InvalidContentLength,
    RecoverableProtocolError,
)
from repro.http.messages import Request, parse_request, validated_content_length

#: Default bound on one buffered request (head + body), matching the
#: limit both front ends enforced historically.
DEFAULT_MAX_REQUEST = 1024 * 1024

_HEAD_TERMINATOR = b"\r\n\r\n"


class RequestParser:
    """Incremental parser for a stream of pipelined HTTP requests.

    State per connection: the unconsumed byte buffer, a cached position
    of the current head terminator (so dribbled one-byte feeds do not
    rescan the whole buffer), and the EOF flag.
    """

    __slots__ = ("max_request", "_buffer", "_eof", "_head_end", "_scanned")

    def __init__(self, max_request: int = DEFAULT_MAX_REQUEST) -> None:
        self.max_request = max_request
        self._buffer = bytearray()
        self._eof = False
        self._head_end = -1   # cached find() result for the current head
        self._scanned = 0     # bytes already scanned without finding it

    @property
    def buffered(self) -> bool:
        """Unconsumed bytes are waiting (a partial or pipelined request)."""
        return bool(self._buffer)

    @property
    def eof(self) -> bool:
        """The peer has finished sending (:meth:`feed_eof` was called)."""
        return self._eof

    def feed(self, data: bytes) -> None:
        """Add received bytes.  Raises :class:`HTTPError` when the
        buffered request exceeds the size limit."""
        if not data:
            return
        if self._eof:
            raise HTTPError("bytes fed after EOF")
        self._buffer.extend(data)
        if len(self._buffer) > self.max_request:
            raise HTTPError("request exceeds size limit")

    def feed_eof(self) -> None:
        """The peer closed its sending side; no more bytes will arrive."""
        self._eof = True

    def next_request(self) -> Optional[Request]:
        """Return the next complete request, or ``None``.

        ``None`` means "need more bytes" — or, once :meth:`feed_eof` was
        called, "the stream ended cleanly at a request boundary".  EOF
        with a partial request buffered raises :class:`HTTPError`, as
        does a malformed head or an over-limit body.

        Content-Length is validated strictly before it frames anything.
        A value that is not a plain non-negative integer raises
        :class:`~repro.errors.RecoverableProtocolError` *after consuming
        exactly the offending head* — such a value frames no body, so the
        connection stays correctly delimited and the next pipelined
        request still parses.  (Trusting the raw value was the original
        desync bug: a negative length shrank the buffer delete below the
        head and left residual head bytes framing every later request.)
        Multiple *differing* Content-Length fields are ambiguous framing —
        the request-smuggling vector — and raise plain
        :class:`HTTPError`: the connection must close.
        """
        head_end = self._find_head_end()
        if head_end < 0:
            if self._eof and self._buffer:
                raise HTTPError("connection closed before request completed")
            return None
        try:
            request = parse_request(bytes(self._buffer[:head_end + 4]))
        except InvalidContentLength as exc:
            self._consume(head_end + 4)
            raise RecoverableProtocolError(str(exc)) from exc
        expected = validated_content_length(request.headers)
        needed = head_end + 4 + expected
        if needed > self.max_request:
            raise HTTPError("request exceeds size limit")
        if len(self._buffer) < needed:
            if self._eof:
                raise HTTPError("connection closed before request body "
                                "completed")
            return None
        request.body = bytes(self._buffer[head_end + 4:needed])
        self._consume(needed)
        return request

    def _consume(self, count: int) -> None:
        """Drop *count* leading buffer bytes and reset the head-scan cache."""
        del self._buffer[:count]
        self._head_end = -1
        self._scanned = 0

    def _find_head_end(self) -> int:
        """Position of the current request's head terminator, cached.

        The scan resumes where the last failed one stopped (minus the
        terminator length, in case it straddles two feeds), so a slowly
        dribbled head costs linear, not quadratic, work.
        """
        if self._head_end < 0:
            start = max(0, self._scanned - (len(_HEAD_TERMINATOR) - 1))
            self._head_end = self._buffer.find(_HEAD_TERMINATOR, start)
            if self._head_end < 0:
                self._scanned = len(self._buffer)
        return self._head_end
