"""Serve-path content negotiation: validators, gzip variants, byte ranges.

The versioned serve path makes real HTTP validators nearly free: every
(name, version) pair identifies one immutable rendering, so an ``ETag``
derived from it — and a ``Last-Modified`` date derived from the version
counter — lets clients revalidate with ``If-None-Match`` /
``If-Modified-Since`` and be answered 304 without a single document-store
read.  This module holds the pure functions behind that scheme, plus gzip
negotiation (``Accept-Encoding`` / ``Vary``) and single-range ``Range``
parsing, shared by the engine and the real client.

Validator derivation is deterministic: ``Last-Modified`` maps version *n*
to ``DCWS_EPOCH + n`` seconds, so dates are monotonic in versions, stable
across restarts, and need no wall clock (the engine's time is an explicit
``now`` argument; a wall-clock header would leak real time into otherwise
deterministic tests and simulations).
"""

from __future__ import annotations

import gzip as _gzip
import hashlib
import zlib
from email.utils import formatdate, parsedate_to_datetime
from typing import Optional, Tuple

from repro.http.headers import Headers

#: Header carrying the strong content digest of the *identity* body on
#: every inter-server and client-facing 200 response.  Receivers verify
#: the decoded (identity) bytes against it; partial (206) responses never
#: carry it because the digest covers the whole entity.
DIGEST_HEADER = "X-DCWS-Digest"

#: Header a co-op attaches when notifying the home that its hosted copy
#: was quarantined (scrub or serve-path mismatch) — the home drops the
#: holder and re-replicates from a verified copy.
QUARANTINE_HEADER = "X-DCWS-Quarantined"

#: 1999-01-01T00:00:00Z — the paper's era, and version 0's Last-Modified.
DCWS_EPOCH = 915148800

#: Entities smaller than this are never worth a gzip member's overhead.
DEFAULT_GZIP_MIN_BYTES = 256

#: Content types worth compressing (HTML-heavy datasets dominate; images
#: and other already-compressed media are left alone).
_COMPRESSIBLE_PREFIXES = ("text/",)
_COMPRESSIBLE_TYPES = frozenset({
    "application/json",
    "application/javascript",
    "application/xml",
    "application/xhtml+xml",
    "image/svg+xml",
})

#: Sentinel returned by :func:`parse_range` when the range is syntactically
#: valid but lies wholly outside the entity (RFC 7233: answer 416).
RANGE_UNSATISFIABLE = object()


# ----------------------------------------------------------------------
# Content digests (end-to-end integrity)
# ----------------------------------------------------------------------

def body_digest(data: bytes) -> str:
    """The strong content digest of an identity body.

    ``sha256:<hex>`` — self-describing so the algorithm can rotate without
    ambiguity in journals and snapshots.  The digest always covers the
    *identity* (uncompressed) bytes; gzip variants and range slices are
    derived renderings of the same entity and share its digest.
    """
    return "sha256:" + hashlib.sha256(data).hexdigest()


def digest_matches(data: bytes, digest: str) -> bool:
    """Do *data*'s bytes hash to *digest*?  Unknown digest schemes (a
    future algorithm rotation talking to an old node) verify as True —
    integrity checking must fail open across versions, not reject every
    body."""
    if not digest:
        return True
    scheme, _, expected = digest.partition(":")
    if scheme != "sha256" or not expected:
        return True
    return hashlib.sha256(data).hexdigest() == expected


# ----------------------------------------------------------------------
# Validators: ETag and Last-Modified from (name, version)
# ----------------------------------------------------------------------

def version_timestamp(version: object) -> int:
    """Map a version counter to a deterministic Unix timestamp."""
    text = str(version)
    if text.isdigit():
        return DCWS_EPOCH + int(text)
    # Foreign version strings (a co-op echoing a home's opaque version)
    # still get a stable, collision-resistant date.
    return DCWS_EPOCH + zlib.crc32(text.encode("utf-8")) % 1_000_000

def http_date(timestamp: float) -> str:
    """Render *timestamp* as an IMF-fixdate (``Sun, 06 Nov 1994 ...``)."""
    return formatdate(timestamp, usegmt=True)


def parse_http_date(text: str) -> Optional[float]:
    """Parse an HTTP date to a Unix timestamp; ``None`` when malformed."""
    if not text:
        return None
    try:
        parsed = parsedate_to_datetime(text)
    except (TypeError, ValueError, IndexError):
        return None
    if parsed is None:
        return None
    try:
        return parsed.timestamp()
    except (OverflowError, OSError, ValueError):
        return None


def last_modified_for(version: object) -> str:
    """The ``Last-Modified`` value of a document at *version*."""
    return http_date(version_timestamp(version))


def etag_for(name: str, version: object) -> str:
    """A strong ``ETag`` for one rendering of *name* at *version*."""
    return '"{:08x}-{}"'.format(zlib.crc32(name.encode("utf-8")), version)


def etag_matches(header_value: str, etag: str) -> bool:
    """Does an ``If-None-Match`` value match *etag*?

    Handles the ``*`` wildcard and comma-separated candidate lists; the
    weak-comparison rule applies (``W/`` prefixes are ignored), which is
    correct for cache revalidation per RFC 7232 section 3.2.
    """
    for candidate in header_value.split(","):
        candidate = candidate.strip()
        if candidate == "*":
            return True
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


def not_modified(headers: Headers, etag: str, last_modified: str) -> bool:
    """Do the request's conditional headers validate this rendering?

    ``If-None-Match`` takes precedence over ``If-Modified-Since`` when
    both are present (RFC 7232 section 6).
    """
    if_none_match = headers.get("If-None-Match")
    if if_none_match is not None:
        return bool(etag) and etag_matches(if_none_match, etag)
    if_modified_since = headers.get("If-Modified-Since")
    if if_modified_since and last_modified:
        entity_time = parse_http_date(last_modified)
        request_time = parse_http_date(if_modified_since)
        if entity_time is not None and request_time is not None:
            return entity_time <= request_time
    return False


# ----------------------------------------------------------------------
# gzip negotiation
# ----------------------------------------------------------------------

def compressible(content_type: str) -> bool:
    """Is an entity of *content_type* worth compressing?"""
    base = content_type.split(";", 1)[0].strip().lower()
    return base.startswith(_COMPRESSIBLE_PREFIXES) \
        or base in _COMPRESSIBLE_TYPES


def gzip_bytes(data: bytes) -> bytes:
    """Compress *data* deterministically (fixed mtime, so the same entity
    always yields the same wire bytes — cache- and test-friendly)."""
    return _gzip.compress(data, compresslevel=6, mtime=0)


def gunzip_bytes(data: bytes) -> bytes:
    """Decompress one gzip member (raises ``OSError`` subclasses on
    corruption, which callers treat as a framing error)."""
    return _gzip.decompress(data)


def maybe_gzip(data: bytes, content_type: str,
               min_bytes: int = DEFAULT_GZIP_MIN_BYTES) -> Optional[bytes]:
    """The compressed variant to store alongside an identity body.

    ``None`` when compression is not worthwhile: wrong content type, body
    below the size floor, or gzip failing to actually shrink it.
    """
    if len(data) < min_bytes or not compressible(content_type):
        return None
    compressed = gzip_bytes(data)
    return compressed if len(compressed) < len(data) else None


def accepts_gzip(headers: Headers) -> bool:
    """Does ``Accept-Encoding`` admit a gzip response (q > 0)?"""
    value = headers.get("Accept-Encoding")
    if not value:
        return False
    for part in value.split(","):
        token, __, params = part.partition(";")
        if token.strip().lower() not in ("gzip", "x-gzip"):
            continue
        quality = 1.0
        params = params.strip().lower()
        if params.startswith("q="):
            try:
                quality = float(params[2:])
            except ValueError:
                quality = 0.0
        return quality > 0.0
    return False


# ----------------------------------------------------------------------
# Byte ranges (single range only — the large-object resume case)
# ----------------------------------------------------------------------

def parse_range(value: str, size: int):
    """Interpret a ``Range`` header against an entity of *size* bytes.

    Returns an inclusive ``(start, end)`` pair to serve with 206;
    ``None`` when the header should be ignored and the full entity served
    with 200 (malformed specs, non-byte units, multi-range requests); or
    :data:`RANGE_UNSATISFIABLE` when the spec is valid but selects nothing
    (answer 416 with ``Content-Range: bytes */size``).
    """
    if not value.startswith("bytes="):
        return None
    spec = value[len("bytes="):].strip()
    if not spec or "," in spec:
        # Multi-range replies need multipart framing; the prototype keeps
        # to the single-range resume case and serves the rest as 200.
        return None
    first, sep, last = spec.partition("-")
    if not sep:
        return None
    first, last = first.strip(), last.strip()
    if not first:
        # Suffix form: the final N bytes of the entity.
        if not last.isdigit():
            return None
        suffix = int(last)
        if suffix == 0 or size == 0:
            return RANGE_UNSATISFIABLE
        return (max(0, size - suffix), size - 1)
    if not first.isdigit():
        return None
    start = int(first)
    if start >= size:
        return RANGE_UNSATISFIABLE
    if not last:
        return (start, size - 1)
    if not last.isdigit():
        return None
    end = int(last)
    if end < start:
        return None
    return (start, min(end, size - 1))


def content_range(span: Tuple[int, int], size: int) -> str:
    """The ``Content-Range`` value for a satisfied single range."""
    return f"bytes {span[0]}-{span[1]}/{size}"
