"""Case-insensitive, multi-valued HTTP header collection.

HTTP header field names are case-insensitive (RFC 2616 section 4.2) and a
field may appear multiple times.  :class:`Headers` preserves the original
casing and insertion order for serialization while indexing lookups by the
lower-cased name.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import HTTPError

# Characters permitted in an HTTP token (RFC 2616 section 2.2): any CHAR
# except control characters and separators.
_SEPARATORS = set('()<>@,;:\\"/[]?={} \t')


# Header names repeat constantly (Content-Type, Content-Length, X-DCWS-*),
# so validation results are memoized; the cache is bounded to keep a
# hostile stream of unique names from growing it without limit.
_TOKEN_CACHE: dict = {}
_TOKEN_CACHE_LIMIT = 4096


def _is_token(name: str) -> bool:
    cached = _TOKEN_CACHE.get(name)
    if cached is not None:
        return cached
    valid = bool(name)
    for ch in name:
        if ord(ch) < 32 or ord(ch) > 126 or ch in _SEPARATORS:
            valid = False
            break
    if len(_TOKEN_CACHE) < _TOKEN_CACHE_LIMIT:
        _TOKEN_CACHE[name] = valid
    return valid


class Headers:
    """An ordered, case-insensitive multimap of HTTP header fields.

    >>> h = Headers()
    >>> h.add("Content-Type", "text/html")
    >>> h.get("content-type")
    'text/html'
    """

    __slots__ = ("_items",)

    def __init__(self, items: Optional[Iterable[Tuple[str, str]]] = None) -> None:
        self._items: List[Tuple[str, str]] = []
        if items is not None:
            for name, value in items:
                self.add(name, value)

    def add(self, name: str, value: str) -> None:
        """Append a header field, keeping any existing fields of that name."""
        if not _is_token(name):
            raise HTTPError(f"invalid header field name: {name!r}")
        value = str(value).strip()
        if "\r" in value or "\n" in value:
            raise HTTPError(f"header value contains line break: {value!r}")
        self._items.append((name, value))

    def set(self, name: str, value: str) -> None:
        """Replace every field named *name* with a single field."""
        self.remove(name)
        self.add(name, value)

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Return the first value for *name*, or *default* if absent."""
        key = name.lower()
        for item_name, item_value in self._items:
            if item_name.lower() == key:
                return item_value
        return default

    def get_all(self, name: str) -> List[str]:
        """Return every value for *name* in insertion order."""
        key = name.lower()
        return [v for n, v in self._items if n.lower() == key]

    def get_int(self, name: str, default: Optional[int] = None) -> Optional[int]:
        """Return the first value for *name* parsed as an integer.

        The parse is strict (RFC 7230 framing rules): plain ASCII digits
        only.  ``int()`` would accept ``"+5"``, ``" 5 "`` and ``"1_0"`` —
        nonconforming values other servers reject, and exactly the kind
        of divergence request smuggling exploits.
        """
        raw = self.get(name)
        if raw is None:
            return default
        if not (raw.isascii() and raw.isdigit()):
            raise HTTPError(f"header {name} is not an integer: {raw!r}")
        return int(raw)

    def has_token(self, name: str, token: str) -> bool:
        """True when any field named *name* lists *token* in its
        comma-separated value (case-insensitive), e.g.
        ``Connection: keep-alive, upgrade``."""
        wanted = token.lower()
        for value in self.get_all(name):
            for part in value.split(","):
                if part.strip().lower() == wanted:
                    return True
        return False

    def remove(self, name: str) -> int:
        """Delete every field named *name*; return how many were removed."""
        key = name.lower()
        before = len(self._items)
        self._items = [(n, v) for n, v in self._items if n.lower() != key]
        return before - len(self._items)

    def items(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items)

    def copy(self) -> "Headers":
        return Headers(self._items)

    def serialize(self) -> str:
        """Render the fields as CRLF-terminated lines (no trailing blank)."""
        return "".join(f"{name}: {value}\r\n" for name, value in self._items)

    @classmethod
    def parse_lines(cls, lines: Iterable[str]) -> "Headers":
        """Build a collection from ``Name: value`` lines.

        Continuation lines (obsolete line folding, leading whitespace) are
        appended to the previous field's value.
        """
        headers = cls()
        for line in lines:
            line = line.rstrip("\r\n")
            if not line:
                continue
            if line[0] in " \t":
                if not headers._items:
                    raise HTTPError("continuation line before any header field")
                name, value = headers._items[-1]
                headers._items[-1] = (name, value + " " + line.strip())
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise HTTPError(f"malformed header line: {line!r}")
            if name != name.rstrip(" \t"):
                # RFC 7230 section 3.2.4: whitespace between the field
                # name and the colon is a smuggling-adjacent ambiguity —
                # reject rather than repair.
                raise HTTPError(
                    f"whitespace before colon in header name: {line!r}")
            headers.add(name, value)
        return headers

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.get(name) is not None

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        mine = [(n.lower(), v) for n, v in self._items]
        theirs = [(n.lower(), v) for n, v in other._items]
        return mine == theirs

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"
