"""HTTP request and response messages with wire (de)serialization.

These objects are shared verbatim between the real socket server
(:mod:`repro.server.threaded`) and the discrete-event simulator
(:mod:`repro.sim`): the simulator constructs the same :class:`Request` and
:class:`Response` values it would have read off a socket, so the DCWS engine
cannot tell which transport it is running on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import HTTPError, InvalidContentLength
from repro.http.headers import Headers
from repro.http.status import StatusCode, reason_phrase

SUPPORTED_METHODS = ("GET", "HEAD", "POST")
SUPPORTED_VERSIONS = ("HTTP/1.0", "HTTP/1.1")


@dataclass
class Request:
    """An HTTP request as the DCWS front-end sees it.

    ``target`` is the origin-form request target (``/path?query``).
    ``body`` is kept as bytes; the prototype only ever uses empty bodies.
    """

    method: str
    target: str
    headers: Headers = field(default_factory=Headers)
    version: str = "HTTP/1.0"
    body: bytes = b""

    def __post_init__(self) -> None:
        if self.method not in SUPPORTED_METHODS:
            raise HTTPError(f"unsupported method: {self.method!r}")
        if self.version not in SUPPORTED_VERSIONS:
            raise HTTPError(f"unsupported HTTP version: {self.version!r}")
        if not self.target.startswith("/"):
            raise HTTPError(f"request target must be origin-form: {self.target!r}")

    @property
    def path(self) -> str:
        """The target without its query string."""
        return self.target.split("?", 1)[0]

    def serialize(self) -> bytes:
        """Render the request in wire form."""
        headers = self.headers.copy()
        if self.body and "content-length" not in headers:
            headers.set("Content-Length", str(len(self.body)))
        head = f"{self.method} {self.target} {self.version}\r\n{headers.serialize()}\r\n"
        return head.encode("latin-1") + self.body


@dataclass(frozen=True)
class FileBody:
    """A response body that still lives on disk.

    Attached by the engine when a front end opted into ``os.sendfile``
    delivery of large disk-backed documents: ``path`` is the on-disk
    file and ``size`` the byte count the response's Content-Length was
    computed from.  Front ends without sendfile support (and
    :meth:`Response.serialize`) simply read the file.
    """

    path: str
    size: int


@dataclass
class Response:
    """An HTTP response.

    ``body`` carries the document bytes in real-transport mode.  In
    simulation mode the body may be empty while ``headers`` still carry the
    byte count the transport should account for (see
    :class:`repro.sim.simserver.SimServer`).  ``body_file`` (exclusive
    with a non-empty ``body``) defers large disk-backed bodies to the
    transport — ``socket.sendfile`` on the threaded front end.
    """

    status: int
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = "HTTP/1.0"
    body_file: Optional[FileBody] = None

    @property
    def reason(self) -> str:
        return reason_phrase(self.status)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def body_length(self) -> int:
        """Byte count of the entity this response will put on the wire."""
        if self.body_file is not None and not self.body:
            return self.body_file.size
        return len(self.body)

    def serialize_head(self) -> bytes:
        """Render status line + headers + blank line, without the body.

        Byte-identical prefix of :meth:`serialize`: front ends writev
        ``[serialize_head(), body]`` so the (possibly large, shared,
        cached) body is never concatenated per request.
        """
        headers = self.headers.copy()
        if "content-length" not in headers:
            headers.set("Content-Length", str(self.body_length()))
        head = f"{self.version} {self.status} {self.reason}\r\n{headers.serialize()}\r\n"
        return head.encode("latin-1")

    def serialize(self) -> bytes:
        """Render the response in wire form (always with Content-Length)."""
        body = self.body
        if self.body_file is not None and not body:
            with open(self.body_file.path, "rb") as handle:
                body = handle.read()
        return self.serialize_head() + body


def wants_keep_alive(version: str, headers: Headers) -> bool:
    """Persistent-connection semantics for one message.

    HTTP/1.1 defaults to persistent unless ``Connection: close``;
    HTTP/1.0 defaults to one-shot unless ``Connection: keep-alive``
    (the de-facto extension the 1998 prototype's era browsers spoke).
    """
    if headers.has_token("Connection", "close"):
        return False
    if headers.has_token("Connection", "keep-alive"):
        return True
    return version == "HTTP/1.1"


def request_wants_keep_alive(request: Request) -> bool:
    """Does *request* ask for the connection to stay open afterwards?"""
    return wants_keep_alive(request.version, request.headers)


def response_allows_keep_alive(response: Response) -> bool:
    """Does *response* permit reusing the connection afterwards?"""
    return wants_keep_alive(response.version, response.headers)


def _split_head(data: bytes) -> Tuple[str, bytes]:
    separator = data.find(b"\r\n\r\n")
    if separator < 0:
        raise HTTPError("message head not terminated by blank line")
    head = data[:separator].decode("latin-1")
    body = data[separator + 4:]
    return head, body


def validated_content_length(headers: Headers) -> int:
    """The request's body length per RFC 7230 section 3.3.2, strictly.

    Raises :class:`~repro.errors.HTTPError` for multiple *differing*
    ``Content-Length`` fields (the classic smuggling vector — ``get``
    would silently return the first); repeated identical values collapse
    to one.  Raises :class:`~repro.errors.InvalidContentLength` for any
    value that is not a plain ASCII-digit integer (negative, signed,
    padded, or underscored values frame no body at all).
    """
    values = headers.get_all("content-length")
    if not values:
        return 0
    if len(set(values)) > 1:
        raise HTTPError(f"conflicting Content-Length fields: {values!r}")
    raw = values[0]
    if not (raw.isascii() and raw.isdigit()):
        raise InvalidContentLength(f"invalid Content-Length: {raw!r}")
    return int(raw)


def parse_request(data: bytes) -> Request:
    """Parse a serialized request (head and body must be complete)."""
    head, body = _split_head(data)
    lines = head.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HTTPError(f"malformed request line: {lines[0]!r}")
    method, target, version = parts
    headers = Headers.parse_lines(lines[1:])
    length = validated_content_length(headers)
    return Request(method=method, target=target, headers=headers,
                   version=version, body=body[:length])


def parse_response(data: bytes) -> Response:
    """Parse a serialized response (head and body must be complete)."""
    head, body = _split_head(data)
    lines = head.split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2:
        raise HTTPError(f"malformed status line: {lines[0]!r}")
    version, status_text = parts[0], parts[1]
    try:
        status = int(status_text)
    except ValueError as exc:
        raise HTTPError(f"non-numeric status code: {status_text!r}") from exc
    headers = Headers.parse_lines(lines[1:])
    length = headers.get_int("content-length")
    if length is not None:
        body = body[:length]
    return Response(status=status, headers=headers, body=body, version=version)


def redirect_response(location: str, version: str = "HTTP/1.0",
                      status: int = StatusCode.MOVED_PERMANENTLY) -> Response:
    """Build the redirect a home server sends for a migrated document
    (paper section 4.4).  301 by default; a co-op degrading a failed
    pull sends 302 (the move back to home is not permanent)."""
    headers = Headers()
    headers.set("Location", location)
    body = (f"<html><head><title>{int(status)} Moved</title></head>"
            f"<body>Moved to <a href=\"{location}\">{location}</a></body></html>"
            ).encode("latin-1")
    headers.set("Content-Type", "text/html")
    return Response(status=status, headers=headers,
                    body=body, version=version)


def error_response(status: int, detail: str = "", version: str = "HTTP/1.0") -> Response:
    """Build a minimal HTML error response (404, 503, ...)."""
    reason = reason_phrase(status)
    headers = Headers()
    headers.set("Content-Type", "text/html")
    body = (f"<html><head><title>{status} {reason}</title></head>"
            f"<body><h1>{status} {reason}</h1>{detail}</body></html>"
            ).encode("latin-1")
    return Response(status=status, headers=headers, body=body, version=version)
