"""Analysis utilities for experiment results.

Scaling-law fits, saturation-knee and crossover detection, and ASCII
charts — the numeric vocabulary the paper's evaluation uses ("close to
linear", "sub-linear", "the peak was reached at N clients"), made
executable so benches and downstream users can assert on it.
"""

from repro.analysis.scaling import (
    crossover_point,
    linear_fit,
    saturation_knee,
    scaling_efficiency,
)
from repro.analysis.textplot import text_plot
from repro.analysis.workload import WorkloadProfile, characterize

__all__ = [
    "WorkloadProfile",
    "characterize",
    "crossover_point",
    "linear_fit",
    "saturation_knee",
    "scaling_efficiency",
    "text_plot",
]
