"""Scaling-law analysis over (x, y) experiment series.

Small, dependency-free numerics: least-squares lines, scaling efficiency
(measured speed-up over ideal speed-up), the saturation knee of a
rise-then-flat curve (Figure 6's shape), and crossover points between two
competing series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple


@dataclass(frozen=True)
class LinearFit:
    """y ≈ slope·x + intercept, with the fit's r²."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares; needs at least two distinct x values."""
    if len(xs) != len(ys):
        raise ValueError("x and y lengths differ")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0.0:
        raise ValueError("all x values identical")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    syy = sum((y - mean_y) ** 2 for y in ys)
    if syy == 0.0:
        r_squared = 1.0
    else:
        residual = sum((y - (slope * x + intercept)) ** 2
                       for x, y in zip(xs, ys))
        r_squared = max(0.0, 1.0 - residual / syy)
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared)


def scaling_efficiency(servers: Sequence[int],
                       throughput: Sequence[float]) -> float:
    """Measured speed-up over ideal speed-up between the series' endpoints.

    1.0 is perfectly linear scaling; the paper's "close to linear" LOD
    runs sit near 0.9+, its hot-spot data sets well below.
    """
    if len(servers) != len(throughput) or len(servers) < 2:
        raise ValueError("need matching series of length >= 2")
    pairs = sorted(zip(servers, throughput))
    (low_n, low_t), (high_n, high_t) = pairs[0], pairs[-1]
    if low_n <= 0 or high_n <= low_n:
        raise ValueError("server counts must be positive and increasing")
    if low_t <= 0:
        return float("inf")
    ideal = high_n / low_n
    measured = high_t / low_t
    return measured / ideal


def saturation_knee(xs: Sequence[float], ys: Sequence[float], *,
                    flat_fraction: float = 0.1) -> Optional[float]:
    """The x beyond which y stops growing (Figure 6's plateau).

    Returns the first x whose y is within ``flat_fraction`` of the series
    maximum, or ``None`` when the series never flattens (still rising at
    its last point).
    """
    if len(xs) != len(ys) or not xs:
        raise ValueError("need matching non-empty series")
    peak = max(ys)
    if peak <= 0:
        return None
    threshold = peak * (1.0 - flat_fraction)
    first_at = next(x for x, y in zip(xs, ys) if y >= threshold)
    if first_at == xs[-1]:
        # Only the final point reaches the plateau band: the curve was
        # still rising when the sweep ended — no knee observed.
        return None
    return first_at


def crossover_point(xs: Sequence[float], ys_a: Sequence[float],
                    ys_b: Sequence[float]) -> Optional[float]:
    """The interpolated x where series A overtakes series B (or vice
    versa), or ``None`` when one dominates throughout."""
    if not (len(xs) == len(ys_a) == len(ys_b)) or len(xs) < 2:
        raise ValueError("need three matching series of length >= 2")
    previous = ys_a[0] - ys_b[0]
    for index in range(1, len(xs)):
        current = ys_a[index] - ys_b[index]
        if previous == 0.0:
            return xs[index - 1]
        if (previous < 0) != (current < 0) and current != previous:
            x0, x1 = xs[index - 1], xs[index]
            fraction = abs(previous) / (abs(previous) + abs(current))
            return x0 + fraction * (x1 - x0)
        previous = current
    return None


def relative_spread(values: Sequence[float]) -> float:
    """(max - min) / mean — a quick balance measure for per-server load."""
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0.0:
        return 0.0
    return (max(values) - min(values)) / mean


def pairs_sorted(xs: Sequence[float],
                 ys: Sequence[float]) -> Tuple[Tuple[float, ...],
                                               Tuple[float, ...]]:
    """Return both series sorted by x (helper for plotting/fitting)."""
    if len(xs) != len(ys):
        raise ValueError("x and y lengths differ")
    ordered = sorted(zip(xs, ys))
    return (tuple(x for x, __ in ordered), tuple(y for __, y in ordered))
