"""Workload characterization of access traces.

The paper grounds its design in web workload properties (its citation
[5], Arlitt & Williamson: small transfers dominate; popularity is highly
skewed).  This module measures those properties on any trace — synthetic
(:func:`repro.datasets.logs.generate_access_log`) or parsed from real
Common Log Format files — so users can check how close their workload is
to the regime DCWS targets:

- document popularity concentration (what share of requests the top-N%
  of documents absorb) and a Zipf-law exponent fitted on log-log
  rank/frequency;
- transfer-size distribution summary (mean/median, share of small
  transfers — the §5.3 argument for CPS as the balancing metric);
- per-client request counts (sequence-length proxy).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.scaling import linear_fit
from repro.datasets.logs import LogRecord


@dataclass(frozen=True)
class WorkloadProfile:
    """Summary statistics of one access trace."""

    requests: int
    distinct_documents: int
    distinct_clients: int
    zipf_exponent: float          # slope of log(freq) vs log(rank), negated
    zipf_r_squared: float
    top_decile_share: float       # share of requests to the top 10% of docs
    mean_bytes: float
    median_bytes: float
    small_transfer_share: float   # share of transfers under 10 KB

    def format(self) -> str:
        lines = [
            "workload profile",
            f"  requests                {self.requests}",
            f"  distinct documents      {self.distinct_documents}",
            f"  distinct clients        {self.distinct_clients}",
            f"  Zipf exponent           {self.zipf_exponent:.2f} "
            f"(r²={self.zipf_r_squared:.2f})",
            f"  top-10% document share  {self.top_decile_share:.0%}",
            f"  mean / median transfer  {self.mean_bytes:.0f} / "
            f"{self.median_bytes:.0f} bytes",
            f"  transfers under 10 KB   {self.small_transfer_share:.0%}",
        ]
        return "\n".join(lines)


def characterize(records: Sequence[LogRecord]) -> WorkloadProfile:
    """Compute a :class:`WorkloadProfile` for *records*."""
    if not records:
        raise ValueError("cannot characterize an empty trace")
    frequency: Counter = Counter(record.path for record in records)
    clients = {record.client for record in records}
    exponent, r_squared = zipf_fit(frequency)
    sizes = sorted(record.size for record in records)
    total = len(records)
    mean_bytes = sum(sizes) / total
    median_bytes = float(sizes[total // 2])
    small = sum(1 for size in sizes if size < 10_240) / total
    return WorkloadProfile(
        requests=total,
        distinct_documents=len(frequency),
        distinct_clients=len(clients),
        zipf_exponent=exponent,
        zipf_r_squared=r_squared,
        top_decile_share=popularity_concentration(frequency, 0.10),
        mean_bytes=mean_bytes,
        median_bytes=median_bytes,
        small_transfer_share=small,
    )


def zipf_fit(frequency: Dict[str, int]) -> "tuple[float, float]":
    """Fit ``log(freq) = -a·log(rank) + c``; returns ``(a, r²)``.

    ``a`` near 1 is the classic web-popularity Zipf law; 0 means uniform
    popularity (LOD's no-hot-spot regime).
    """
    counts = sorted(frequency.values(), reverse=True)
    if len(counts) < 2:
        return 0.0, 1.0
    xs = [math.log(rank) for rank in range(1, len(counts) + 1)]
    ys = [math.log(count) for count in counts]
    fit = linear_fit(xs, ys)
    return -fit.slope, fit.r_squared


def popularity_concentration(frequency: Dict[str, int],
                             fraction: float) -> float:
    """Share of all requests absorbed by the hottest *fraction* of
    documents (e.g. 0.10 for the top decile)."""
    if not frequency:
        return 0.0
    counts = sorted(frequency.values(), reverse=True)
    top_n = max(1, int(len(counts) * fraction))
    return sum(counts[:top_n]) / sum(counts)


def per_client_requests(records: Sequence[LogRecord]) -> List[int]:
    """Request counts per client, descending (sequence-length proxy)."""
    counter: Counter = Counter(record.client for record in records)
    return sorted(counter.values(), reverse=True)
