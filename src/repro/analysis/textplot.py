"""ASCII charts for terminal-friendly experiment output.

``text_plot`` renders one or more (x, y) series on a character grid —
enough to eyeball Figure 6's knee or Figure 8's exponential rise in a
test log without leaving the terminal.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

_MARKS = "*o+x#@"


def text_plot(series: Dict[str, Sequence[float]], *,
              xs: Sequence[float],
              width: int = 60, height: int = 15,
              title: str = "") -> str:
    """Render the named *series* (each aligned with *xs*) as ASCII art.

    >>> print(text_plot({"cps": [0, 5, 10]}, xs=[0, 1, 2],
    ...                 width=10, height=3))  # doctest: +SKIP
    """
    if not series or not xs:
        raise ValueError("need at least one series and one x value")
    for name, values in series.items():
        if len(values) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")
    if width < 10 or height < 3:
        raise ValueError("plot too small")

    x_low, x_high = min(xs), max(xs)
    x_span = (x_high - x_low) or 1.0
    all_values = [v for values in series.values() for v in values]
    y_low, y_high = min(all_values), max(all_values)
    y_span = (y_high - y_low) or 1.0

    grid: List[List[str]] = [[" "] * width for __ in range(height)]
    for index, (name, values) in enumerate(sorted(series.items())):
        mark = _MARKS[index % len(_MARKS)]
        for x, y in zip(xs, values):
            column = int((x - x_low) / x_span * (width - 1))
            row = height - 1 - int((y - y_low) / y_span * (height - 1))
            grid[row][column] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_high:>10.4g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_low:>10.4g} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    lines.append(" " * 12 + f"{x_low:<.4g}" +
                 f"{x_high:>{max(1, width - len(f'{x_low:<.4g}'))}.4g}")
    legend = "   ".join(f"{_MARKS[i % len(_MARKS)]} {name}"
                        for i, name in enumerate(sorted(series)))
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
