"""The real multithreaded DCWS server (paper section 5.1).

Mirrors the prototype's structure: a multithreaded HTTP *front-end* that
accepts and parses requests, a *worker* module with a pool of threads that
process and respond, and a *statistics/pinger* thread maintaining the
global load table and periodic machinery.  The multithreaded paradigm (vs
pool-of-processes) is what lets all workers share the Local Document Graph
and Global Load Table through one in-memory :class:`DCWSEngine`.

Request-drop behaviour follows section 5.2: when the bounded connection
queue is full, the connection is "dropped gracefully with a 503 error
response" by the front-end itself.  The drop is tallied in a plain
counter owned by the front-end thread and drained into the engine metrics
by the periodic thread, so the accept loop never waits on the engine lock
— exactly the overload that causes drops must not stall accepting.

Connections are persistent: a worker serves multiple requests per
connection (``Connection: keep-alive`` / HTTP/1.1 semantics, pipelining
included) under an idle timeout and a per-connection request cap, and
server-to-server transfers (lazy pulls, validations, pings) ride pooled
keep-alive channels (:class:`repro.client.pool.ConnectionPool`) instead
of opening one TCP connection per transfer.

The engine is guarded by one lock; blocking network I/O (reading requests,
sending responses, server-to-server transfers) happens outside the lock,
and so does dirty-document regeneration (the link-template splice runs on
the worker under a per-document guard with a double-checked dirty flag),
so the lock only covers in-memory graph/table operations.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from typing import List, Optional, TYPE_CHECKING

from repro.client.breaker import build_breaker
from repro.client.pool import ConnectionPool
from repro.client.realclient import http_fetch
from repro.errors import HTTPError, RecoverableProtocolError, ReproError
from repro.http.messages import (
    Request,
    Response,
    error_response,
    request_wants_keep_alive,
    response_allows_keep_alive,
)
from repro.http.status import StatusCode
from repro.http.wire import RequestParser
from repro.server.dispatch import (
    BlockingDirectiveMixin,
    DurabilityMixin,
    close_quietly,
)
from repro.server.engine import (
    DCWSEngine,
    EngineReply,
    RegenerateAndServe,
)

if TYPE_CHECKING:
    from repro.faults import FaultPlan

_RECV_CHUNK = 65536
_MAX_REQUEST = 1024 * 1024


class ThreadedDCWSServer(BlockingDirectiveMixin, DurabilityMixin):
    """Host a :class:`DCWSEngine` on real sockets with real threads."""

    def __init__(self, engine: DCWSEngine, *,
                 bind_host: str = "",
                 request_timeout: float = 10.0,
                 tick_period: float = 0.25,
                 snapshot_path: Optional[str] = None,
                 snapshot_interval: float = 30.0,
                 journal_path: Optional[str] = None,
                 faults: Optional["FaultPlan"] = None) -> None:
        self.engine = engine
        # Blocking sockets can drive os.sendfile: let the engine defer
        # large disk-backed bodies to the transport (FileBody responses).
        engine.sendfile_enabled = True
        self.bind_host = bind_host or engine.location.host
        self.port = engine.location.port
        self.request_timeout = request_timeout
        self.tick_period = tick_period
        # Optional restart recovery: restore (or journal-replay recover)
        # on start, checkpoint periodically and on stop
        # (repro.server.persistence / repro.server.wal).
        self.snapshot_path = snapshot_path
        self.snapshot_interval = snapshot_interval
        self._last_snapshot = 0.0
        self._init_durability(journal_path, faults)
        self._lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._connections: "queue.Queue[socket.socket]" = queue.Queue(
            maxsize=engine.config.socket_queue_length)
        self._stop = threading.Event()
        self._started = threading.Event()
        # Persistent channels for server-to-server transfers, with the
        # per-peer circuit breaker and (chaos runs) fault injection.
        self.pool = ConnectionPool(timeout=request_timeout,
                                   breaker=build_breaker(engine.config),
                                   faults=faults)
        engine.breaker = self.pool.breaker
        # Accepted-connection counter (front-end thread only); tests use it
        # to prove keep-alive (requests served >> connections accepted).
        self.connections_accepted = 0
        # Drop accounting without the engine lock: the front-end is the
        # sole writer of _drops_recorded, the periodic thread the sole
        # writer of _drops_drained, so neither needs synchronization.
        self._drops_recorded = 0
        self._drops_drained = 0
        self._init_dispatch()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Bind, listen, and launch front-end, worker and periodic threads."""
        if self._listener is not None:
            raise ReproError("server already started")
        with self._lock:
            now = time.monotonic()
            self._recover_state(now)
            self._last_snapshot = now
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.bind_host, self.port))
        listener.listen(self.engine.config.listen_backlog)
        listener.settimeout(0.2)
        self._listener = listener
        self._threads = []
        front_end = threading.Thread(target=self._front_end_loop,
                                     name=f"dcws-frontend-{self.port}",
                                     daemon=True)
        self._threads.append(front_end)
        for index in range(self.engine.config.worker_threads):
            worker = threading.Thread(target=self._worker_loop,
                                      name=f"dcws-worker-{self.port}-{index}",
                                      daemon=True)
            self._threads.append(worker)
        periodic = threading.Thread(target=self._periodic_loop,
                                    name=f"dcws-periodic-{self.port}",
                                    daemon=True)
        self._threads.append(periodic)
        for thread in self._threads:
            thread.start()
        self._started.set()

    def stop(self) -> None:
        """Stop accepting, drain threads, close the listener."""
        if self._listener is not None:
            with self._lock:
                self._checkpoint_state(time.monotonic())
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=5.0)
        self.pool.close()
        self._close_durability()
        self._listener = None
        self._threads = []

    def __enter__(self) -> "ThreadedDCWSServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Front-end thread: accept + enqueue, 503 on overflow
    # ------------------------------------------------------------------

    def _front_end_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                connection, __ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.connections_accepted += 1
            connection.settimeout(self.request_timeout)
            try:
                # Responses are single sendall() calls; Nagle only delays
                # the handful of small frames (503 drops, 304s).
                connection.setsockopt(socket.IPPROTO_TCP,
                                      socket.TCP_NODELAY, 1)
            except OSError:
                pass
            try:
                self._connections.put_nowait(connection)
            except queue.Full:
                self._drop_connection(connection)

    def _drop_connection(self, connection: socket.socket) -> None:
        """Graceful 503 drop (section 5.2) when the queue overflows.

        Runs on the front-end thread, which must keep accepting while the
        workers are saturated: the drop is only tallied here and reaches
        the engine metrics when the periodic thread drains the counter.
        """
        self._drops_recorded += 1
        response = error_response(StatusCode.SERVICE_UNAVAILABLE,
                                  "server overloaded")
        response.headers.set("Connection", "close")
        response.headers.set("Retry-After", "1")
        try:
            send_response(connection, response)
        except OSError:
            pass
        finally:
            _close_quietly(connection)

    # ------------------------------------------------------------------
    # Worker threads
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                connection = self._connections.get(timeout=0.2)
            except queue.Empty:
                continue
            try:
                self._serve_connection(connection)
            except Exception:
                # A broken connection must never kill a worker.
                pass
            finally:
                _close_quietly(connection)

    def _serve_connection(self, connection: socket.socket) -> None:
        """Serve requests off one connection until it closes.

        Honours persistent-connection semantics: after each response the
        worker keeps the connection (an idle timeout replacing the request
        timeout) and serves the next request — including ones already
        pipelined into the reader's buffer — until the peer asks to close,
        goes quiet, or the per-connection request cap is reached.
        """
        config = self.engine.config
        reader = _RequestReader(connection)
        served = 0
        while not self._stop.is_set():
            if served and not reader.buffered:
                connection.settimeout(config.keep_alive_timeout)
            try:
                request = reader.read_request()
            except socket.timeout:
                return  # idle keep-alive connection (or stalled peer)
            except RecoverableProtocolError as exc:
                # The parser consumed exactly the offending request (its
                # invalid Content-Length frames no body), so the stream is
                # still correctly delimited: answer 400 and keep serving —
                # the next pipelined request parses normally.
                served += 1
                keep = (config.keep_alive
                        and served < config.keep_alive_max_requests)
                response = error_response(StatusCode.BAD_REQUEST, str(exc))
                response.headers.set(
                    "Connection", "keep-alive" if keep else "close")
                try:
                    send_response(connection, response)
                except OSError:
                    return
                if not keep:
                    return
                continue
            except (HTTPError, OSError):
                _send_quietly(connection, error_response(
                    StatusCode.BAD_REQUEST))
                return
            if request is None:
                return  # peer closed cleanly at a request boundary
            if served:
                connection.settimeout(self.request_timeout)
            served += 1
            response = self._dispatch(request)
            keep = (config.keep_alive
                    and served < config.keep_alive_max_requests
                    and request_wants_keep_alive(request)
                    and response_allows_keep_alive(response))
            if not keep:
                response.headers.set("Connection", "close")
            try:
                send_response(connection, response)
            except OSError:
                return
            if not keep:
                return

    def _dispatch(self, request: Request) -> Response:
        now = time.monotonic()
        config = self.engine.config
        # Lock-free fast path: a clean cached read resolves entirely off
        # the engine lock (rendering included); only the stamp re-check
        # and the counters happen under it.  Any contention or mutation
        # falls through to the full locked path below.
        hit = self.engine.fast_lookup(request, now)
        # Queue depth is this front end's pressure signal: at or above
        # shed_pressure of the bounded hand-off queue, the engine sheds
        # its expensive tier (regenerations, first-use pulls) while cache
        # hits and 304s keep flowing.  qsize() is read without the lock —
        # an approximate reading is exactly what a pressure signal needs.
        pressure = self._connections.qsize() / config.socket_queue_length
        with self._lock:
            self.engine.overloaded = (config.tiered_shedding
                                      and pressure >= config.shed_pressure)
            if hit is not None:
                reply = self.engine.fast_commit(hit, request, now)
                if reply is not None:
                    return reply.response
            result = self.engine.handle_request(request, now)
        if isinstance(result, EngineReply):
            return result.response
        if isinstance(result, RegenerateAndServe):
            return self._execute_regeneration(result)
        return self._execute_pull(result)

    # ------------------------------------------------------------------
    # Periodic thread: statistics, migration decisions, validation, pinger
    # ------------------------------------------------------------------

    def _periodic_loop(self) -> None:
        while not self._stop.is_set():
            now = time.monotonic()
            pending_drops = self._drops_recorded - self._drops_drained
            with self._lock:
                for __ in range(pending_drops):
                    self.engine.metrics.record_drop(now)
                actions = self.engine.tick(now)
            self._drops_drained += pending_drops
            for action in actions:
                if self._stop.is_set():
                    return
                started = time.monotonic()
                try:
                    response = http_fetch(action.peer, action.request,
                                          timeout=self.request_timeout,
                                          pool=self.pool)
                except (OSError, HTTPError):
                    response = None
                finished = time.monotonic()
                rtt = finished - started if response is not None else None
                with self._lock:
                    self.engine.complete_action(action, response, finished,
                                                rtt=rtt)
            self._durability_tick(now)
            if self.snapshot_path and \
                    now - self._last_snapshot >= self.snapshot_interval:
                with self._lock:
                    self._checkpoint_state(now)
                    self._last_snapshot = now
            self._stop.wait(self.tick_period)

    # ------------------------------------------------------------------

    def wait_ready(self, timeout: float = 5.0) -> bool:
        """Block until the server threads are running."""
        return self._started.wait(timeout)


class _RequestReader:
    """Blocking shim over the sans-I/O parser for one connection.

    All protocol behaviour — pipelining, Content-Length framing, size
    limits, truncation rejection — lives in
    :class:`repro.http.wire.RequestParser`; this class only moves bytes
    from a blocking socket into it.  A peer that closes mid-request
    raises :class:`HTTPError` — a truncated request is never silently
    accepted.
    """

    __slots__ = ("_connection", "_parser")

    def __init__(self, connection: socket.socket) -> None:
        self._connection = connection
        self._parser = RequestParser(max_request=_MAX_REQUEST)

    @property
    def buffered(self) -> bool:
        """Bytes of a further (pipelined) request are already waiting."""
        return self._parser.buffered

    def read_request(self) -> Optional[Request]:
        """Read one complete request; ``None`` on clean EOF between
        requests."""
        while True:
            request = self._parser.next_request()
            if request is not None:
                return request
            if self._parser.eof:
                return None
            chunk = self._connection.recv(_RECV_CHUNK)
            if not chunk:
                self._parser.feed_eof()
            else:
                self._parser.feed(chunk)


def _read_request(connection: socket.socket) -> Request:
    """Read one complete request off *connection*."""
    request = _RequestReader(connection).read_request()
    if request is None:
        raise HTTPError("connection closed before request completed")
    return request


def send_response(connection: socket.socket, response: Response) -> None:
    """Put *response* on the wire without concatenating head and body.

    Three delivery strategies, most efficient first:

    - ``body_file`` set → send the head, then ``socket.sendfile`` the
      disk file (kernel zero-copy where the platform has ``os.sendfile``;
      the stdlib falls back to a read/send loop where it does not);
    - bytes body → one ``sendmsg([head, body])`` gather write, looped
      with memoryview slicing on short writes, so the (possibly shared,
      cached) body bytes are never copied into a concatenated buffer;
    - no ``sendmsg`` on this platform → plain ``sendall`` concatenation.

    Raises ``OSError`` on transport failure like ``sendall`` would.
    """
    head = response.serialize_head()
    if response.body_file is not None and not response.body:
        connection.sendall(head)
        with open(response.body_file.path, "rb") as handle:
            connection.sendfile(handle, 0, response.body_file.size)
        return
    body = response.body
    if not body:
        connection.sendall(head)
        return
    if not hasattr(connection, "sendmsg"):
        connection.sendall(head + body)
        return
    segments = [memoryview(head), memoryview(body)]
    while segments:
        sent = connection.sendmsg(segments)
        while segments and sent >= len(segments[0]):
            sent -= len(segments[0])
            segments.pop(0)
        if segments and sent:
            segments[0] = segments[0][sent:]


def _send_quietly(connection: socket.socket, response: Response) -> None:
    try:
        send_response(connection, response)
    except OSError:
        pass


#: Shared with the event-loop front end (repro.server.dispatch).
_close_quietly = close_quietly
