"""Engine invariant checker: is this (recovered) engine self-consistent?

Crash recovery (:func:`repro.server.persistence.recover`) promises a
*prefix-consistent* engine: some acknowledged tail of work may be lost,
but what remains must be coherent — no migration table entry without its
graph record, no hyperlink pointing at a co-op the home has forgotten, no
hosted entry claiming bytes that are not there.  :func:`check_engine`
verifies exactly that, and the crash/chaos suites run it after every
recovery so "the server came back up" is never mistaken for "the server
came back up *right*".

Checked invariants:

1.  migration table ↔ graph agreement, both directions: every policy
    record's document exists and is located at (or replicated on) that
    co-op; every document located away from home has a policy record;
2.  entry points are at home whenever the config protects them;
3.  every *fetched* hosted entry is backed by store bytes; unfetched
    entries carry no size/version (they re-pull on demand — never 404);
4.  every document record's bytes exist in the store (a home must be
    able to serve or re-serve everything it owns);
5.  *clean* (not dirty) HTML home documents contain no stale
    migrated-form links: a link rewritten toward a co-op must point at a
    current location of its target — otherwise a crash forgot a
    revocation that the on-disk hyperlinks still remember;
6.  validation deadlines track exactly the fetched hosted entries;
7.  replica sets are well-formed: no replica equals the home location
    or duplicates the primary, every holder of a replicated document is
    a server the GLT still knows, every replicated hosted entry has
    bytes present or is registered unfetched, and (when the replication
    manager is active) every group tracks a currently migrated
    document;
8.  membership agreement: no peer the membership table considers dead
    (or forgotten) still holds any document — a dead holder lingering
    in a serving set means repair forgot to drop it, which is exactly
    the "two primaries" hazard the rejoin reconciliation must prevent;
9.  quarantine agreement: no copy the integrity manager has quarantined
    is still in any serve table — a quarantined hosted entry must be
    unfetched (digestless, versionless) and a quarantined home document
    must have no rendered response cached, or a known-corrupt body
    could reach a client.

Violations are strings (path + what is wrong), so test failures read as
a diagnosis rather than a boolean.
"""

from __future__ import annotations

from typing import List

from repro.core.naming import decode_migrated_path, is_migrated_path
from repro.errors import DocumentNotFound, NamingError, ReproError
from repro.html.links import extract_links
from repro.html.parser import parse_html
from repro.http.urls import normalize_path, parse_url, strip_fragment
from repro.server.engine import DCWSEngine


class FsckError(ReproError):
    """Raised by :func:`assert_clean` when an engine fails its fsck."""


def check_engine(engine: DCWSEngine, *,
                 check_links: bool = True) -> List[str]:
    """Every invariant violation found in *engine* (empty = clean).

    ``check_links=False`` skips the parse-every-clean-document pass
    (invariant 5) for callers that only need the cheap structural
    checks.
    """
    violations: List[str] = []
    home = engine.location

    # 1. migration table ↔ graph, both directions
    for name in engine.policy.migrated_names():
        restored = engine.policy.restored(name)
        assert restored is not None
        coop = restored[0]
        record = engine.graph.find(name)
        if record is None:
            violations.append(
                f"migration table entry for missing document: {name} "
                f"-> {coop}")
            continue
        if record.location != coop and coop not in record.replicas:
            violations.append(
                f"migration table says {name} is on {coop}, graph says "
                f"{record.location} (replicas {sorted(map(str, record.replicas))})")
    migrated = set(engine.policy.migrated_names())
    for record in engine.graph.migrated_documents():
        if record.name not in migrated:
            violations.append(
                f"document {record.name} located on {record.location} "
                f"but absent from the migration table (forgotten "
                f"migration)")

    # 2. entry points at home
    if engine.config.protect_entry_points:
        for record in engine.graph.entry_points():
            if record.location != home:
                violations.append(
                    f"entry point {record.name} migrated to "
                    f"{record.location}")

    # 3. hosted entries: fetched ↔ bytes
    for key, entry in engine.hosted.items():
        if entry.fetched:
            if key not in engine.store:
                violations.append(
                    f"hosted entry {key} marked fetched but store has "
                    f"no bytes")
        else:
            if entry.version:
                violations.append(
                    f"unfetched hosted entry {key} carries version "
                    f"{entry.version!r}")

    # 4. every home document's bytes are in the store
    for record in engine.graph.documents():
        if record.name not in engine.store:
            violations.append(
                f"document {record.name} in the graph but its bytes "
                f"are missing from the store")

    # 6. validation deadlines ↔ fetched hosted entries
    for key in engine.validation.keys():
        entry = engine.hosted.get(str(key))
        if entry is None:
            violations.append(
                f"validation deadline for unknown hosted entry {key}")

    # 7. replica invariants
    violations.extend(_check_replicas(engine))

    # 8. membership agreement: dead peers hold nothing
    violations.extend(_check_membership(engine))

    # 9. quarantined copies are out of every serve table
    violations.extend(_check_quarantine(engine))

    # 5. clean documents carry no stale migrated-form links
    if check_links:
        violations.extend(_check_clean_links(engine))
    return violations


def _check_clean_links(engine: DCWSEngine) -> List[str]:
    """Invariant 5: parse each clean HTML home document and verify every
    migrated-form hyperlink points at a current location of its target."""
    violations: List[str] = []
    home = engine.location
    for record in engine.graph.documents():
        if record.dirty or not record.is_html or record.location != home:
            continue
        try:
            source = engine.store.get(record.name).decode("latin-1")
        except DocumentNotFound:
            continue  # already reported by invariant 4
        for link in extract_links(parse_html(source)):
            raw = strip_fragment(link.value).strip()
            if not raw:
                continue
            try:
                url = parse_url(raw)
            except Exception:
                continue  # relative or malformed: not a rewritten link
            path = normalize_path(url.path)
            if not is_migrated_path(path):
                continue
            try:
                link_home, original = decode_migrated_path(path)
            except NamingError:
                continue
            if link_home != home:
                continue  # a link into some other site's migrated space
            target = engine.graph.find(original)
            if target is None:
                violations.append(
                    f"clean document {record.name} links to migrated "
                    f"form of unknown document {original}")
                continue
            link_host = f"{url.host}:{url.port}"
            current = {str(loc) for loc in target.locations()}
            if link_host not in current:
                violations.append(
                    f"clean document {record.name} links {original} at "
                    f"{link_host}, but its current locations are "
                    f"{sorted(current)} (stale rewritten link)")
    return violations


def _check_replicas(engine: DCWSEngine) -> List[str]:
    """Invariant 7: replica sets and replication groups are well-formed."""
    violations: List[str] = []
    home = engine.location
    for record in engine.graph.documents():
        if not record.replicas:
            continue
        if home in record.replicas:
            violations.append(
                f"document {record.name} lists its home {home} as a "
                f"replica")
        if record.location in record.replicas:
            violations.append(
                f"document {record.name} lists its primary "
                f"{record.location} among its replicas")
        if record.location == home:
            violations.append(
                f"document {record.name} is at home but still carries "
                f"replicas {sorted(map(str, record.replicas))}")
    # A hosted (co-op side) copy of a replicated document must either be
    # backed by bytes or registered unfetched (it then re-pulls from the
    # home on demand); an unfetched entry claiming a size would serve a
    # phantom.  Complements invariant 3's fetched-without-bytes check.
    for key, entry in engine.hosted.items():
        if not entry.fetched and entry.size:
            violations.append(
                f"unfetched hosted entry {key} claims size {entry.size}")
    if engine.replication is not None:
        # Active manager: every holder of a group-managed document must
        # still be a server the GLT knows (a dead holder must have been
        # dropped by repair, not linger in the serving set), and every
        # group must track a currently migrated document.
        migrated = set(engine.policy.migrated_names())
        for name, group in engine.replication.groups.items():
            record = engine.graph.find(name)
            if record is None or name not in migrated:
                violations.append(
                    f"replication group for {name} but the document is "
                    f"not migrated")
                continue
            for holder in sorted(record.locations(), key=str):
                if holder != home and holder not in engine.glt:
                    violations.append(
                        f"document {name} held by {holder}, which the "
                        f"GLT no longer knows")
            if group.target < 1:
                violations.append(
                    f"replication group for {name} has target "
                    f"{group.target}")
    return violations


def _check_membership(engine: DCWSEngine) -> List[str]:
    """Invariant 8: no document is held by a peer the membership table
    has declared dead or forgotten.

    ``_declare_dead`` revokes every document from the dying peer in the
    same bracket that journals the membership transition, and rejoin
    reconciliation only re-admits a returning copy as a *replica*; if a
    dead peer still appears among a document's locations, one of those
    paths lost a race — and a healed partition would resurrect a second
    primary."""
    violations: List[str] = []
    membership = getattr(engine, "membership", None)
    if membership is None:
        return violations
    dead = {peer for peer, state in membership.states().items()
            if state in ("dead", "forgotten")}
    if not dead:
        return violations
    for record in engine.graph.documents():
        for holder in sorted(record.locations(), key=str):
            if str(holder) in dead:
                violations.append(
                    f"document {record.name} held by {holder}, which "
                    f"membership declares {membership.state(str(holder))}")
    return violations


def _check_quarantine(engine: DCWSEngine) -> List[str]:
    """Invariant 9: nothing quarantined is servable.

    A quarantined hosted copy must have reverted to unfetched (its bytes
    deleted, version and digest blanked) and a quarantined home document
    must have no rendering left in the response cache — both are the
    mechanical guarantees behind "zero corrupt 200 bodies"."""
    violations: List[str] = []
    integrity = getattr(engine, "integrity", None)
    if integrity is None:
        return violations
    for qrec in integrity.active():
        key = qrec.key
        if qrec.kind == "hosted":
            entry = engine.hosted.get(key)
            if entry is not None and entry.fetched:
                violations.append(
                    f"quarantined hosted entry {key} is still marked "
                    f"fetched (servable)")
            if entry is not None and (entry.version or entry.digest):
                violations.append(
                    f"quarantined hosted entry {key} still carries "
                    f"version/digest state")
            continue
        record = engine.graph.find(key)
        if record is not None \
                and engine.response_cache.get(key, record.version,
                                              "GET") is not None:
            violations.append(
                f"quarantined home document {key} still has a rendered "
                f"response cached")
    return violations


def assert_clean(engine: DCWSEngine, *, check_links: bool = True) -> None:
    """Raise :class:`FsckError` listing every violation, if any."""
    violations = check_engine(engine, check_links=check_links)
    if violations:
        raise FsckError(
            "engine failed fsck:\n  " + "\n  ".join(violations))
