"""Operator-facing status pages served under ``/~dcws/``.

A DCWS server answers four plain-text administrative endpoints:

- ``/~dcws/status`` — one-screen summary: documents, migrations, hosted
  copies, request counters, load table size;
- ``/~dcws/graph``  — the Local Document Graph, one tuple per line
  (the paper's Figure 2, live);
- ``/~dcws/load``   — the Global Load Table as this server sees it;
- ``/~dcws/peers``  — the failure-domain view: per-peer circuit-breaker
  state, consecutive failures, last success, and GLT row age;
- ``/~dcws/events`` — the tail of the structured event log;
- ``/~dcws/caches`` — hit/miss/eviction counters of the serve-path cache
  hierarchy (link templates, byte cache, response cache);
- ``/~dcws/durability`` — write-ahead journal position, checkpoint
  freshness, and the stats of the last crash recovery;
- ``/~dcws/membership`` — the adaptive membership table: per-peer
  alive/suspect/dead/forgotten state, φ suspicion, RTT estimates, and
  the rediscovery (re-probe) schedule;
- ``/~dcws/integrity`` — the content-integrity view: scrub schedule and
  cursor, corruption/quarantine counters, and every active quarantine;
- ``/~dcws/health`` — liveness + readiness probe.  Unlike the other
  endpoints this one is answered by the engine *before* any accounting
  (no request counter, no CPS/BPS metrics, no entry gate), so load
  balancers and baselines can poll it without inflating hit counters.

They are rendered here (pure functions over engine state) and dispatched
by :meth:`repro.server.engine.DCWSEngine.handle_request`, so both the real
server and the simulator expose them.
"""

from __future__ import annotations

from typing import List

from repro.core.document import Location

ADMIN_PREFIX = "/~dcws/"


def render_status(engine) -> str:
    """The one-screen summary."""
    stats = engine.stats
    lines: List[str] = [
        f"DCWS server {engine.location}",
        "",
        f"documents (home)        {len(engine.graph)}",
        f"  migrated away         {len(engine.graph.migrated_documents())}",
        f"  entry points          {len(engine.graph.entry_points())}",
        f"  dirty                 "
        f"{sum(1 for r in engine.graph.documents() if r.dirty)}",
        f"hosted foreign copies   "
        f"{sum(1 for h in engine.hosted.values() if h.fetched)}",
        f"known servers (GLT)     {len(engine.glt)}",
        "",
        f"requests                {stats.requests}",
        f"  200 OK                {stats.responses_200}",
        f"  206 partial           {stats.responses_206}",
        f"  301 redirects         {stats.responses_301}",
        f"  304 not modified      {stats.responses_304}",
        f"    via client validators {stats.conditional_304s}",
        f"  404 not found         {stats.responses_404}",
        f"  416 bad range         {stats.responses_416}",
        f"  503 unavailable       {stats.responses_503}",
        f"gzip responses          {stats.gzip_responses}",
        f"  bytes saved           {stats.gzip_bytes_saved}",
        f"shed under overload     "
        f"{stats.regenerations_shed + stats.pulls_shed} "
        f"(regen {stats.regenerations_shed}, pull {stats.pulls_shed})",
        f"reconstructions         {stats.reconstructions}",
        f"  via template splice   {stats.splices}",
        f"migrations              {stats.migrations}",
        f"revocations             {stats.revocations}",
        f"replications            {stats.replications}",
        f"replica repairs         {stats.repairs}",
        f"replica drops           {stats.replica_drops}",
        f"pulls started/completed {stats.pulls_started}/{stats.pulls_completed}",
        f"validations             {stats.validations}",
        f"pings                   {stats.pings}",
    ]
    return "\n".join(lines) + "\n"


def render_graph(engine) -> str:
    """The LDG as a fixed-width table (paper Figure 2)."""
    header = (f"{'Name':<40} {'Location':<22} {'Size':>8} {'Hits':>8} "
              f"{'LinkTo':>6} {'LinkFrom':>8} {'Dirty':>5}")
    lines = [header, "-" * len(header)]
    for name in engine.graph.names():
        record = engine.graph.get(name)
        lines.append(
            f"{record.name:<40} {str(record.location):<22} "
            f"{record.size:>8} {record.hits:>8} "
            f"{len(record.link_to):>6} {len(record.link_from):>8} "
            f"{1 if record.dirty else 0:>5}")
    return "\n".join(lines) + "\n"


def render_load_table(engine) -> str:
    """The GLT rows, newest-first information included."""
    lines = [f"{'Server':<24} {'LoadMetric':>12} {'Timestamp':>14}"]
    lines.append("-" * len(lines[0]))
    for report in engine.glt.snapshot():
        timestamp = ("never" if report.timestamp == float("-inf")
                     else f"{report.timestamp:.3f}")
        lines.append(f"{report.server:<24} {report.metric:>12.3f} "
                     f"{timestamp:>14}")
    return "\n".join(lines) + "\n"


def render_peers(engine) -> str:
    """The failure-domain view of every known peer.

    Combines the circuit breaker's per-peer snapshot (when the host wired
    one up) with the health monitor's consecutive-failure counts and the
    GLT row's age, so an operator sees detection state at a glance.
    """
    now = getattr(engine, "_admin_now", 0.0)
    breaker = getattr(engine, "breaker", None)
    snapshot = breaker.snapshot() if breaker is not None else {}
    header = (f"{'Peer':<24} {'Breaker':>10} {'Trips':>6} {'Fails':>6} "
              f"{'LastSuccess':>14} {'RetryIn':>9} {'RowAge':>10} "
              f"{'RTT':>9}")
    lines = [header, "-" * len(header)]
    peers = {str(p) for p in engine.glt.peers()} | set(snapshot)
    for key in sorted(peers):
        state = snapshot.get(key, {})
        breaker_state = str(state.get("state", "closed"))
        trips = int(state.get("trips", 0) or 0)
        fails = max(int(state.get("consecutive_failures", 0) or 0),
                    engine.health.failures(key))
        last = state.get("last_success")
        if last is None:
            last = engine.health.last_success(key)
        last_text = "never" if last is None else f"{max(0.0, now - last):.1f}s"
        retry_at = float(state.get("retry_at", 0.0) or 0.0)
        retry_text = (f"{max(0.0, retry_at - now):.2f}s"
                      if breaker_state == "open" else "-")
        row = None
        try:
            row = engine.glt.get(Location.parse(key))
        except ValueError:
            pass
        if row is None or row.timestamp == float("-inf"):
            age_text = "no-row"
        else:
            age_text = f"{max(0.0, now - row.timestamp):.1f}s"
        rtt = engine.health.rtt(key)
        rtt_text = "-" if rtt is None else f"{rtt * 1000.0:.1f}ms"
        lines.append(f"{key:<24} {breaker_state:>10} {trips:>6} {fails:>6} "
                     f"{last_text:>14} {retry_text:>9} {age_text:>10} "
                     f"{rtt_text:>9}")
    total = breaker.total_trips() if breaker is not None else 0
    lines.append("")
    lines.append(f"breaker trips (lifetime) {total}")
    lines.append(f"suspects {' '.join(engine.health.suspects()) or '-'}")
    return "\n".join(lines) + "\n"


def render_events(engine, limit: int = 50) -> str:
    """The event-log tail plus lifetime counts."""
    counts = engine.log.counts()
    lines = ["event counts:"]
    for kind in sorted(counts):
        lines.append(f"  {kind:<20} {counts[kind]}")
    lines.append("")
    lines.append(f"last {limit} events:")
    tail = engine.log.render_tail(limit)
    lines.append(tail if tail else "  (none)")
    return "\n".join(lines) + "\n"


def render_health(engine) -> str:
    """Liveness + readiness, cheap enough for per-second probing."""
    ready = 1 if getattr(engine, "_initialized", False) else 0
    return (f"ok\nready {ready}\n"
            f"documents {len(engine.graph)}\n"
            f"hosted {sum(1 for h in engine.hosted.values() if h.fetched)}\n")


def render_durability(engine) -> str:
    """Journal position, checkpoint freshness, and last-recovery stats.

    The operator's crash-safety dashboard: how much un-checkpointed
    journal exists (recovery replay time), how stale the snapshot is,
    and what the last recovery actually replayed.
    """
    now = getattr(engine, "_admin_now", 0.0)
    lines: List[str] = []
    journal = getattr(engine, "journal", None)
    if journal is None:
        lines.append("journal: not configured (snapshot-only durability)")
    else:
        info = journal.describe()
        checkpoint_at = journal.last_checkpoint_at
        age_text = ("never" if checkpoint_at is None
                    else f"{max(0.0, now - checkpoint_at):.1f}s")
        lines.extend([
            "journal:",
            f"  path                {info['path']}",
            f"  fsync policy        {info['fsync_policy']}",
            f"  epoch               {info['epoch']}",
            f"  last lsn            {info['last_lsn']}",
            f"  size bytes          {info['size_bytes']}",
            f"  records since ckpt  {info['records_since_checkpoint']}",
            f"  appends / fsyncs    {info['appends']}/{info['syncs']}",
            f"  last checkpoint age {age_text}",
            f"  torn tail truncated {1 if info['torn_tail_truncated'] else 0}",
        ])
    recovery = getattr(engine, "recovery", None)
    if recovery is None:
        lines.append("recovery: none this incarnation")
    else:
        lines.extend([
            "recovery (last):",
            f"  snapshot loaded     {1 if recovery.snapshot_loaded else 0}",
            f"  snapshot error      {recovery.snapshot_error or '-'}",
            f"  documents restored  {recovery.documents_restored}",
            f"  records replayed    {recovery.records_replayed}",
            f"  records skipped     {recovery.records_skipped}",
            f"  torn tail truncated {1 if recovery.torn_tail_truncated else 0}",
            f"  last lsn            {recovery.last_lsn}",
        ])
    lines.append(f"checkpoints {engine.log.count('checkpoint')}")
    lines.append(f"recoveries  {engine.log.count('recover')}")
    return "\n".join(lines) + "\n"


def render_caches(engine) -> str:
    """The serve-path cache hierarchy, one counter per line."""
    lines: List[str] = []
    for layer, counters in engine.cache_counters().items():
        lines.append(f"{layer}:")
        for key in sorted(counters):
            value = counters[key]
            if isinstance(value, float):
                lines.append(f"  {key:<16} {value:.4f}")
            else:
                lines.append(f"  {key:<16} {value}")
    return "\n".join(lines) + "\n"


def render_workers(engine) -> str:
    """The multi-process worker roster (``/~dcws/workers``).

    In multi-process mode the supervisor pushes an aggregated cluster
    view down to every worker (``engine.worker_view``); any worker can
    therefore answer for the whole fleet.  Single-process hosts report
    themselves as a one-worker roster so the endpoint is always live.
    """
    view = getattr(engine, "worker_view", None)
    data = view() if callable(view) else view
    if not data:
        return ("single-process mode (no worker supervisor)\n"
                "workers 1\n")
    cluster = data.get("cluster") or {}
    lines: List[str] = [
        f"worker {data.get('worker')} pid {data.get('pid')}",
        f"roster {' '.join(str(i) for i in data.get('roster', []))}",
        f"stripes {data.get('stripes')}",
    ]
    if cluster:
        lines.append(f"mode {cluster.get('mode')}")
        lines.append(f"respawns {cluster.get('respawns', 0)}")
        lines.append("")
        header = (f"{'Worker':>6} {'PID':>8} {'Alive':>5} {'Accepted':>9} "
                  f"{'Requests':>9} {'CacheHits':>9} {'RPS':>9}  Shards")
        lines.append(header)
        lines.append("-" * len(header))
        workers = cluster.get("workers", {})
        for index in sorted(workers, key=lambda k: int(k)):
            row = workers[index]
            shards = ",".join(str(s) for s in row.get("shards", [])) or "-"
            lines.append(
                f"{index:>6} {str(row.get('pid', '-')):>8} "
                f"{1 if row.get('alive') else 0:>5} "
                f"{row.get('accepted', 0):>9} {row.get('requests', 0):>9} "
                f"{row.get('response_cache_hits', 0):>9} "
                f"{row.get('rps', 0.0):>9} "
                f" {shards}")
    else:
        lines.append("cluster view: not yet received from supervisor")
    return "\n".join(lines) + "\n"


def render_replication(engine) -> str:
    """Replication groups and the repair daemon (``/~dcws/replication``).

    Group roster with live-holder counts and states, the copies
    histogram, and the repair/two-choices counters — the operator's view
    of how far the cluster is from its k-copy target.
    """
    manager = getattr(engine, "replication", None)
    if manager is None:
        return ("replication: disabled (replication_k <= 1)\n"
                f"replicated documents "
                f"{sum(1 for r in engine.graph.documents() if r.replicas)}\n")
    now = getattr(engine, "_admin_now", 0.0)
    counters = manager.counters
    lines: List[str] = [
        f"replication groups      {len(manager.groups)}",
        f"  target k              {manager.config.replication_k}",
        f"  sufficient            {manager.config.replication_sufficient}",
        f"  below target          {manager.groups_below_target()}",
        f"  repair interval       {manager.repair_interval:g}s",
        f"repairs                 {counters.repairs}",
        f"replica drops           {counters.replica_drops}",
        f"state changes           {counters.state_changes}",
        f"two-choices picks       {counters.two_choices_picks}",
        f"  took the alternate    {counters.two_choices_alternates}",
        "",
        "copies histogram (live holders -> groups):",
    ]
    histogram = manager.copies_histogram()
    if histogram:
        for live in sorted(histogram):
            lines.append(f"  {live:>2} {histogram[live]}")
    else:
        lines.append("  (no groups)")
    lines.append("")
    header = (f"{'Document':<40} {'State':>9} {'Live':>5} {'Target':>7} "
              f"{'Repairs':>8} {'LastRepair':>11}")
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(manager.groups):
        group = manager.groups[name]
        live = len(manager.live_holders(name))
        repaired = ("never" if not group.repaired_at
                    else f"{max(0.0, now - group.repaired_at):.1f}s")
        lines.append(f"{name:<40} {group.state:>9} {live:>5} "
                     f"{group.target:>7} {group.repairs:>8} {repaired:>11}")
    return "\n".join(lines) + "\n"


def render_integrity(engine) -> str:
    """The content-integrity view (``/~dcws/integrity``).

    Scrub schedule and cursor position, the lifetime detection counters
    the chaos gates assert on, and every active quarantine with how it
    was caught — the operator's answer to "is anything silently wrong
    and what is being done about it".
    """
    manager = getattr(engine, "integrity", None)
    if manager is None:
        return "integrity: not configured\n"
    now = getattr(engine, "_admin_now", 0.0)
    info = manager.describe()
    if info["scrub_enabled"]:
        schedule = (f"every {info['scrub_interval']:g}s, "
                    f"{info['scrub_budget']} docs/round")
    else:
        schedule = "disabled"
    sample = int(info["serve_sample"])
    sample_text = f"1 in {sample}" if sample > 0 else "disabled"
    lines: List[str] = [
        f"scrub schedule          {schedule}",
        f"  rounds                {info['scrub_rounds']}",
        f"  documents checked     {info['scrub_checked']}",
        f"  cursor                {info['scrub_cursor'] or '-'}",
        f"serve-path sampling     {sample_text}",
        f"  checks performed      {info['serve_checks']}",
        f"corruptions detected    {info['corruptions_detected']}",
        f"quarantines (lifetime)  {info['quarantines']}",
        f"  active                {info['quarantines_active']}",
        f"  cleared               {info['quarantines_cleared']}",
        f"verified pulls rejected {info['pulls_rejected']}",
        f"bad holders reported    {info['holder_quarantines_reported']}",
        f"repairs from verified   {info['repairs_from_verified']}",
        "",
    ]
    header = (f"{'Document':<40} {'Kind':>7} {'Reason':>9} {'Age':>9} "
              f"{'Notified':>8}")
    lines.append(header)
    lines.append("-" * len(header))
    active = manager.active()
    for record in active:
        age = f"{max(0.0, now - record.at):.1f}s"
        notified = ("-" if record.kind != "hosted"
                    else ("yes" if record.notified else "no"))
        lines.append(f"{record.key:<40} {record.kind:>7} "
                     f"{record.reason:>9} {age:>9} {notified:>8}")
    if not active:
        lines.append("(nothing quarantined)")
    return "\n".join(lines) + "\n"


def render_membership(engine) -> str:
    """The membership table (``/~dcws/membership``).

    Per-peer state, current φ suspicion, consecutive explicit failures,
    RTT estimate, and — for dead peers — the rediscovery schedule; plus
    the lifetime membership counters the chaos gates assert on.
    """
    table = getattr(engine, "membership", None)
    if table is None:
        return "membership: not configured\n"
    now = getattr(engine, "_admin_now", 0.0)
    counters = table.counters
    lines: List[str] = [
        f"suspect phi             {table.suspect_phi:g}",
        f"dead phi                {table.dead_phi:g}",
        f"failure limit           {table.failure_limit}",
        f"re-probe interval       {table.reprobe_interval:g}s "
        f"(x{table.reprobe_backoff:g} to {table.reprobe_max_interval:g}s)",
        f"suspicions              {counters.suspicions}",
        f"deaths declared         {counters.deaths}",
        f"rediscoveries           {counters.rediscoveries}",
        f"re-probes sent          {counters.probes_sent}",
        f"re-probe backlog        {table.reprobe_backlog()}",
        f"reconcile drops         {counters.reconcile_drops}",
        f"reconcile re-registers  {counters.reconcile_reregistrations}",
        "",
    ]
    header = (f"{'Peer':<24} {'State':>10} {'Phi':>7} {'Fails':>6} "
              f"{'RTT':>9} {'Since':>9} {'NextProbe':>10}")
    lines.append(header)
    lines.append("-" * len(header))
    states = table.states()
    for key in sorted(states):
        info = table.describe(key)
        phi = table.phi(key, now)
        rtt = engine.health.rtt(key)
        rtt_text = "-" if rtt is None else f"{rtt * 1000.0:.1f}ms"
        since = float(info.get("since", 0.0) or 0.0)
        # since == 0.0 is the registration default, not a transition
        # timestamp — against a monotonic clock it would render as hours.
        since_text = "-" if since == 0.0 else f"{max(0.0, now - since):.1f}s"
        if states[key] in ("dead", "forgotten") and info.get("configured"):
            next_at = float(info.get("next_probe_at", 0.0) or 0.0)
            probe_text = f"{max(0.0, next_at - now):.1f}s"
        else:
            probe_text = "-"
        lines.append(f"{key:<24} {states[key]:>10} {phi:>7.2f} "
                     f"{int(info.get('failures', 0) or 0):>6} "
                     f"{rtt_text:>9} {since_text:>9} {probe_text:>10}")
    if not states:
        lines.append("(no known peers)")
    return "\n".join(lines) + "\n"


#: endpoint path (under /~dcws/) -> renderer
ENDPOINTS = {
    "status": render_status,
    "graph": render_graph,
    "load": render_load_table,
    "peers": render_peers,
    "events": render_events,
    "caches": render_caches,
    "durability": render_durability,
    "replication": render_replication,
    "membership": render_membership,
    "integrity": render_integrity,
    "workers": render_workers,
    "health": render_health,
}

#: Full request path of the accounting-free health probe.
HEALTH_PATH = ADMIN_PREFIX + "health"
