"""Replication groups with autonomous repair.

The paper defers hot-document replication to future work (section 6);
this subsystem makes the vestigial hooks (``LDG.add_replica``, the
``replicate`` decision kind) a first-class availability mechanism:

- every hot migrated document gets a *replication group* with a target
  holder count k (``ServerConfig.replication_k``) and a sufficiency
  threshold (``replication_sufficient``);
- a *repair loop*, driven off the engine tick like the migration round,
  proactively tops groups up to k holders and — when the circuit breaker
  or the pinger rules a holder dead — drops the dead holder (promoting a
  surviving replica when the primary died) and re-replicates onto the
  least-loaded live peer.  Because migration is logical and co-ops pull
  bytes lazily from home, repair is pure bookkeeping: no bulk copy, no
  302-storm, no availability gap;
- serving becomes replica-aware: requesters are spread over the live
  holders with *power of two choices* (DistCache, arXiv:1901.08200) —
  two candidates chosen by a deterministic digest of (name, salt), the
  less-loaded one (by GLT row) wins — replacing the single deterministic
  hash pick.

Group state machine::

    healthy (live >= k)  ->  degraded (sufficient <= live < k)
                         ->  critical (live < sufficient)
    any deficit  --repair loop-->  repaired back to healthy

The manager deliberately has no I/O and no locking of its own: the
engine calls it under the same write bracket as the migration round, and
repairs surface as :class:`~repro.core.migration.MigrationDecision`
records (kinds ``replica_drop`` / ``repair``) so the write-ahead journal
and snapshot machinery cover them like any other relocation.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.config import ServerConfig
from repro.core.document import DocumentRecord, Location
from repro.core.glt import GlobalLoadTable
from repro.core.ldg import LocalDocumentGraph
from repro.core.migration import MigrationDecision, MigrationPolicy

STATE_HEALTHY = "healthy"
STATE_DEGRADED = "degraded"
STATE_CRITICAL = "critical"

_STATE_PRIORITY = {STATE_CRITICAL: 0, STATE_DEGRADED: 1, STATE_HEALTHY: 2}


def _digest(name: str, salt: str) -> int:
    """Deterministic (cross-process, cross-run) pick digest.

    ``hash()`` is salted per process; crc32 keeps replica choice stable
    under multiproc sharding and makes simulator runs reproducible."""
    return zlib.crc32(f"{name}|{salt}".encode("utf-8", "replace"))


@dataclass
class ReplicationGroup:
    """Home-side bookkeeping for one replicated document."""

    name: str
    target: int
    created_at: float
    state: str = STATE_HEALTHY
    repaired_at: float = 0.0
    repairs: int = 0


@dataclass
class ReplicationCounters:
    """Monotonic counters the admin endpoint and stats sampling read."""

    repairs: int = 0
    replica_drops: int = 0
    two_choices_picks: int = 0
    two_choices_alternates: int = 0
    state_changes: int = 0


class ReplicationManager:
    """Per-home replication groups, their repair loop, and replica choice.

    Constructed by the engine when ``config.replication_k > 1``; the
    ``alive`` predicate is the engine's peer-availability check (pinger
    verdict AND circuit breaker), injected to avoid a dependency cycle.
    """

    def __init__(self, config: ServerConfig, graph: LocalDocumentGraph,
                 glt: GlobalLoadTable, policy: MigrationPolicy, *,
                 alive: Optional[Callable[[Location], bool]] = None,
                 targetable: Optional[Callable[[Location], bool]] = None,
                 quarantined: Optional[
                     Callable[[str, Location], bool]] = None,
                 log: Optional[Callable[[str], None]] = None) -> None:
        self.config = config
        self.graph = graph
        self.glt = glt
        self.policy = policy
        self._alive = alive or (lambda _loc: True)
        # A holder whose copy of a document is quarantined (reported
        # corrupt) is treated exactly like a dead one: dropped by the
        # repair loop, never picked for serving, and the group repaired
        # critical-first from a verified copy.
        self._quarantined = quarantined or (lambda _name, _loc: False)
        # Placement is stricter than custody: ``alive`` (not declared
        # dead) keeps holders serving, ``targetable`` (strictly alive in
        # membership terms — not even *suspect*) gates where the repair
        # loop may place new replicas.  Defaults to ``alive`` for hosts
        # without an adaptive membership table.
        self._targetable = targetable or self._alive
        self._log = log or (lambda _msg: None)
        self.groups: Dict[str, ReplicationGroup] = {}
        self.counters = ReplicationCounters()
        self._last_round_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    @property
    def repair_interval(self) -> float:
        """Repair cadence; 0 in config means "every statistics interval"
        (the migration round's own pace)."""
        return self.config.replication_repair_interval or \
            self.config.stats_interval

    def due(self, now: float) -> bool:
        if self._last_round_at is None:
            return True
        return now - self._last_round_at >= self.repair_interval

    # ------------------------------------------------------------------
    # Group membership
    # ------------------------------------------------------------------

    def sync(self, now: float) -> None:
        """Reconcile groups with the migration table.

        Migrated documents at or above the heat threshold gain a group;
        documents revoked back home (or deleted) lose theirs.  Idempotent
        and cheap — called at the top of every repair round.
        """
        migrated = set(self.policy.migrated_names())
        for name in sorted(migrated):
            if name in self.groups:
                continue
            document = self.graph.find(name)
            if document is None or document.location == self.graph.home:
                continue
            if document.hits < self.config.replication_heat_threshold:
                continue
            group = ReplicationGroup(name=name,
                                     target=self.config.replication_k,
                                     created_at=now)
            group.state = self._classify(self._live_holders(document))
            self.groups[name] = group
        for name in [g for g in self.groups if g not in migrated]:
            del self.groups[name]
        for name in list(self.groups):
            document = self.graph.find(name)
            if document is None or document.location == self.graph.home:
                del self.groups[name]

    # ------------------------------------------------------------------
    # Repair loop
    # ------------------------------------------------------------------

    def repair_round(self, now: float) -> List[MigrationDecision]:
        """One pass of the repair daemon.

        Drops dead holders from every group (promoting a surviving
        replica when the primary died), then tops under-replicated
        groups back up to their target, critical groups first, within
        the per-round replication budget.  Returns the applied
        decisions (kinds ``replica_drop`` and ``repair``) — the caller
        journals and counts them exactly like migration-round output.
        """
        self._last_round_at = now
        self.sync(now)
        decisions: List[MigrationDecision] = []
        budget = self.config.max_replications_per_interval
        orderd = sorted(
            self.groups,
            key=lambda n: (_STATE_PRIORITY.get(self.groups[n].state, 3), n))
        for name in orderd:
            group = self.groups[name]
            document = self.graph.find(name)
            if document is None:
                continue
            # 1. Shed holders the cluster considers dead.  Purely
            # logical: home always keeps the permanent copy, so no bytes
            # need to move for the survivors to keep serving.
            for dead in sorted(document.locations(), key=str):
                if self._alive(dead) and \
                        not self._quarantined(name, dead):
                    continue
                dropped = self.policy.drop_holder(name, dead)
                if dropped is not None:
                    decisions.append(dropped)
                    self.counters.replica_drops += 1
            # 2. Top the group back up to k live holders.
            while budget > 0:
                live = self._live_holders(document)
                if len(live) >= group.target:
                    break
                target = self.glt.least_loaded(
                    exclude=list(document.locations()) +
                    self._unavailable_peers())
                if target is None:
                    break
                decisions.append(
                    self.policy.repair_replica(name, target, now))
                group.repairs += 1
                group.repaired_at = now
                self.counters.repairs += 1
                budget -= 1
            self._transition(group, self._classify(
                self._live_holders(document)))
        return decisions

    def _live_holders(self, document: DocumentRecord) -> List[Location]:
        return [loc for loc in sorted(document.locations(), key=str)
                if loc != self.graph.home and self._alive(loc)
                and not self._quarantined(document.name, loc)]

    def _unavailable_peers(self) -> List[Location]:
        """Peers excluded from repair *placement* — the stricter
        targetable predicate, so suspects never receive new replicas."""
        return [p for p in self.glt.peers() if not self._targetable(p)]

    def _classify(self, live: List[Location]) -> str:
        if len(live) >= self.config.replication_k:
            return STATE_HEALTHY
        if len(live) >= self.config.replication_sufficient:
            return STATE_DEGRADED
        return STATE_CRITICAL

    def _transition(self, group: ReplicationGroup, state: str) -> None:
        if state == group.state:
            return
        self.counters.state_changes += 1
        self._log(f"replication group {group.name}: "
                  f"{group.state} -> {state}")
        group.state = state

    # ------------------------------------------------------------------
    # Replica choice (requester-facing)
    # ------------------------------------------------------------------

    def pick(self, record: DocumentRecord, salt: str) -> Location:
        """Power-of-two-choices over the live holders of *record*.

        Two candidates are drawn from a deterministic digest of
        ``(name, salt)``; the one with the lower last-known GLT load
        wins (breaker-open and dead peers were already filtered out by
        the ``alive`` predicate).  Falls back to every holder when the
        whole group looks dead — the requester's own retry-at-home
        fallback handles the rest.
        """
        holders = sorted(record.locations(), key=str)
        live = [loc for loc in holders if self._alive(loc)
                and not self._quarantined(record.name, loc)]
        candidates = live or holders
        if len(candidates) == 1:
            return candidates[0]
        digest = _digest(record.name, salt)
        first = digest % len(candidates)
        second = (digest >> 16) % (len(candidates) - 1)
        if second >= first:
            second += 1
        chosen = first
        if self._load_of(candidates[second]) < self._load_of(candidates[first]):
            chosen = second
            self.counters.two_choices_alternates += 1
        self.counters.two_choices_picks += 1
        return candidates[chosen]

    def _load_of(self, server: Location) -> float:
        row = self.glt.get(server)
        return row.metric if row is not None else float("inf")

    # ------------------------------------------------------------------
    # Introspection (admin endpoint, stats sampling, fsck)
    # ------------------------------------------------------------------

    def live_holders(self, name: str) -> List[Location]:
        """Live holders of *name* (empty when unknown) — used by the
        engine to stamp the replica set onto redirects."""
        document = self.graph.find(name)
        if document is None:
            return []
        return self._live_holders(document)

    def groups_below_target(self) -> int:
        return sum(1 for g in self.groups.values()
                   if g.state != STATE_HEALTHY)

    def copies_histogram(self) -> Dict[int, int]:
        """live-holder-count -> number of groups."""
        histogram: Dict[int, int] = {}
        for name in self.groups:
            document = self.graph.find(name)
            live = len(self._live_holders(document)) if document else 0
            histogram[live] = histogram.get(live, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # Durability (snapshot round-trip; decisions are journaled upstream)
    # ------------------------------------------------------------------

    def snapshot(self) -> List[Dict[str, object]]:
        return [
            {"name": g.name, "target": g.target,
             "created_at": g.created_at, "repaired_at": g.repaired_at,
             "repairs": g.repairs, "state": g.state}
            for _, g in sorted(self.groups.items())
        ]

    def restore(self, groups: List[Dict[str, object]]) -> None:
        self.groups.clear()
        for entry in groups:
            name = str(entry["name"])
            self.groups[name] = ReplicationGroup(
                name=name,
                target=int(entry.get("target", self.config.replication_k)),
                created_at=float(entry.get("created_at", 0.0)),
                state=str(entry.get("state", STATE_HEALTHY)),
                repaired_at=float(entry.get("repaired_at", 0.0)),
                repairs=int(entry.get("repairs", 0)))
