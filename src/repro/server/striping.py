"""Striped per-shard locks and seqlock-style shard version stamps.

Multi-core scale-out needs two things from the engine's concurrency
story that one big lock cannot give:

- **Striped locks** (:class:`StripedLock`): the PR 2 per-document
  regeneration guard kept one ``threading.Lock`` per *name* in an
  unbounded dict.  Generalized here: ``hash(name) % n_stripes`` maps
  every document to one of a fixed set of locks, so unrelated documents
  in different stripes never contend while two writers of the *same*
  document still serialize — and the lock table stops growing with the
  corpus.
- **Shard version stamps** (:class:`ShardVersions`): a seqlock per
  stripe.  Writers bump the shard's counter to *odd* before mutating
  any state in the shard and to *even* after; a lock-free reader takes
  a stamp, reads, and re-checks the stamp — an odd stamp or a changed
  stamp means a writer was (or got) active and the reader must fall
  back to the locked slow path.  This is what lets a clean cached read
  skip the engine lock entirely while mutations (migrate / revoke /
  pull / regenerate / author update) stay exactly as serialized as
  before.

Shard assignment uses CRC-32 of the document name, *not* ``hash()``:
Python salts string hashes per process, and the multi-process front end
(:mod:`repro.server.multiproc`) needs every worker to agree on which
shard — and therefore which worker — owns a document.
"""

from __future__ import annotations

import threading
import zlib
from contextlib import contextmanager
from typing import Iterator, List

DEFAULT_STRIPES = 16


def shard_of(name: str, stripes: int) -> int:
    """The stripe *name* belongs to — stable across processes and runs."""
    if stripes <= 1:
        return 0
    return zlib.crc32(name.encode("utf-8", "surrogatepass")) % stripes


class StripedLock:
    """A fixed array of locks addressed by document name.

    Replaces the unbounded per-name lock dict: memory is O(stripes),
    and two documents contend only when they hash to the same stripe.
    ``acquire_all`` (ordered, deadlock-free) is available for the rare
    whole-table operations.
    """

    def __init__(self, stripes: int = DEFAULT_STRIPES) -> None:
        if stripes < 1:
            raise ValueError("stripes must be >= 1")
        self.stripes = stripes
        self._locks: List[threading.Lock] = [
            threading.Lock() for __ in range(stripes)]

    def lock_for(self, name: str) -> threading.Lock:
        return self._locks[shard_of(name, self.stripes)]

    @contextmanager
    def holding(self, name: str) -> Iterator[None]:
        lock = self.lock_for(name)
        lock.acquire()
        try:
            yield
        finally:
            lock.release()

    @contextmanager
    def holding_all(self) -> Iterator[None]:
        """Every stripe, acquired in index order (deadlock-free)."""
        for lock in self._locks:
            lock.acquire()
        try:
            yield
        finally:
            for lock in reversed(self._locks):
                lock.release()


class ShardVersions:
    """Per-stripe seqlock counters for lock-free validated reads.

    Writers (which the engine already serializes under its host lock)
    call :meth:`write` around any mutation that could invalidate a
    cached read of names in that shard; the counter is odd for the
    duration.  Readers call :meth:`read` before and after their reads:

    - ``None`` (odd counter): a writer is mid-mutation — fall back;
    - a changed stamp: a writer completed in between — fall back;
    - an equal even stamp: the reads happened in a quiescent window.

    Counter loads and stores are single bytecode operations on a list
    cell, atomic under the GIL; no reader-side lock exists by design.
    """

    def __init__(self, stripes: int = DEFAULT_STRIPES) -> None:
        if stripes < 1:
            raise ValueError("stripes must be >= 1")
        self.stripes = stripes
        self._versions: List[int] = [0] * stripes
        # Write-section nesting depth per shard.  Writers are serialized
        # by the engine lock, so only one thread ever touches this; it
        # exists because write sections nest (a migration-decision
        # callback bumps shards inside a bracketed decision round) and a
        # nested bump would flip the counter back to even mid-mutation.
        self._depth: List[int] = [0] * stripes

    def shard_of(self, name: str) -> int:
        return shard_of(name, self.stripes)

    def read(self, shard: int) -> "int | None":
        """Current stamp of *shard*; ``None`` while a writer is active."""
        version = self._versions[shard]
        return None if version & 1 else version

    def stamp(self, name: str) -> "int | None":
        return self.read(self.shard_of(name))

    def _enter(self, shards: "List[int]") -> None:
        for shard in shards:
            if self._depth[shard] == 0:
                self._versions[shard] += 1
            self._depth[shard] += 1

    def _exit(self, shards: "List[int]") -> None:
        for shard in shards:
            self._depth[shard] -= 1
            if self._depth[shard] == 0:
                self._versions[shard] += 1

    @contextmanager
    def write(self, *names: str) -> Iterator[None]:
        """Mark the shards of *names* write-active for the duration.

        Idempotent per shard (two names in one shard bump once) and
        re-entrant (a nested section leaves the counter odd until the
        outermost exit).  The caller must already hold the engine lock —
        this context manager publishes the mutation to lock-free
        readers, it does not provide mutual exclusion between writers.
        """
        shards = sorted({self.shard_of(name) for name in names})
        self._enter(shards)
        try:
            yield
        finally:
            self._exit(shards)

    @contextmanager
    def write_all(self) -> Iterator[None]:
        """Mark every shard write-active (whole-table mutations:
        migration decision rounds, dead-peer revocation sweeps)."""
        shards = list(range(self.stripes))
        self._enter(shards)
        try:
            yield
        finally:
            self._exit(shards)
