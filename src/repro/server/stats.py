"""Cluster-wide statistics sampling.

The paper samples CPS and BPS at 10-second intervals (Figure 8) and
averages them over fixed client populations (Figure 6).  This module holds
the shared time-series machinery both the simulator and the real harness
use: take a :class:`ClusterSample` of every server's metrics at time *now*,
accumulate them into a :class:`TimeSeries`, and derive aggregate and peak
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from repro.server.engine import DCWSEngine


@dataclass(frozen=True)
class ClusterSample:
    """Aggregate cluster performance at one instant."""

    time: float
    cps: float                  # aggregate connections per second
    bps: float                  # aggregate bytes per second
    drops_per_second: float
    per_server_cps: Dict[str, float] = field(default_factory=dict)
    reconstructions_per_second: float = 0.0
    # Cumulative serve-path cache effectiveness across the cluster at
    # sample time (hits / lookups of the rendered-response caches).
    response_cache_hit_rate: float = 0.0
    # Lifetime circuit-breaker trips (closed→open transitions) summed
    # across every engine whose host wired a breaker up.
    breaker_trips: int = 0
    # HTTP serve-path realism, summed across engines: share of requests
    # answered 304 off client validators, gzip responses sent, identity
    # bytes saved by compression, and expensive requests shed under the
    # tiered-overload rule.
    conditional_304_rate: float = 0.0
    gzip_responses: int = 0
    gzip_bytes_saved: int = 0
    shed_requests: int = 0
    # Durability posture at sample time, summed across engines whose
    # host attached a write-ahead journal: un-checkpointed journal bytes
    # and records (recovery replay cost), the highest LSN in the
    # cluster, the age of the *stalest* checkpoint, and what the last
    # recoveries replayed (records + torn tails truncated).
    wal_bytes: int = 0
    wal_records_since_checkpoint: int = 0
    wal_last_lsn: int = 0
    wal_checkpoint_age: float = 0.0
    recovery_records_replayed: int = 0
    recovery_torn_tails: int = 0
    # Replication groups with autonomous repair, summed across engines
    # whose config enables the subsystem (replication_k >= 2): group
    # census at sample time, lifetime repair-loop activity, and how the
    # two-choices replica picker behaved.  ``replication_copies`` is a
    # histogram of live-holder count -> number of groups (keys are
    # strings for JSON friendliness).
    replication_groups: int = 0
    replication_groups_below_target: int = 0
    replication_repairs: int = 0
    replication_replica_drops: int = 0
    replication_two_choices_picks: int = 0
    replication_two_choices_alternates: int = 0
    replication_copies: Dict[str, int] = field(default_factory=dict)
    # Adaptive membership, summed across engines: peers currently held
    # suspect, lifetime false-death rediscoveries (dead -> alive), the
    # rediscovery backlog (configured peers awaiting a successful
    # re-probe), and what rejoin reconciliation did with returning
    # copies (stale ones dropped, viable ones re-registered as
    # replicas).
    membership_suspects: int = 0
    membership_rediscoveries: int = 0
    membership_reprobe_backlog: int = 0
    reconciliation_drops: int = 0
    reconciliation_reregistrations: int = 0
    # Content integrity, summed across engines: scrub-loop progress
    # (rounds run and documents re-hashed so far), lifetime corruption
    # detections, quarantines currently in force, replica repairs made
    # from a verified copy after a quarantine, and inter-server pulls
    # rejected because the body failed its X-DCWS-Digest check.
    integrity_scrub_rounds: int = 0
    integrity_scrub_checked: int = 0
    integrity_corruptions_detected: int = 0
    integrity_quarantines_active: int = 0
    integrity_repairs_from_verified: int = 0
    integrity_pulls_rejected: int = 0
    # Multi-process front end: requests/second per worker process, keyed
    # by worker index ("0", "1", ...).  Empty in single-process runs.
    per_worker_rps: Dict[str, float] = field(default_factory=dict)

    @property
    def imbalance(self) -> float:
        """max/mean per-server CPS; 1.0 is perfectly balanced."""
        values = list(self.per_server_cps.values())
        if not values:
            return 1.0
        mean = sum(values) / len(values)
        if mean <= 0.0:
            return 1.0
        return max(values) / mean


def sample_cluster(now: float, engines: Iterable[DCWSEngine], *,
                   worker_rps: "Dict[str, float] | None" = None,
                   ) -> ClusterSample:
    """Read every engine's sliding-window rates at *now*.

    ``worker_rps`` (from ``WorkerSupervisor.per_worker_rps()``) attaches
    the per-worker-process gauges when the harness runs multi-process.
    """
    total_cps = 0.0
    total_bps = 0.0
    total_drops = 0.0
    total_reconstructions = 0.0
    cache_hits = 0
    cache_lookups = 0
    breaker_trips = 0
    requests = 0
    conditional_304s = 0
    gzip_responses = 0
    gzip_bytes_saved = 0
    shed_requests = 0
    wal_bytes = 0
    wal_records = 0
    wal_last_lsn = 0
    wal_checkpoint_age = 0.0
    recovery_replayed = 0
    recovery_torn = 0
    replication_groups = 0
    replication_below = 0
    replication_repairs = 0
    replication_drops = 0
    two_choices_picks = 0
    two_choices_alternates = 0
    replication_copies: Dict[str, int] = {}
    membership_suspects = 0
    membership_rediscoveries = 0
    membership_backlog = 0
    reconciliation_drops = 0
    reconciliation_reregs = 0
    scrub_rounds = 0
    scrub_checked = 0
    corruptions_detected = 0
    quarantines_active = 0
    repairs_from_verified = 0
    pulls_rejected = 0
    per_server: Dict[str, float] = {}
    for engine in engines:
        cps = engine.metrics.cps(now)
        total_cps += cps
        total_bps += engine.metrics.bps(now)
        total_drops += engine.metrics.drops.rate(now)
        total_reconstructions += engine.metrics.reconstructions.rate(now)
        cache_hits += engine.response_cache.stats.hits
        cache_lookups += engine.response_cache.stats.lookups
        if engine.breaker is not None:
            breaker_trips += engine.breaker.total_trips()
        requests += engine.stats.requests
        conditional_304s += engine.stats.conditional_304s
        gzip_responses += engine.stats.gzip_responses
        gzip_bytes_saved += engine.stats.gzip_bytes_saved
        shed_requests += (engine.stats.regenerations_shed
                          + engine.stats.pulls_shed)
        journal = engine.journal
        if journal is not None:
            wal_bytes += journal.size_bytes
            wal_records += journal.records_since_checkpoint
            wal_last_lsn = max(wal_last_lsn, journal.last_lsn)
            if journal.last_checkpoint_at is not None:
                wal_checkpoint_age = max(
                    wal_checkpoint_age, now - journal.last_checkpoint_at)
        recovery = engine.recovery
        if recovery is not None:
            recovery_replayed += recovery.records_replayed
            recovery_torn += 1 if recovery.torn_tail_truncated else 0
        manager = engine.replication
        if manager is not None:
            replication_groups += len(manager.groups)
            replication_below += manager.groups_below_target()
            replication_repairs += manager.counters.repairs
            replication_drops += manager.counters.replica_drops
            two_choices_picks += manager.counters.two_choices_picks
            two_choices_alternates += manager.counters.two_choices_alternates
            for live, count in manager.copies_histogram().items():
                key = str(live)
                replication_copies[key] = \
                    replication_copies.get(key, 0) + count
        membership = getattr(engine, "membership", None)
        if membership is not None:
            membership_suspects += len(membership.suspects())
            membership_rediscoveries += membership.counters.rediscoveries
            membership_backlog += membership.reprobe_backlog()
            reconciliation_drops += membership.counters.reconcile_drops
            reconciliation_reregs += \
                membership.counters.reconcile_reregistrations
        integrity = getattr(engine, "integrity", None)
        if integrity is not None:
            scrub_rounds += integrity.counters.scrub_rounds
            scrub_checked += integrity.counters.scrub_checked
            corruptions_detected += integrity.counters.corruptions_detected
            quarantines_active += len(integrity.active())
            repairs_from_verified += \
                integrity.counters.repairs_from_verified
            pulls_rejected += integrity.counters.pulls_rejected
        per_server[str(engine.location)] = cps
    return ClusterSample(time=now, cps=total_cps, bps=total_bps,
                         drops_per_second=total_drops,
                         per_server_cps=per_server,
                         reconstructions_per_second=total_reconstructions,
                         response_cache_hit_rate=(
                             cache_hits / cache_lookups if cache_lookups
                             else 0.0),
                         breaker_trips=breaker_trips,
                         conditional_304_rate=(
                             conditional_304s / requests if requests
                             else 0.0),
                         gzip_responses=gzip_responses,
                         gzip_bytes_saved=gzip_bytes_saved,
                         shed_requests=shed_requests,
                         wal_bytes=wal_bytes,
                         wal_records_since_checkpoint=wal_records,
                         wal_last_lsn=wal_last_lsn,
                         wal_checkpoint_age=wal_checkpoint_age,
                         recovery_records_replayed=recovery_replayed,
                         recovery_torn_tails=recovery_torn,
                         replication_groups=replication_groups,
                         replication_groups_below_target=replication_below,
                         replication_repairs=replication_repairs,
                         replication_replica_drops=replication_drops,
                         replication_two_choices_picks=two_choices_picks,
                         replication_two_choices_alternates=(
                             two_choices_alternates),
                         replication_copies=replication_copies,
                         membership_suspects=membership_suspects,
                         membership_rediscoveries=membership_rediscoveries,
                         membership_reprobe_backlog=membership_backlog,
                         reconciliation_drops=reconciliation_drops,
                         reconciliation_reregistrations=reconciliation_reregs,
                         integrity_scrub_rounds=scrub_rounds,
                         integrity_scrub_checked=scrub_checked,
                         integrity_corruptions_detected=corruptions_detected,
                         integrity_quarantines_active=quarantines_active,
                         integrity_repairs_from_verified=repairs_from_verified,
                         integrity_pulls_rejected=pulls_rejected,
                         per_worker_rps=dict(worker_rps or {}))


@dataclass
class TimeSeries:
    """An ordered sequence of cluster samples plus summary statistics."""

    samples: List[ClusterSample] = field(default_factory=list)

    def add(self, sample: ClusterSample) -> None:
        if self.samples and sample.time < self.samples[-1].time:
            raise ValueError("samples must be appended in time order")
        self.samples.append(sample)

    def times(self) -> List[float]:
        return [s.time for s in self.samples]

    def cps_series(self) -> List[float]:
        return [s.cps for s in self.samples]

    def bps_series(self) -> List[float]:
        return [s.bps for s in self.samples]

    def peak_cps(self) -> float:
        return max((s.cps for s in self.samples), default=0.0)

    def peak_bps(self) -> float:
        return max((s.bps for s in self.samples), default=0.0)

    def steady_state(self, fraction: float = 0.5) -> "TimeSeries":
        """The trailing *fraction* of samples (warm-up discarded)."""
        if not self.samples:
            return TimeSeries()
        start = int(len(self.samples) * (1.0 - fraction))
        return TimeSeries(samples=list(self.samples[start:]))

    def mean_cps(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.cps for s in self.samples) / len(self.samples)

    def mean_bps(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.bps for s in self.samples) / len(self.samples)

    def __len__(self) -> int:
        return len(self.samples)


def growth_profile(series: Sequence[float]) -> List[float]:
    """First differences of a series — used to verify Figure 8's
    accelerating (exponential-like) warm-up, where later increments exceed
    earlier ones."""
    return [b - a for a, b in zip(series, series[1:])]
