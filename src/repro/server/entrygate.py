"""The entry gate: force clients "to come in the front door" (§3.1).

The paper notes that bookmarks and search engines can deep-link internal
pages, and that sites can defeat this "either through cookies, or through
adding tokens or sequence numbers to the URLs".  This module implements
the cookie variant:

- a request for a *well-known entry point* receives a ``Set-Cookie``
  session token;
- a request for any other document must present a valid token, or it is
  redirected (302) to the site's front door;
- tokens are **stateless**: ``<expiry>.<digest>`` where the digest is a
  keyed hash of the expiry, so every cooperating server sharing the
  cluster secret validates tokens without coordination — co-ops gate
  migrated documents exactly like the home gates local ones.

Enable by setting ``ServerConfig.entry_gate_secret`` to a non-empty
shared secret.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Optional

COOKIE_NAME = "dcws_session"


class EntryGate:
    """Stateless session-token issuer/validator."""

    def __init__(self, secret: str, ttl: float = 900.0) -> None:
        if not secret:
            raise ValueError("entry gate needs a non-empty secret")
        if ttl <= 0:
            raise ValueError("entry gate ttl must be positive")
        self._key = secret.encode("utf-8")
        self.ttl = ttl

    def _digest(self, expiry: int) -> str:
        return hmac.new(self._key, str(expiry).encode("ascii"),
                        hashlib.sha256).hexdigest()[:20]

    def issue(self, now: float) -> str:
        """A token valid for the next ``ttl`` seconds."""
        expiry = int(now + self.ttl)
        return f"{expiry}.{self._digest(expiry)}"

    def validate(self, token: Optional[str], now: float) -> bool:
        """True when *token* is well-formed, authentic, and unexpired."""
        if not token:
            return False
        expiry_text, sep, digest = token.partition(".")
        if not sep:
            return False
        try:
            expiry = int(expiry_text)
        except ValueError:
            return False
        if now > expiry:
            return False
        return hmac.compare_digest(digest, self._digest(expiry))
