"""Server layer: document stores, the DCWS request engine, real threads.

:class:`~repro.server.engine.DCWSEngine` is transport-independent — it is
hosted unchanged by both the real multithreaded socket server
(:class:`~repro.server.threaded.ThreadedDCWSServer`, mirroring the paper's
prototype of section 5.1) and the discrete-event simulator
(:mod:`repro.sim`), so every policy decision measured in the benchmarks is
made by the same code that serves real sockets.
"""

from repro.server.engine import (
    DCWSEngine,
    EngineReply,
    OutboundAction,
    PullFromHome,
)
from repro.server.filestore import (
    DiskStore,
    DocumentStore,
    MemoryStore,
    guess_content_type,
)
from repro.server.threaded import ThreadedDCWSServer

__all__ = [
    "DCWSEngine",
    "DiskStore",
    "DocumentStore",
    "EngineReply",
    "MemoryStore",
    "OutboundAction",
    "PullFromHome",
    "ThreadedDCWSServer",
    "guess_content_type",
]
