"""Document stores: where a server keeps document bytes.

The home server's documents and the co-op server's lazily-pulled copies
both live in a :class:`DocumentStore`.  Two implementations:

- :class:`MemoryStore` — a dict; used by the simulator and unit tests;
- :class:`DiskStore` — files under a root directory; used by the real
  threaded server, matching the prototype (documents "directly related to
  the name of the file on the server's local disk", section 3.3).

Document names are absolute URL paths (``/dir/foo.html``).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import DocumentNotFound
from repro.faults import InjectedDiskError, apply_corruption
from repro.http.urls import split_path

if TYPE_CHECKING:
    from repro.faults import FaultPlan

_CONTENT_TYPES: Dict[str, str] = {
    ".html": "text/html",
    ".htm": "text/html",
    ".txt": "text/plain",
    ".gif": "image/gif",
    ".jpg": "image/jpeg",
    ".jpeg": "image/jpeg",
    ".png": "image/png",
    ".css": "text/css",
    ".js": "application/javascript",
    ".xml": "text/xml",
}

DEFAULT_CONTENT_TYPE = "application/octet-stream"


def guess_content_type(name: str) -> str:
    """Content type by file extension, the way the 1998 prototype did."""
    __, ext = os.path.splitext(name.lower())
    return _CONTENT_TYPES.get(ext, DEFAULT_CONTENT_TYPE)


def fsync_directory(path: str) -> None:
    """fsync a directory so a rename inside it is durable.

    A crash after ``os.replace`` but before the directory entry reaches
    disk can resurrect the old file; syncing the parent closes that
    window.  Platforms whose directories cannot be opened or synced
    (Windows) are skipped — rename durability is best-effort there.
    """
    try:
        descriptor = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(descriptor)
    except OSError:
        pass
    finally:
        os.close(descriptor)


class DocumentStore(ABC):
    """Byte storage addressed by absolute document path."""

    @abstractmethod
    def get(self, name: str) -> bytes:
        """Return the bytes of *name*; raise DocumentNotFound if absent."""

    @abstractmethod
    def put(self, name: str, data: bytes) -> None:
        """Create or overwrite *name*."""

    @abstractmethod
    def delete(self, name: str) -> None:
        """Remove *name* if present (idempotent)."""

    @abstractmethod
    def names(self) -> List[str]:
        """Every stored document path, sorted."""

    def __contains__(self, name: object) -> bool:
        # Fallback for exotic stores only; MemoryStore and DiskStore both
        # override with O(1) membership instead of a full listing walk.
        if not isinstance(name, str):
            return False
        return any(name == candidate for candidate in self.names())

    def size(self, name: str) -> int:
        return len(self.get(name))

    def items(self) -> Iterator[Tuple[str, bytes]]:
        for name in self.names():
            yield name, self.get(name)

    def sendfile_source(self, name: str) -> Optional[Tuple[str, int]]:
        """``(path, size)`` when *name*'s bytes can be served straight
        off a disk file via ``os.sendfile``; ``None`` when they cannot
        (memory-resident stores, wrapped stores, missing files).  The
        base store has no disk presence."""
        return None


class MemoryStore(DocumentStore):
    """In-memory store; the default for simulation and tests."""

    def __init__(self, initial: Dict[str, bytes] = None) -> None:
        self._data: Dict[str, bytes] = dict(initial or {})

    def get(self, name: str) -> bytes:
        try:
            return self._data[name]
        except KeyError:
            raise DocumentNotFound(name) from None

    def put(self, name: str, data: bytes) -> None:
        if not name.startswith("/"):
            raise DocumentNotFound(f"store names are absolute paths: {name!r}")
        self._data[name] = bytes(data)

    def delete(self, name: str) -> None:
        self._data.pop(name, None)

    def names(self) -> List[str]:
        return sorted(self._data)

    def __contains__(self, name: object) -> bool:
        return name in self._data

    def size(self, name: str) -> int:
        try:
            return len(self._data[name])
        except KeyError:
            raise DocumentNotFound(name) from None

    def total_bytes(self) -> int:
        return sum(len(d) for d in self._data.values())


class DiskStore(DocumentStore):
    """Files under *root*; path segments map to directories.

    Path traversal is rejected: every stored name must resolve inside
    *root*.  The ``~migrate`` marker segment is encoded as ``_migrate_`` on
    disk so co-op copies can be cached without creating odd file names.

    Writes are *crash-atomic*: :meth:`put` writes to a temporary file in
    the target directory, fsyncs it, renames it over the destination with
    ``os.replace`` and fsyncs the parent directory — a crash at any point
    leaves either the complete old bytes or the complete new bytes,
    never a truncated document.  Temporary files (suffix ``.tmp``) are
    invisible to :meth:`names`, so an interrupted put cannot masquerade
    as a document after restart.  ``fsync=False`` trades that durability
    for speed (benchmarks, throwaway stores).
    """

    _MARKER_DIR = "_migrate_"
    _TMP_SUFFIX = ".tmp"

    def __init__(self, root: str, *,
                 faults: "Optional[FaultPlan]" = None,
                 fsync: bool = True) -> None:
        self.root = os.path.abspath(root)
        # Deterministic disk-read fault injection (chaos suite); an
        # injected OSError degrades to DocumentNotFound exactly like a
        # genuinely unreadable file.
        self.faults = faults
        self.fsync = fsync
        os.makedirs(self.root, exist_ok=True)

    def _fs_path(self, name: str) -> str:
        segments = split_path(name)
        if any(segment == ".." for segment in segments):
            raise DocumentNotFound(name)
        segments = [self._MARKER_DIR if s == "~migrate" else s for s in segments]
        path = os.path.join(self.root, *segments)
        if not os.path.abspath(path).startswith(self.root + os.sep):
            raise DocumentNotFound(name)
        return path

    def get(self, name: str) -> bytes:
        path = self._fs_path(name)
        corrupt = None
        try:
            if self.faults is not None:
                corrupt = self.faults.on_disk_read(name)
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            raise DocumentNotFound(name) from None
        if corrupt is not None:
            # Injected bit-rot: the read "succeeds" with silently flipped
            # bytes — exactly what scrubbing and digest checks must catch.
            data = apply_corruption(corrupt, data)
        return data

    def put(self, name: str, data: bytes) -> None:
        path = self._fs_path(name)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        torn = None
        if self.faults is not None:
            torn = self.faults.check_disk_write(name)
        temp_path = (f"{path}.{os.getpid()}.{id(data) & 0xffff:x}"
                     f"{self._TMP_SUFFIX}")
        handle = open(temp_path, "wb")
        try:
            if torn is not None:
                # Injected power loss mid-write: a prefix reaches the
                # temp file, the rename never happens, the old document
                # (if any) stays complete.
                handle.write(data[:max(1, len(data) // 2)])
                handle.flush()
                raise InjectedDiskError(
                    f"injected torn write: {name}")
            handle.write(data)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        finally:
            handle.close()
        os.replace(temp_path, path)
        if self.fsync:
            fsync_directory(directory)

    def delete(self, name: str) -> None:
        try:
            os.remove(self._fs_path(name))
        except OSError:
            pass

    def names(self) -> List[str]:
        found: List[str] = []
        for dirpath, __, filenames in os.walk(self.root):
            for filename in filenames:
                if filename.endswith(self._TMP_SUFFIX):
                    continue  # interrupted put; never a document
                full = os.path.join(dirpath, filename)
                relative = os.path.relpath(full, self.root)
                segments = relative.split(os.sep)
                segments = ["~migrate" if s == self._MARKER_DIR else s
                            for s in segments]
                found.append("/" + "/".join(segments))
        return sorted(found)

    def size(self, name: str) -> int:
        try:
            return os.path.getsize(self._fs_path(name))
        except OSError:
            raise DocumentNotFound(name) from None

    def __contains__(self, name: object) -> bool:
        """Direct membership probe — one ``stat``, no directory walk."""
        if not isinstance(name, str):
            return False
        try:
            return os.path.isfile(self._fs_path(name))
        except DocumentNotFound:
            return False

    def sendfile_source(self, name: str) -> Optional[Tuple[str, int]]:
        """``(path, size)`` for a plain on-disk document.

        Declined under fault injection: the injected-read chaos paths
        must keep flowing through :meth:`get` so they degrade to 404
        exactly as before, not surface as transport errors mid-send.
        """
        if self.faults is not None:
            return None
        try:
            path = self._fs_path(name)
            if not os.path.isfile(path):
                return None
            return path, os.path.getsize(path)
        except (DocumentNotFound, OSError):
            return None
