"""End-to-end content integrity: digests, scrubbing, quarantine.

The cluster survives crashes (WAL), partitions (membership), and dead
replica holders (repair daemon) — but none of those catch a *silently
wrong* copy: a flipped bit on a co-op's disk or a truncated inter-server
pull is served forever, and the repair daemon would happily re-replicate
it.  This module closes that gap with one primitive and two loops:

- **Digest**: every (name, version) carries a strong content digest of
  its identity body (:func:`repro.http.content.body_digest`), computed
  wherever bytes are authored (initialize, content update, regeneration,
  pull, validation refresh) and carried in the LDG, hosted table, WAL
  records, and snapshots.  Responses stamp it as ``X-DCWS-Digest``;
  receivers (the connection pool, the engine's pull completion, the real
  client) verify the identity bytes against it.

- **Scrub daemon**: off the engine tick, like the repair daemon.  Walks
  the hosted + owned documents under a throttled docs-per-round budget
  (a resumable cursor over the sorted name space), re-reads bytes from
  the *underlying* store (bypassing the byte cache, so disk rot cannot
  hide behind a warm cache) and re-hashes them against the recorded
  digest.

- **Quarantine**: a mismatch anywhere (scrub, sampled serve check,
  rejected pull) journals a ``quarantine`` event and the copy stops
  being served.  A home document regenerates from its in-memory link
  template (pre-corruption canonical source); a hosted copy is dropped,
  the requester 302'd home, and the home notified via
  ``X-DCWS-Quarantined`` so the replication manager treats the holder
  exactly like a dead one — drop + critical-first re-replication from a
  verified copy (the home's scrub-checked store), never from the corrupt
  one.  fsck invariant 9 asserts no quarantined entry is in any serve
  table.

The manager owns scheduling, cursor, counters, and the quarantine table;
it performs no I/O and takes no locks — the engine calls it under its
own shard brackets, mirroring :class:`ReplicationManager`.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.content import (  # noqa: F401  (re-exported for callers)
    DIGEST_HEADER,
    QUARANTINE_HEADER,
    body_digest,
    digest_matches,
)

#: Quarantine-record kinds: a document this server is home for vs. a
#: hosted (migrated-in) copy.
KIND_HOME = "home"
KIND_HOSTED = "hosted"

#: How a corruption was caught, recorded for the journal and admin view.
REASON_SCRUB = "scrub"
REASON_SERVE = "serve"
REASON_PULL = "pull"
REASON_VALIDATE = "validate"


@dataclass
class QuarantineRecord:
    """One quarantined copy: known-corrupt, excluded from every serve
    table until repaired (home: regenerated; hosted: dropped)."""

    key: str
    kind: str  # KIND_HOME | KIND_HOSTED
    reason: str
    expected: str
    actual: str
    at: float
    # Hosted only: has the home been told (so it can drop this holder
    # and re-replicate)?  Reset on notification failure for retry.
    notified: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {"key": self.key, "kind": self.kind, "reason": self.reason,
                "expected": self.expected, "actual": self.actual,
                "at": self.at, "notified": self.notified}

    @classmethod
    def from_dict(cls, entry: Dict[str, object]) -> "QuarantineRecord":
        return cls(key=str(entry["key"]), kind=str(entry["kind"]),
                   reason=str(entry.get("reason", REASON_SCRUB)),
                   expected=str(entry.get("expected", "")),
                   actual=str(entry.get("actual", "")),
                   at=float(entry.get("at", 0.0)),
                   notified=bool(entry.get("notified", False)))


@dataclass
class IntegrityCounters:
    """Monotonic counters for the admin endpoint and stats sampling."""

    scrub_rounds: int = 0
    scrub_checked: int = 0
    serve_checks: int = 0
    corruptions_detected: int = 0
    quarantines: int = 0
    quarantines_cleared: int = 0
    pulls_rejected: int = 0
    holder_quarantines_reported: int = 0
    repairs_from_verified: int = 0


class IntegrityManager:
    """Scrub scheduling, sampled serve checks, and the quarantine table."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.counters = IntegrityCounters()
        self._quarantine: Dict[str, QuarantineRecord] = {}
        # Home-side: holders a co-op reported as quarantined, treated
        # like dead by the replication manager until dropped.
        self._bad_holders: Dict[str, Set[Location]] = {}
        self._last_scrub_at: Optional[float] = None
        # Resumable scrub cursor: the last name checked; the next round
        # continues strictly after it in sorted order, wrapping.
        self._cursor: str = ""
        self._serve_tick: int = 0

    # ------------------------------------------------------------------
    # Scrub scheduling and cursor
    # ------------------------------------------------------------------

    @property
    def scrub_enabled(self) -> bool:
        return self.config.scrub_interval > 0

    def scrub_due(self, now: float) -> bool:
        if not self.scrub_enabled:
            return False
        if self._last_scrub_at is None:
            return True
        return now - self._last_scrub_at >= self.config.scrub_interval

    def scrub_batch(self, names: Sequence[str], now: float) -> List[str]:
        """The next (at most) ``scrub_budget`` names to verify.

        *names* is the scrubbable population this round (sorted or not);
        the cursor walks the sorted order and wraps, so every copy is
        revisited within ``ceil(len(names) / budget)`` rounds no matter
        how the population churns between rounds.
        """
        self._last_scrub_at = now
        self.counters.scrub_rounds += 1
        ordered = sorted(names)
        if not ordered:
            return []
        budget = max(1, self.config.scrub_budget)
        start = bisect_right(ordered, self._cursor)
        batch = ordered[start:start + budget]
        if len(batch) < budget:
            # Wrap to the head, but never revisit a name within the
            # same round (budget can exceed the population).
            batch += ordered[:min(start, budget - len(batch))]
        self._cursor = batch[-1]
        self.counters.scrub_checked += len(batch)
        return batch

    @property
    def cursor(self) -> str:
        return self._cursor

    # ------------------------------------------------------------------
    # Sampled serve-path checks
    # ------------------------------------------------------------------

    def sample_serve(self) -> bool:
        """Should this cache-miss store read be digest-verified?

        1-in-``integrity_serve_sample`` responses, deterministic round
        robin (no RNG: reproducible under the fault plans); 0 disables.
        """
        rate = self.config.integrity_serve_sample
        if rate <= 0:
            return False
        self._serve_tick += 1
        if self._serve_tick >= rate:
            self._serve_tick = 0
            self.counters.serve_checks += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Quarantine table
    # ------------------------------------------------------------------

    def quarantine(self, key: str, kind: str, reason: str,
                   expected: str, actual: str, now: float) -> QuarantineRecord:
        """Record *key* as known-corrupt.  Idempotent: re-detecting an
        already-quarantined copy refreshes nothing and double-counts
        nothing."""
        existing = self._quarantine.get(key)
        if existing is not None:
            return existing
        record = QuarantineRecord(key=key, kind=kind, reason=reason,
                                  expected=expected, actual=actual, at=now)
        self._quarantine[key] = record
        self.counters.corruptions_detected += 1
        self.counters.quarantines += 1
        return record

    def clear(self, key: str) -> Optional[QuarantineRecord]:
        record = self._quarantine.pop(key, None)
        if record is not None:
            self.counters.quarantines_cleared += 1
        return record

    def is_quarantined(self, key: str) -> bool:
        return key in self._quarantine

    def get(self, key: str) -> Optional[QuarantineRecord]:
        return self._quarantine.get(key)

    def active(self) -> List[QuarantineRecord]:
        return [self._quarantine[k] for k in sorted(self._quarantine)]

    def pending_notifications(self) -> List[QuarantineRecord]:
        """Hosted quarantines whose home has not been told yet."""
        return [r for r in self.active()
                if r.kind == KIND_HOSTED and not r.notified]

    # ------------------------------------------------------------------
    # Home-side holder quarantines (reported by co-ops)
    # ------------------------------------------------------------------

    def report_bad_holder(self, name: str, holder: Location) -> bool:
        """A co-op told us its copy of *name* is corrupt.  Returns True
        the first time for this (name, holder) pair."""
        holders = self._bad_holders.setdefault(name, set())
        if holder in holders:
            return False
        holders.add(holder)
        self.counters.holder_quarantines_reported += 1
        return True

    def holder_quarantined(self, name: str, holder: Location) -> bool:
        return holder in self._bad_holders.get(name, ())

    def clear_bad_holder(self, name: str,
                         holder: Optional[Location] = None) -> None:
        if holder is None:
            self._bad_holders.pop(name, None)
            return
        holders = self._bad_holders.get(name)
        if holders is not None:
            holders.discard(holder)
            if not holders:
                del self._bad_holders[name]

    # ------------------------------------------------------------------
    # Introspection and durability
    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        counters = self.counters
        return {
            "scrub_enabled": self.scrub_enabled,
            "scrub_interval": self.config.scrub_interval,
            "scrub_budget": self.config.scrub_budget,
            "scrub_cursor": self._cursor,
            "scrub_rounds": counters.scrub_rounds,
            "scrub_checked": counters.scrub_checked,
            "serve_sample": self.config.integrity_serve_sample,
            "serve_checks": counters.serve_checks,
            "corruptions_detected": counters.corruptions_detected,
            "quarantines": counters.quarantines,
            "quarantines_active": len(self._quarantine),
            "quarantines_cleared": counters.quarantines_cleared,
            "pulls_rejected": counters.pulls_rejected,
            "holder_quarantines_reported":
                counters.holder_quarantines_reported,
            "repairs_from_verified": counters.repairs_from_verified,
            "active": [r.as_dict() for r in self.active()],
        }

    def snapshot(self) -> List[Dict[str, object]]:
        return [r.as_dict() for r in self.active()]

    def restore(self, entries: List[Dict[str, object]]) -> None:
        self._quarantine.clear()
        for entry in entries:
            record = QuarantineRecord.from_dict(entry)
            # The home's acknowledgment is not durable on our side, so a
            # restarted co-op re-notifies; the home treats repeat reports
            # of the same (document, holder) pair as a no-op.
            record.notified = False
            self._quarantine[record.key] = record
