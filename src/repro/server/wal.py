"""Write-ahead journal: crash-consistent durability for engine state.

The snapshot machinery (:mod:`repro.server.persistence`) makes restarts
cheap, but a snapshot alone bounds data loss only by the snapshot
interval: a power cut between snapshots silently rolls the server back
in time — the home forgets migrations while every hyperlink already
rewritten on disk still points at the co-ops.  This module closes that
window with the standard ARIES-style recipe:

- every state-mutating engine event (migrate, remigrate, revoke,
  replicate, pull-completed, regeneration commit, validation refresh,
  content update, GLT row) is appended to an append-only *journal*
  before the server acknowledges it;
- recovery is *snapshot + replay*: load the last checkpoint, then replay
  the journal tail past the checkpoint's LSN;
- *checkpointing* writes a fresh snapshot durably and truncates the
  journal, bounding both recovery time and journal growth.

Record framing is length-prefixed and CRC32-guarded::

    [u32 payload length][u32 CRC32(payload)][payload JSON bytes]

so a torn final record — the normal signature of a crash mid-append —
is detected, truncated, and tolerated, while a corrupt *interior*
record (bit rot, operator damage) stops replay at the last good prefix
rather than applying garbage.

Fsync policy (:attr:`WriteAheadJournal.fsync_policy`):

- ``"always"``   — every append is fsynced before returning, with
  *group commit*: concurrent appenders share one fsync instead of
  queueing one each, so the mutation path is not serialized on disk;
- ``"interval"`` — appends only buffer + flush; the host's periodic
  thread calls :meth:`maybe_sync` so data older than
  ``fsync_interval`` seconds is on disk (the default: bounded loss,
  near-zero hot-path cost);
- ``"off"``      — flush to the OS only (crash of the process loses
  nothing; power loss may lose the tail).

Every record carries the writing server's location and checkpoint
*epoch*; recovery refuses records from a different server and skips
records from a different epoch (a journal mispaired with a snapshot),
so a copied-around journal can never cross-contaminate an engine.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, TYPE_CHECKING

from repro.errors import ReproError
from repro.server.filestore import fsync_directory

if TYPE_CHECKING:
    from repro.faults import FaultPlan

#: Journal record kinds (the engine's durable mutation vocabulary).
RECORD_KINDS = (
    "migrate", "remigrate", "revoke", "replicate",
    "pull", "hosted_dropped", "validate_refreshed",
    "content_update", "regenerate", "glt_row",
    "quarantine", "quarantine_cleared",
)

FSYNC_POLICIES = ("always", "interval", "off")

_HEADER = struct.Struct(">II")   # payload length, CRC32(payload)
_MAX_RECORD = 1 << 22            # 4 MiB: no engine event comes close


class WALError(ReproError):
    """The journal could not be written, read, or applied."""


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal record."""

    lsn: int
    epoch: int
    location: str
    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)


@dataclass
class JournalScan:
    """The result of reading a journal file back.

    ``valid_bytes`` is the length of the longest decodable prefix;
    ``torn_tail`` flags that trailing bytes past it looked like a record
    cut short mid-write (crash signature) rather than a clean end.
    """

    records: List[JournalRecord] = field(default_factory=list)
    valid_bytes: int = 0
    torn_tail: bool = False

    @property
    def last_lsn(self) -> int:
        return self.records[-1].lsn if self.records else 0


def _encode(record: JournalRecord) -> bytes:
    payload = json.dumps(
        {"lsn": record.lsn, "epoch": record.epoch, "loc": record.location,
         "t": record.time, "kind": record.kind, **record.fields},
        separators=(",", ":"), sort_keys=True).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _decode_payload(payload: bytes) -> JournalRecord:
    data = json.loads(payload.decode("utf-8"))
    known = {"lsn", "epoch", "loc", "t", "kind"}
    return JournalRecord(
        lsn=int(data["lsn"]), epoch=int(data.get("epoch", 0)),
        location=str(data.get("loc", "")), time=float(data.get("t", 0.0)),
        kind=str(data["kind"]),
        fields={k: v for k, v in data.items() if k not in known})


def scan_journal(path: str) -> JournalScan:
    """Decode every complete, checksummed record in *path*.

    Never raises on damaged content: decoding stops at the first record
    that is incomplete (torn tail) or fails its CRC, and the scan
    reports how many bytes were good.  A missing file is an empty scan.
    """
    scan = JournalScan()
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError:
        return scan
    offset = 0
    while offset < len(data):
        header_end = offset + _HEADER.size
        if header_end > len(data):
            scan.torn_tail = True
            break
        length, checksum = _HEADER.unpack_from(data, offset)
        if length > _MAX_RECORD:
            scan.torn_tail = True  # garbage length: treat as torn
            break
        payload_end = header_end + length
        if payload_end > len(data):
            scan.torn_tail = True
            break
        payload = data[header_end:payload_end]
        if zlib.crc32(payload) != checksum:
            scan.torn_tail = True
            break
        try:
            scan.records.append(_decode_payload(payload))
        except (ValueError, KeyError, TypeError):
            scan.torn_tail = True
            break
        offset = payload_end
        scan.valid_bytes = offset
    return scan


class WriteAheadJournal:
    """An append-only, CRC32-framed journal of engine mutations.

    Opening an existing journal scans it, truncates any torn tail, and
    continues LSNs where the last good record left off.  LSNs are never
    reused — checkpoint truncation empties the file but the counter
    keeps climbing, which is what lets recovery replay "the tail past
    the snapshot LSN" with a plain integer comparison.

    Thread-safe: appends serialize on an internal lock; fsyncs use
    group commit (see module docstring).
    """

    def __init__(self, path: str, *, location: str,
                 fsync_policy: str = "interval",
                 fsync_interval: float = 0.05,
                 epoch: int = 0,
                 start_lsn: int = 0,
                 faults: "Optional[FaultPlan]" = None) -> None:
        if fsync_policy not in FSYNC_POLICIES:
            raise WALError(f"unknown fsync policy: {fsync_policy!r} "
                           f"(expected one of {FSYNC_POLICIES})")
        self.path = os.path.abspath(path)
        self.location = location
        self.fsync_policy = fsync_policy
        self.fsync_interval = fsync_interval
        self.faults = faults
        self._lock = threading.Lock()
        self._sync_cond = threading.Condition(threading.Lock())
        self._sync_running = False
        self._synced_lsn = 0
        self._last_sync_at = float("-inf")
        self.syncs = 0               # fsync calls actually issued
        self.appends = 0             # records appended this incarnation
        self.records_since_checkpoint = 0
        self.last_checkpoint_at: Optional[float] = None
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        scan = scan_journal(self.path)
        self.torn_tail_truncated = scan.torn_tail
        self._size = scan.valid_bytes
        self.epoch = max(epoch, max((r.epoch for r in scan.records),
                                    default=0))
        # ``start_lsn`` carries LSNs consumed before a checkpoint
        # truncated the file — without it an empty journal would restart
        # numbering at 1 and the snapshot's LSN filter would then
        # swallow every post-restart record at the *next* recovery.
        self._next_lsn = max(scan.last_lsn, start_lsn) + 1
        self._file = open(self.path, "ab")
        if scan.torn_tail or self._file.tell() != scan.valid_bytes:
            # Drop the torn tail (crash mid-append) before appending.
            self._file.truncate(scan.valid_bytes)
            self._file.seek(scan.valid_bytes)
        self.records_since_checkpoint = len(scan.records)
        self._synced_lsn = scan.last_lsn  # on disk already

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, kind: str, now: float, **fields: Any) -> int:
        """Durably record one mutation; returns its LSN.

        With ``fsync_policy="always"`` the record is on disk when this
        returns; otherwise durability is deferred to :meth:`maybe_sync`
        (interval) or the OS (off).
        """
        with self._lock:
            if self._file.closed:
                raise WALError(f"journal is closed: {self.path}")
            lsn = self._next_lsn
            record = JournalRecord(lsn=lsn, epoch=self.epoch,
                                   location=self.location, time=now,
                                   kind=kind, fields=dict(fields))
            frame = _encode(record)
            torn = None
            if self.faults is not None:
                torn = self.faults.check_disk_write(self.path)
            if torn is not None:
                # Injected power loss mid-append: a prefix of the frame
                # reaches the file — exactly the torn tail recovery
                # must truncate.
                from repro.faults import InjectedDiskError

                self._file.write(frame[:max(1, len(frame) // 2)])
                self._file.flush()
                raise InjectedDiskError(
                    f"injected torn journal write: {self.path}")
            self._next_lsn += 1
            self._file.write(frame)
            self._file.flush()
            self._size += len(frame)
            self.appends += 1
            self.records_since_checkpoint += 1
        if self.fsync_policy == "always":
            self._sync_to(lsn)
        return lsn

    def sync(self) -> None:
        """Force everything appended so far onto disk."""
        with self._lock:
            target = self._next_lsn - 1
        if target > 0:
            self._sync_to(target)

    def maybe_sync(self, now: float) -> bool:
        """Interval policy: fsync if the last sync is older than
        ``fsync_interval``.  Cheap to call every host tick."""
        if self.fsync_policy != "interval":
            return False
        with self._lock:
            target = self._next_lsn - 1
            due = now - self._last_sync_at >= self.fsync_interval
        if not due or target <= self._synced_lsn:
            return False
        self._sync_to(target)
        self._last_sync_at = now
        return True

    def _sync_to(self, lsn: int) -> None:
        """Group commit: whoever arrives while a sync is running waits
        for it; one follower then syncs for the whole batch."""
        with self._sync_cond:
            while True:
                if self._synced_lsn >= lsn:
                    return
                if not self._sync_running:
                    self._sync_running = True
                    break
                self._sync_cond.wait(timeout=1.0)
        try:
            with self._lock:
                target = self._next_lsn - 1
                if not self._file.closed:
                    os.fsync(self._file.fileno())
                    self.syncs += 1
        finally:
            with self._sync_cond:
                self._sync_running = False
                self._synced_lsn = max(self._synced_lsn, target)
                self._sync_cond.notify_all()

    # ------------------------------------------------------------------
    # Checkpoint truncation
    # ------------------------------------------------------------------

    def start_epoch(self, epoch: int, now: float) -> None:
        """Checkpoint boundary: everything so far is safely in the
        snapshot — empty the journal and stamp subsequent records with
        the snapshot's *epoch*.  LSNs continue monotonically."""
        with self._lock:
            self._file.truncate(0)
            self._file.seek(0)
            self._file.flush()
            os.fsync(self._file.fileno())
            self.syncs += 1
            self._size = 0
            self.epoch = epoch
            self.records_since_checkpoint = 0
            self.last_checkpoint_at = now
        with self._sync_cond:
            self._synced_lsn = self._next_lsn - 1

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                try:
                    os.fsync(self._file.fileno())
                except OSError:
                    pass
                self._file.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    @property
    def size_bytes(self) -> int:
        return self._size

    def describe(self) -> Dict[str, Any]:
        """Counters for the durability admin endpoint and sampling."""
        return {
            "path": self.path,
            "fsync_policy": self.fsync_policy,
            "epoch": self.epoch,
            "last_lsn": self.last_lsn,
            "size_bytes": self.size_bytes,
            "records_since_checkpoint": self.records_since_checkpoint,
            "appends": self.appends,
            "syncs": self.syncs,
            "torn_tail_truncated": self.torn_tail_truncated,
        }

    def __enter__(self) -> "WriteAheadJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"WriteAheadJournal({self.path!r}, epoch={self.epoch}, "
                f"lsn={self.last_lsn}, {self.fsync_policy})")


def iter_tail(path: str, after_lsn: int) -> Iterator[JournalRecord]:
    """The journal records with ``lsn > after_lsn`` (replay order)."""
    for record in scan_journal(path).records:
        if record.lsn > after_lsn:
            yield record
