"""Blocking directive execution shared by both socket front ends.

The engine answers a request either with a finished :class:`EngineReply`
or with a *directive* naming blocking work — a lazy-migration pull over
the network (:class:`PullFromHome`) or a dirty-document splice
(:class:`RegenerateAndServe`).  How that work is scheduled differs per
front end (a worker thread in :mod:`repro.server.threaded`, an executor
thread in :mod:`repro.server.aio`), but the work itself — lock scoping,
the per-document regeneration guard, the double-checked commit — is
identical.  :class:`BlockingDirectiveMixin` implements it once.

Host requirements: ``engine`` (a :class:`DCWSEngine`), ``_lock`` (the
engine guard), ``pool`` (a :class:`repro.client.pool.ConnectionPool`) and
``request_timeout``; call :meth:`_init_dispatch` before use.  Every
method here may block (network or CPU) and must therefore run on a
thread that is allowed to — never on the event loop.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.client.breaker import BreakerOpenError
from repro.client.realclient import http_fetch
from repro.errors import HTTPError
from repro.http.messages import Response
from repro.server.engine import PullFromHome, RegenerateAndServe


class BlockingDirectiveMixin:
    """Executes :class:`PullFromHome` / :class:`RegenerateAndServe`."""

    def _init_dispatch(self) -> None:
        # Lock-scope reduction: dirty-document regeneration runs off the
        # engine lock, guarded per document so two threads never splice
        # the same name concurrently.
        self.engine.defer_regeneration = True
        self._regen_locks: dict = {}
        self._regen_locks_mutex = threading.Lock()

    def _regen_lock(self, name: str) -> threading.Lock:
        with self._regen_locks_mutex:
            lock = self._regen_locks.get(name)
            if lock is None:
                lock = self._regen_locks[name] = threading.Lock()
            return lock

    def _execute_regeneration(self, directive: RegenerateAndServe) -> Response:
        """Dirty-document regeneration with the splice off the engine lock.

        The per-document guard serializes threads racing for the same
        name; the double-checked dirty flag (``regeneration_plan`` returns
        ``None`` once a peer has committed) makes the losers skip straight
        to serving.  The engine lock is held only to capture the plan and
        to commit the result — the string splice itself runs unlocked, so
        the lock again covers just graph/table mutations.
        """
        with self._regen_lock(directive.name):
            with self._lock:
                plan = self.engine.regeneration_plan(directive.name)
            if plan is not None:
                output, next_template = plan.apply()
                with self._lock:
                    self.engine.commit_regeneration(
                        plan, output, next_template, time.monotonic())
        with self._lock:
            reply = self.engine.serve_after_regeneration(
                directive, time.monotonic())
        return reply.response

    def _execute_pull(self, pull: PullFromHome) -> Response:
        """Lazy migration: blocking fetch from home, outside the lock.

        ``home_down`` distinguishes a breaker fast-fail (the home's
        circuit is open — degrade to 503 + Retry-After) from a fresh
        transport failure (degrade to 302 back to home)."""
        upstream = None
        home_down = False
        try:
            upstream = http_fetch(pull.home, pull.request,
                                  timeout=self.request_timeout,
                                  pool=self.pool)
        except BreakerOpenError:
            home_down = True
        except (OSError, HTTPError):
            pass
        with self._lock:
            reply = self.engine.complete_pull(pull, upstream,
                                              time.monotonic(),
                                              home_down=home_down)
        return reply.response


def close_quietly(connection: socket.socket) -> None:
    """Shut down and close a socket, swallowing transport errors."""
    try:
        connection.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        connection.close()
    except OSError:
        pass
