"""Blocking directive execution shared by both socket front ends.

The engine answers a request either with a finished :class:`EngineReply`
or with a *directive* naming blocking work — a lazy-migration pull over
the network (:class:`PullFromHome`) or a dirty-document splice
(:class:`RegenerateAndServe`).  How that work is scheduled differs per
front end (a worker thread in :mod:`repro.server.threaded`, an executor
thread in :mod:`repro.server.aio`), but the work itself — lock scoping,
the per-document regeneration guard, the double-checked commit — is
identical.  :class:`BlockingDirectiveMixin` implements it once.

Host requirements: ``engine`` (a :class:`DCWSEngine`), ``_lock`` (the
engine guard), ``pool`` (a :class:`repro.client.pool.ConnectionPool`) and
``request_timeout``; call :meth:`_init_dispatch` before use.  Every
method here may block (network or CPU) and must therefore run on a
thread that is allowed to — never on the event loop.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Optional, TYPE_CHECKING

from repro.client.breaker import BreakerOpenError
from repro.client.realclient import http_fetch
from repro.errors import DigestMismatch, HTTPError
from repro.http.messages import Response
from repro.server.engine import PullFromHome, RegenerateAndServe
from repro.server.striping import StripedLock

if TYPE_CHECKING:
    from repro.faults import FaultPlan
    from repro.server.wal import WriteAheadJournal


class BlockingDirectiveMixin:
    """Executes :class:`PullFromHome` / :class:`RegenerateAndServe`."""

    def _init_dispatch(self) -> None:
        # Lock-scope reduction: dirty-document regeneration runs off the
        # engine lock, guarded so two threads never splice the same name
        # concurrently.  Striped rather than per-name: the old per-name
        # dict grew without bound with the corpus; a fixed array of
        # hash-addressed locks (config.lock_stripes) keeps memory O(1)
        # while two *different* documents contend only on a stripe
        # collision — and the same CRC-32 shard map drives cross-worker
        # document ownership in the multi-process front end.
        self.engine.defer_regeneration = True
        self._regen_locks = StripedLock(self.engine.config.lock_stripes)

    def _regen_lock(self, name: str) -> threading.Lock:
        return self._regen_locks.lock_for(name)

    def _execute_regeneration(self, directive: RegenerateAndServe) -> Response:
        """Dirty-document regeneration with the splice off the engine lock.

        The per-document guard serializes threads racing for the same
        name; the double-checked dirty flag (``regeneration_plan`` returns
        ``None`` once a peer has committed) makes the losers skip straight
        to serving.  The engine lock is held only to capture the plan and
        to commit the result — the string splice itself runs unlocked, so
        the lock again covers just graph/table mutations.
        """
        with self._regen_lock(directive.name):
            with self._lock:
                plan = self.engine.regeneration_plan(directive.name)
            if plan is not None:
                output, next_template = plan.apply()
                with self._lock:
                    self.engine.commit_regeneration(
                        plan, output, next_template, time.monotonic())
        with self._lock:
            reply = self.engine.serve_after_regeneration(
                directive, time.monotonic())
        return reply.response

    def _execute_pull(self, pull: PullFromHome) -> Response:
        """Lazy migration: blocking fetch from home, outside the lock.

        ``home_down`` distinguishes a breaker fast-fail (the home's
        circuit is open — degrade to 503 + Retry-After) from a fresh
        transport failure (degrade to 302 back to home)."""
        upstream = None
        home_down = False
        corrupt = False
        started = time.monotonic()
        try:
            upstream = http_fetch(pull.home, pull.request,
                                  timeout=self.request_timeout,
                                  pool=self.pool)
        except BreakerOpenError:
            home_down = True
        except DigestMismatch:
            # The pull body failed its X-DCWS-Digest (and the pool's own
            # one-shot retry failed too): the home answered, so this is
            # not silence — the engine counts a rejected pull and 302s
            # the client to the home instead of feeding death detection.
            corrupt = True
        except (OSError, HTTPError):
            pass
        finished = time.monotonic()
        rtt = finished - started if upstream is not None else None
        with self._lock:
            reply = self.engine.complete_pull(pull, upstream, finished,
                                              home_down=home_down, rtt=rtt,
                                              corrupt=corrupt)
        return reply.response


class DurabilityMixin:
    """Journal + snapshot lifecycle shared by both socket front ends.

    Host requirements: ``engine``, ``_lock``, ``snapshot_path`` and (set
    by :meth:`_init_durability`) ``journal_path``.  The pattern is the
    same in both hosts:

    - :meth:`_recover_state` at start, under the engine lock — snapshot +
      journal replay when journaling is on, the legacy snapshot-only
      restore when it is off;
    - :meth:`_checkpoint_state` on the snapshot interval and at stop,
      under the engine lock — durable snapshot then journal truncation;
    - :meth:`_durability_tick` every periodic tick, *without* the lock —
      drives the ``interval`` fsync policy (the journal has its own
      locking);
    - :meth:`_close_durability` at stop.

    All methods may block on disk and must run where blocking is allowed
    (the threaded server's threads, the event-loop host's executor).
    """

    journal: "Optional[WriteAheadJournal]" = None

    def _init_durability(self, journal_path: Optional[str],
                         faults: "Optional[FaultPlan]" = None) -> None:
        self.journal_path = journal_path
        self.journal = None
        self._journal_faults = faults

    def _recover_state(self, now: float) -> None:
        """Initialize + restore the engine; open the journal for append.

        Caller holds the engine lock.  Recovery scans the journal
        read-only *before* opening it for append, so a torn tail is
        observed (and reported in the recovery stats) rather than being
        silently truncated by the open.
        """
        from repro.server import persistence

        if self.journal_path:
            from repro.server.wal import WriteAheadJournal

            stats = persistence.recover(self.engine, self.snapshot_path,
                                        self.journal_path, now)
            config = self.engine.config
            self.journal = WriteAheadJournal(
                self.journal_path,
                location=str(self.engine.location),
                fsync_policy=config.wal_fsync,
                fsync_interval=config.wal_fsync_interval,
                epoch=stats.resume_epoch,
                start_lsn=stats.resume_lsn,
                faults=self._journal_faults)
            self.engine.attach_journal(self.journal)
            return
        self.engine.initialize(now)
        if self.snapshot_path:
            persistence.restore_from_file(self.engine, self.snapshot_path,
                                          now)

    def _checkpoint_state(self, now: float) -> None:
        """Durable snapshot (+ journal truncation).  Caller holds the
        engine lock; without a snapshot path there is nothing to do —
        the journal alone keeps growing until one is configured."""
        from repro.server import persistence

        if not self.snapshot_path:
            return
        if self.journal is not None:
            persistence.checkpoint(self.engine, self.snapshot_path, now)
        else:
            persistence.save_snapshot(self.engine, self.snapshot_path, now)

    def _durability_tick(self, now: float) -> None:
        """Per-tick journal upkeep (interval fsync).  Lock-free."""
        if self.journal is not None:
            self.journal.maybe_sync(now)

    def _close_durability(self) -> None:
        if self.journal is not None:
            self.journal.close()


def close_quietly(connection: socket.socket) -> None:
    """Shut down and close a socket, swallowing transport errors."""
    try:
        connection.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        connection.close()
    except OSError:
        pass
