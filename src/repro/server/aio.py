"""Event-loop front end: nonblocking keep-alive serving on ``selectors``.

:class:`AsyncDCWSServer` hosts the same :class:`DCWSEngine` as the
threaded front end (:mod:`repro.server.threaded`), but multiplexes every
client connection on a single event-loop thread instead of parking one
thread per connection.  The thread-per-connection model caps concurrency
at the worker count long before the engine saturates — an idle keep-alive
client pins a whole worker; here an idle connection costs one selector
registration and a few hundred bytes of state, so one loop absorbs
thousands of concurrent keep-alive clients.

Structure:

- **One loop thread** owns the listener, a ``selectors.DefaultSelector``,
  and every connection's read/write state machine (:class:`_Connection`).
  Requests are parsed incrementally by the sans-I/O
  :class:`repro.http.wire.RequestParser` — the identical protocol code
  the threaded front end uses.
- **In-memory dispatches stay on the loop.**  ``engine.handle_request``
  under the engine lock is a dictionary-and-string affair; the loop never
  holds the lock longer than one such dispatch.
- **Blocking work leaves the loop.**  Directives — lazy-migration pulls,
  dirty-document splices — and periodic transfers (validations, pings)
  run on a small :class:`~concurrent.futures.ThreadPoolExecutor` via the
  shared :class:`repro.server.dispatch.BlockingDirectiveMixin`.
  Completions re-enter the loop through a *self-pipe*: the executor
  thread appends a callback to a queue and writes one byte to a
  ``socketpair`` the selector watches, waking the loop.
- **Admission control lives at the accept edge** (where the paper's
  section 5.2 overload rule belongs): beyond ``config.max_connections``
  open connections, new arrivals are shed immediately with
  ``503 + Retry-After`` and never enter the loop.  Per-connection
  *read deadlines* kill slowloris-style dribbled requests — the deadline
  is armed when a request's first byte arrives and is only re-armed on
  request completion, so dribbling buys no extension.  *Write-buffer
  high-water marks* (``config.write_buffer_limit``) pause reading from a
  connection whose responses are not draining (backpressure), resuming
  below half the limit.

Responses on one connection are strictly ordered: while a blocking
directive is in flight for a connection (``busy``), further pipelined
requests stay buffered in its parser and are dispatched only after the
completion posts back — one in-flight blocking job per connection.
"""

from __future__ import annotations

import collections
import selectors
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Deque, Dict, Optional, TYPE_CHECKING

from repro.client.breaker import build_breaker
from repro.client.pool import ConnectionPool
from repro.client.realclient import http_fetch
from repro.errors import HTTPError, RecoverableProtocolError, ReproError
from repro.http.messages import (
    Request,
    Response,
    error_response,
    request_wants_keep_alive,
    response_allows_keep_alive,
)
from repro.http.status import StatusCode
from repro.http.wire import RequestParser
from repro.server.dispatch import (
    BlockingDirectiveMixin,
    DurabilityMixin,
    close_quietly,
)
from repro.server.engine import (
    DCWSEngine,
    EngineReply,
    OutboundAction,
    RegenerateAndServe,
)

if TYPE_CHECKING:
    from repro.faults import FaultPlan

_RECV_CHUNK = 65536
_MAX_REQUEST = 1024 * 1024


class _OutQueue:
    """Outbound byte segments of one connection — zero-copy.

    A deque of memoryview segments instead of one concatenated
    ``bytearray``: queuing a response appends references to its (shared,
    possibly cache-resident) head and body objects, never copying body
    bytes into a per-connection buffer, and partial writes advance by
    memoryview slicing.  ``len()`` is the total unsent byte count, so
    the backpressure arithmetic against ``write_buffer_limit`` is
    unchanged from the bytearray days.
    """

    __slots__ = ("_segments", "_size")

    def __init__(self) -> None:
        self._segments: Deque[memoryview] = collections.deque()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def append(self, data: bytes) -> None:
        if not data:
            return
        self._segments.append(memoryview(data))
        self._size += len(data)

    def buffers(self, limit: int = 16) -> "list[memoryview]":
        """Up to *limit* leading segments for one gather write (well
        under any platform's IOV_MAX)."""
        return [self._segments[index]
                for index in range(min(limit, len(self._segments)))]

    def advance(self, count: int) -> None:
        """Consume *count* bytes off the front after a (partial) write."""
        self._size -= count
        while count and self._segments:
            head = self._segments[0]
            if count >= len(head):
                count -= len(head)
                self._segments.popleft()
            else:
                self._segments[0] = head[count:]
                count = 0


class _Connection:
    """Per-connection state machine: parser in, segment queue out.

    ``deadline`` is the read deadman: armed at accept, re-armed when a
    request's *first* byte arrives (not on every byte — that is what
    defeats slowloris) and when a response is queued (idle keep-alive
    clock).  ``busy`` marks a blocking dispatch in the executor; the
    connection is never reaped nor further dispatched while set.
    ``events`` mirrors the selector registration so interest updates are
    cheap and idempotent.
    """

    __slots__ = ("sock", "parser", "out", "served", "deadline", "busy",
                 "close_after_flush", "reads_paused", "events")

    def __init__(self, sock: socket.socket, deadline: float) -> None:
        self.sock = sock
        self.parser = RequestParser(max_request=_MAX_REQUEST)
        self.out = _OutQueue()
        self.served = 0
        self.deadline = deadline
        self.busy = False
        self.close_after_flush = False
        self.reads_paused = False
        self.events = 0


class AsyncDCWSServer(BlockingDirectiveMixin, DurabilityMixin):
    """Host a :class:`DCWSEngine` behind a single-threaded event loop."""

    def __init__(self, engine: DCWSEngine, *,
                 bind_host: str = "",
                 request_timeout: float = 10.0,
                 tick_period: float = 0.25,
                 snapshot_path: Optional[str] = None,
                 snapshot_interval: float = 30.0,
                 journal_path: Optional[str] = None,
                 faults: Optional["FaultPlan"] = None) -> None:
        self.engine = engine
        self.bind_host = bind_host or engine.location.host
        self.port = engine.location.port
        self.request_timeout = request_timeout
        self.tick_period = tick_period
        self.snapshot_path = snapshot_path
        self.snapshot_interval = snapshot_interval
        self._last_snapshot = 0.0
        self._init_durability(journal_path, faults)
        # Engine guard, shared between the loop and executor threads.
        self._lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._selector: Optional[selectors.BaseSelector] = None
        self._thread: Optional[threading.Thread] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._stop = threading.Event()
        self._started = threading.Event()
        self.pool = ConnectionPool(timeout=request_timeout,
                                   breaker=build_breaker(engine.config),
                                   faults=faults)
        engine.breaker = self.pool.breaker
        self.connections_accepted = 0
        self.connections_shed = 0
        self._drops_recorded = 0
        self._drops_drained = 0
        self._connections: Dict[socket.socket, _Connection] = {}
        # Self-pipe: executor threads append completions and write one
        # byte to wake the selector; the loop drains both.
        self._completions: Deque[Callable[[], None]] = collections.deque()
        self._wakeup_recv: Optional[socket.socket] = None
        self._wakeup_send: Optional[socket.socket] = None
        self._next_tick = 0.0
        self._running = False
        self._init_dispatch()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, listener: Optional[socket.socket] = None, *,
              accept_connections: bool = True) -> None:
        """Bind, listen, and launch the loop thread and executor.

        *listener* (already bound and listening) lets the multi-process
        supervisor hand each worker its own ``SO_REUSEPORT`` listener;
        ``accept_connections=False`` starts the loop with no accept path
        at all — fd-handoff mode, where accepted client sockets arrive
        through :meth:`adopt_connection` instead.
        """
        if self._running:
            raise ReproError("server already started")
        with self._lock:
            now = time.monotonic()
            self._recover_state(now)
            self._last_snapshot = now
        if listener is None and accept_connections:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.bind_host, self.port))
            listener.listen(self.engine.config.listen_backlog)
        if listener is not None:
            listener.setblocking(False)
            try:
                self.port = listener.getsockname()[1]
            except (OSError, IndexError):
                pass
        self._listener = listener
        self._executor = ThreadPoolExecutor(
            max_workers=self.engine.config.worker_threads,
            thread_name_prefix=f"dcws-exec-{self.port}")
        self._wakeup_recv, self._wakeup_send = socket.socketpair()
        self._wakeup_recv.setblocking(False)
        self._wakeup_send.setblocking(False)
        self._selector = selectors.DefaultSelector()
        if listener is not None and accept_connections:
            self._selector.register(listener, selectors.EVENT_READ,
                                    self._on_accept)
        self._selector.register(self._wakeup_recv, selectors.EVENT_READ,
                                self._on_wakeup)
        self._stop.clear()
        self._next_tick = time.monotonic() + self.tick_period
        self._running = True
        self._thread = threading.Thread(target=self._run_loop,
                                        name=f"dcws-aio-{self.port}",
                                        daemon=True)
        self._thread.start()
        self._started.set()

    def stop(self) -> None:
        """Stop the loop, drain the executor, close everything."""
        if not self._running:
            return
        with self._lock:
            self._checkpoint_state(time.monotonic())
        self._stop.set()
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self.pool.close()
        self._close_durability()
        self._listener = None
        self._thread = None
        self._executor = None
        self._running = False
        self._started.clear()

    def wait_ready(self, timeout: float = 5.0) -> bool:
        """Block until the loop thread is running."""
        return self._started.wait(timeout)

    def __enter__(self) -> "AsyncDCWSServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------

    def _run_loop(self) -> None:
        assert self._selector is not None
        try:
            while not self._stop.is_set():
                timeout = min(max(self._next_tick - time.monotonic(), 0.0),
                              0.1)
                for key, mask in self._selector.select(timeout):
                    data = key.data
                    try:
                        if isinstance(data, _Connection):
                            self._on_connection_event(data, mask)
                        else:
                            data()  # accept burst or wakeup drain
                    except Exception:
                        # A broken connection must never kill the loop.
                        if isinstance(data, _Connection):
                            self._close(data)
                now = time.monotonic()
                if now >= self._next_tick:
                    self._tick(now)
                    self._next_tick = now + self.tick_period
                self._reap(now)
        finally:
            self._shutdown_loop()

    def _shutdown_loop(self) -> None:
        for conn in list(self._connections.values()):
            self._close(conn)
        for sock in (self._listener, self._wakeup_recv, self._wakeup_send):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        self._wakeup_recv = None
        self._wakeup_send = None
        if self._selector is not None:
            self._selector.close()
            self._selector = None

    # -- self-pipe ------------------------------------------------------

    def _post(self, callback: Callable[[], None]) -> None:
        """Hand a callback from an executor thread to the loop."""
        self._completions.append(callback)
        self._wake()

    def _wake(self) -> None:
        send = self._wakeup_send
        if send is None:
            return
        try:
            send.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # pipe full or closing: the loop is waking anyway

    def _on_wakeup(self) -> None:
        assert self._wakeup_recv is not None
        try:
            while self._wakeup_recv.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass
        while self._completions:
            self._completions.popleft()()

    # -- accept edge: admission control ---------------------------------

    def _on_accept(self) -> None:
        assert self._listener is not None
        while True:
            try:
                sock, __ = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            self._admit(sock)

    def adopt_connection(self, sock: socket.socket) -> None:
        """Adopt an already-accepted client connection (fd-handoff mode).

        Thread-safe: the multi-process worker's channel thread calls this
        with sockets received over ``recv_fds``; the socket enters the
        loop through the self-pipe and then follows the exact same
        admission rules as the accept path.
        """
        self._post(lambda: self._admit(sock))

    def _admit(self, sock: socket.socket) -> None:
        """Admission control for one new client socket (loop thread)."""
        self.connections_accepted += 1
        sock.setblocking(False)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        if len(self._connections) >= self.engine.config.max_connections:
            self._shed(sock)
            return
        conn = _Connection(sock, time.monotonic() + self.request_timeout)
        self._connections[sock] = conn
        self._selector.register(sock, selectors.EVENT_READ, conn)
        conn.events = selectors.EVENT_READ

    def _shed(self, sock: socket.socket) -> None:
        """Over the connection cap: graceful 503 drop at the edge.

        The 503 goes through the normal buffered write path — a real
        :class:`_Connection` with ``close_after_flush`` set and reads
        left paused — so a partial nonblocking send completes via
        selector write events instead of truncating the response on the
        wire (a bare ``send()`` here used to do exactly that under
        pressure).  The accept path still never blocks: queuing is
        nonblocking, and a client that refuses to drain its 503 is
        reaped at the usual deadline.  The drop is tallied lock-free and
        drained into the engine metrics by the next tick, so drop
        pressure still feeds the advertised load metric.
        """
        self._drops_recorded += 1
        self.connections_shed += 1
        response = error_response(StatusCode.SERVICE_UNAVAILABLE,
                                  "server overloaded")
        response.headers.set("Connection", "close")
        response.headers.set("Retry-After", "1")
        conn = _Connection(sock, time.monotonic() + self.request_timeout)
        conn.close_after_flush = True
        conn.reads_paused = True
        self._connections[sock] = conn
        conn.out.append(response.serialize_head())
        conn.out.append(response.body)
        self._flush(conn)

    # -- per-connection reads -------------------------------------------

    def _on_connection_event(self, conn: _Connection, mask: int) -> None:
        if mask & selectors.EVENT_WRITE:
            self._flush(conn)
        if conn.sock in self._connections and mask & selectors.EVENT_READ:
            self._read(conn)

    def _read(self, conn: _Connection) -> None:
        try:
            chunk = conn.sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close(conn)
            return
        now = time.monotonic()
        if chunk:
            arming = not conn.parser.buffered
            try:
                conn.parser.feed(chunk)
            except HTTPError:
                self._fail(conn, StatusCode.BAD_REQUEST)
                return
            if arming:
                # First byte of a new request: the whole request must
                # now arrive within request_timeout.  Deliberately not
                # re-armed per byte — a slowloris dribble gains nothing.
                conn.deadline = now + self.request_timeout
        else:
            conn.parser.feed_eof()
            self._update_interest(conn)  # stop watching a half-closed read side
        if not conn.busy:
            self._pump(conn, now)

    def _pump(self, conn: _Connection, now: float) -> None:
        """Dispatch every complete buffered request, in order.

        Stops when a blocking dispatch enters the executor (``busy``) —
        keeping responses ordered — or when the connection is closing.
        """
        while not conn.busy and not conn.close_after_flush \
                and conn.sock in self._connections:
            try:
                request = conn.parser.next_request()
            except RecoverableProtocolError as exc:
                # The parser consumed exactly the offending request (its
                # invalid Content-Length frames no body): answer 400 on
                # the still-correctly-delimited stream and keep pumping —
                # the next pipelined request parses normally.
                response = error_response(StatusCode.BAD_REQUEST, str(exc))
                response.headers.set("Connection", "keep-alive")
                placeholder = Request(method="GET", target="/",
                                      version="HTTP/1.1")
                self._enqueue_response(conn, placeholder, response)
                continue
            except HTTPError:
                self._fail(conn, StatusCode.BAD_REQUEST)
                return
            if request is None:
                break
            self._handle_request(conn, request, now)
        if conn.sock not in self._connections or conn.busy:
            return
        if conn.parser.eof and not conn.close_after_flush:
            # Peer finished sending cleanly; flush what we owe and close.
            conn.close_after_flush = True
            self._flush(conn)
            return
        if len(conn.out) >= self.engine.config.write_buffer_limit \
                and not conn.reads_paused:
            # Backpressure: responses are not draining — stop reading
            # until _flush() brings the buffer under the low-water mark.
            conn.reads_paused = True
            self._update_interest(conn)

    # -- dispatch -------------------------------------------------------

    def _handle_request(self, conn: _Connection, request: Request,
                        now: float) -> None:
        config = self.engine.config
        # Lock-free fast path: a clean cached read resolves (rendering
        # included) without the engine lock; only the seqlock re-check
        # and the counters run under it.
        hit = self.engine.fast_lookup(request, now)
        # This front end's pressure signal is open-connection count
        # against the admission cap: at or above shed_pressure the engine
        # sheds its expensive tier (regenerations, first-use pulls) while
        # cache hits and 304s keep flowing.
        pressure = len(self._connections) / config.max_connections
        with self._lock:
            self.engine.overloaded = (config.tiered_shedding
                                      and pressure >= config.shed_pressure)
            if hit is not None:
                reply = self.engine.fast_commit(hit, request, now)
                if reply is not None:
                    self._enqueue_response(conn, request, reply.response)
                    return
            result = self.engine.handle_request(request, now)
        if isinstance(result, EngineReply):
            self._enqueue_response(conn, request, result.response)
            return
        # Blocking directive: hand off to the executor; the completion
        # re-enters the loop via the self-pipe.  One in-flight job per
        # connection keeps pipelined responses ordered.
        conn.busy = True

        def run(directive=result):
            try:
                response = self._directive_work(directive)
            except Exception:
                response = error_response(StatusCode.INTERNAL_SERVER_ERROR,
                                          "directive execution failed")
                response.headers.set("Connection", "close")
            self._post(lambda: self._complete_dispatch(conn, request,
                                                       response))

        self._executor.submit(run)

    def _directive_work(self, directive: object) -> Response:
        """Execute one blocking directive (executor thread).

        Seam for the multi-process worker host, which overrides this to
        forward directives touching shards owned by another worker over
        the supervisor channel instead of executing them locally.
        """
        if isinstance(directive, RegenerateAndServe):
            return self._execute_regeneration(directive)
        return self._execute_pull(directive)

    def _complete_dispatch(self, conn: _Connection, request: Request,
                           response: Response) -> None:
        """Loop-side completion of an executor dispatch."""
        conn.busy = False
        if conn.sock not in self._connections:
            return  # the connection died while the work ran
        self._enqueue_response(conn, request, response)
        if conn.sock in self._connections:
            self._pump(conn, time.monotonic())

    def _enqueue_response(self, conn: _Connection, request: Request,
                          response: Response) -> None:
        config = self.engine.config
        conn.served += 1
        keep = (config.keep_alive
                and conn.served < config.keep_alive_max_requests
                and request_wants_keep_alive(request)
                and response_allows_keep_alive(response))
        if not keep:
            response.headers.set("Connection", "close")
            conn.close_after_flush = True
        self._queue_response(conn, response)
        # Idle keep-alive clock; doubles as the write deadman — a client
        # that never drains its responses is reaped at the same deadline.
        conn.deadline = time.monotonic() + config.keep_alive_timeout
        self._flush(conn)

    @staticmethod
    def _queue_response(conn: _Connection, response: Response) -> None:
        """Append head and body as separate segments — the (possibly
        cached, shared) body bytes are never concatenated per response."""
        conn.out.append(response.serialize_head())
        body = response.body
        if response.body_file is not None and not body:
            # No sendfile on a nonblocking loop socket (the engine leaves
            # sendfile_enabled off for this host); read defensively in
            # case a FileBody response arrives by another route.
            with open(response.body_file.path, "rb") as handle:
                body = handle.read()
        conn.out.append(body)

    def _fail(self, conn: _Connection, status: int) -> None:
        """Protocol violation: answer once, stop reading, close."""
        response = error_response(status)
        response.headers.set("Connection", "close")
        self._queue_response(conn, response)
        conn.close_after_flush = True
        conn.reads_paused = True
        self._flush(conn)

    # -- writes ---------------------------------------------------------

    def _flush(self, conn: _Connection) -> None:
        if conn.sock not in self._connections:
            return
        if conn.out:
            try:
                if hasattr(conn.sock, "sendmsg"):
                    # Gather write straight from the segment queue: one
                    # syscall covers head + body (+ pipelined followers)
                    # with zero user-space concatenation.
                    sent = conn.sock.sendmsg(conn.out.buffers())
                else:
                    sent = conn.sock.send(conn.out.buffers(1)[0])
                if sent:
                    conn.out.advance(sent)
            except (BlockingIOError, InterruptedError):
                pass
            except OSError:
                self._close(conn)
                return
        if conn.close_after_flush and not conn.out:
            self._close(conn)
            return
        if conn.reads_paused and not conn.close_after_flush \
                and len(conn.out) <= \
                self.engine.config.write_buffer_limit // 2:
            conn.reads_paused = False  # backpressure released
        self._update_interest(conn)

    def _update_interest(self, conn: _Connection) -> None:
        desired = 0
        if not conn.reads_paused and not conn.parser.eof:
            desired |= selectors.EVENT_READ
        if conn.out:
            desired |= selectors.EVENT_WRITE
        if desired == conn.events or self._selector is None:
            return
        try:
            if conn.events == 0:
                self._selector.register(conn.sock, desired, conn)
            elif desired == 0:
                self._selector.unregister(conn.sock)
            else:
                self._selector.modify(conn.sock, desired, conn)
            conn.events = desired
        except (KeyError, ValueError, OSError):
            self._close(conn)

    def _close(self, conn: _Connection) -> None:
        self._connections.pop(conn.sock, None)
        if conn.events and self._selector is not None:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
        conn.events = 0
        close_quietly(conn.sock)

    # -- deadlines ------------------------------------------------------

    def _reap(self, now: float) -> None:
        """Close connections past their read/idle deadline.

        Kills idle keep-alive holders, stalled half-requests (slowloris)
        and clients that stopped draining responses.  Connections with a
        dispatch in the executor are exempt until the completion posts.
        """
        if not self._connections:
            return
        expired = [conn for conn in self._connections.values()
                   if not conn.busy and now >= conn.deadline]
        for conn in expired:
            self._close(conn)

    # ------------------------------------------------------------------
    # Periodic machinery (statistics, migration, validation, pinger)
    # ------------------------------------------------------------------

    def _tick(self, now: float) -> None:
        pending_drops = self._drops_recorded - self._drops_drained
        with self._lock:
            for __ in range(pending_drops):
                self.engine.metrics.record_drop(now)
            actions = self.engine.tick(now)
        self._drops_drained += pending_drops
        for action in actions:
            self._executor.submit(self._run_action, action)
        if self.journal is not None:
            # Interval-policy fsync off the loop: the fsync blocks on
            # disk, which is exactly what the loop thread must not do.
            self._executor.submit(self._durability_tick, now)
        if self.snapshot_path and \
                now - self._last_snapshot >= self.snapshot_interval:
            self._last_snapshot = now
            self._executor.submit(self._locked_checkpoint)

    def _run_action(self, action: OutboundAction) -> None:
        """One periodic server-to-server transfer (executor thread)."""
        started = time.monotonic()
        try:
            response = http_fetch(action.peer, action.request,
                                  timeout=self.request_timeout,
                                  pool=self.pool)
        except (OSError, HTTPError):
            response = None
        finished = time.monotonic()
        rtt = finished - started if response is not None else None
        with self._lock:
            self.engine.complete_action(action, response, finished, rtt=rtt)

    def _locked_checkpoint(self) -> None:
        """Periodic checkpoint (executor thread, off the loop)."""
        with self._lock:
            self._checkpoint_state(time.monotonic())
