"""Multi-core scale-out: a supervisor forking event-loop worker processes.

One :class:`AsyncDCWSServer` loop saturates a single core long before a
multi-core machine does.  This module scales the same engine across
cores the way classic pre-fork servers do, adapted to DCWS semantics:

- **Accept distribution.**  Preferred mode (``reuseport``): the parent
  binds one ``SO_REUSEPORT`` listener *per worker* on the same port and
  hands each forked worker its own; the kernel then load-balances accepts
  across workers with no user-space hand-off at all.  Fallback mode
  (``fd-handoff``) for platforms without ``SO_REUSEPORT``: the parent
  owns the single listener, accepts on a thread, and round-robins each
  accepted fd to a worker over a unix socketpair with
  ``socket.send_fds`` (SCM_RIGHTS); the worker adopts it into its loop
  via :meth:`AsyncDCWSServer.adopt_connection`.

- **Shard ownership.**  Every document maps to a stripe
  (``shard_of(name, lock_stripes)`` — CRC-32, so all processes agree)
  and every stripe to the *owning* worker (``roster[shard % len(roster)]``
  over the sorted alive workers).  Clean cached reads serve from any
  worker; per-document **mutating** directives (dirty regeneration,
  first-use pull) execute only on the owner — a non-owner forwards the
  client request over its supervisor channel and relays the owner's
  response.  If the owner is dead or slow the requester degrades to
  executing locally (every engine mutation is idempotent and
  crash-atomic), trading momentary single-writer discipline for zero
  client-visible failures.

- **Invalidation broadcast.**  Each worker's response cache reports
  invalidations (``ResponseCache.on_invalidate``); the worker batches
  them per tick and the supervisor fans them out, so a regeneration or
  author update on the owner evicts the stale rendering from every
  sibling within one tick period (bounded staleness, no shared memory).

- **Supervision.**  The parent monitors workers and respawns any that
  die (fresh listener, fresh channel), rebroadcasting the roster so
  shard ownership heals; aggregated per-worker stats (pids, accepted
  connections, cache hits, RPS) are pushed back down so any worker can
  answer ``/~dcws/workers``.

The control protocol is newline-delimited JSON over unix socketpairs;
request/response bodies cross it base64-encoded in their wire form, so
the existing HTTP (de)serializers are the only marshalling layer.
"""

from __future__ import annotations

import base64
import json
import multiprocessing
import os
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.core.document import Location
from repro.errors import ReproError
from repro.http.messages import (
    Request,
    Response,
    parse_request,
    parse_response,
)
from repro.server.aio import AsyncDCWSServer
from repro.server.engine import DCWSEngine, RegenerateAndServe
from repro.server.striping import shard_of

#: Environment override: "reuseport", "fd-handoff", or "none".
MODE_ENV = "REPRO_MULTIPROC_MODE"

_READY_TIMEOUT = 10.0
_MONITOR_PERIOD = 0.2
_VIEW_PERIOD = 0.5


def choose_mode() -> Optional[str]:
    """The accept-distribution mode this platform supports (or ``None``).

    ``REPRO_MULTIPROC_MODE`` forces a mode — CI uses it to exercise the
    fd-handoff fallback on platforms that would otherwise always take
    SO_REUSEPORT.
    """
    override = os.environ.get(MODE_ENV, "").strip().lower()
    if override in ("reuseport", "fd-handoff"):
        return override
    if override in ("none", "off", "disabled"):
        return None
    if hasattr(socket, "SO_REUSEPORT"):
        return "reuseport"
    if hasattr(socket, "send_fds"):
        return "fd-handoff"
    return None


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _unb64(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


class _Channel:
    """Newline-delimited JSON over one end of a unix socketpair.

    Sends are locked (multiple threads push stats/invalidations/forward
    replies); reads happen on one dedicated reader thread per end.
    A transport error marks the channel dead and is reported as a
    ``False``/``None`` result, never an exception — a dying peer must
    not take its sibling down.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._send_lock = threading.Lock()
        self.alive = True

    def send(self, message: Dict[str, Any]) -> bool:
        data = (json.dumps(message, separators=(",", ":")) + "\n").encode()
        with self._send_lock:
            if not self.alive:
                return False
            try:
                self._sock.sendall(data)
                return True
            except OSError:
                self.alive = False
                return False

    def recv(self) -> Optional[Dict[str, Any]]:
        """One message; ``None`` on EOF/error (peer gone)."""
        try:
            line = self._reader.readline()
        except (OSError, ValueError):
            return None
        if not line:
            return None
        try:
            message = json.loads(line)
        except ValueError:
            return None
        return message if isinstance(message, dict) else None

    def close(self) -> None:
        self.alive = False
        for closer in (self._reader.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass


class _ForwardWaiter:
    """One in-flight forwarded request awaiting the owner's response."""

    __slots__ = ("event", "payload")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.payload: Optional[str] = None


class _WorkerHost(AsyncDCWSServer):
    """One worker process's event loop plus its supervisor channel.

    Extends the single-process loop with: invalidation batching (pushed
    each tick), per-tick stats reports, and directive forwarding to the
    shard owner via :meth:`_directive_work`.
    """

    def __init__(self, engine: DCWSEngine, *, channel: _Channel,
                 worker_index: int, **kwargs: Any) -> None:
        super().__init__(engine, **kwargs)
        self.channel = channel
        self.worker_index = worker_index
        self._roster: List[int] = [worker_index]
        self._cluster_view: Dict[str, Any] = {}
        self._invalidation_lock = threading.Lock()
        self._pending_invalidations: "set[str]" = set()
        self._forward_lock = threading.Lock()
        self._forward_seq = 0
        self._forward_waiters: Dict[str, _ForwardWaiter] = {}
        engine.response_cache.on_invalidate = self._note_invalidation
        engine.worker_view = self._worker_view

    # -- outbound: invalidations and stats -------------------------------

    def _note_invalidation(self, name: str) -> None:
        with self._invalidation_lock:
            self._pending_invalidations.add(name)

    def _tick(self, now: float) -> None:
        super()._tick(now)
        with self._invalidation_lock:
            names = sorted(self._pending_invalidations)
            self._pending_invalidations.clear()
        if names:
            self.channel.send({"kind": "invalidate", "names": names})
        stats = self.engine.stats
        manager = self.engine.replication
        self.channel.send({
            "kind": "stats",
            "worker": self.worker_index,
            "pid": os.getpid(),
            "requests": stats.requests,
            "responses_200": stats.responses_200,
            "accepted": self.connections_accepted,
            "response_cache_hits": self.engine.response_cache.stats.hits,
            "repairs": stats.repairs,
            "replica_drops": stats.replica_drops,
            "two_choices_picks":
                manager.counters.two_choices_picks if manager else 0,
        })

    # -- inbound: supervisor messages ------------------------------------

    def handle_message(self, message: Dict[str, Any]) -> None:
        """Process one supervisor message (channel reader thread)."""
        kind = message.get("kind")
        if kind == "roster":
            self._roster = sorted(int(i) for i in message.get("workers", []))
        elif kind == "cluster":
            self._cluster_view = message.get("view", {})
        elif kind == "invalidate":
            self._apply_invalidations(message.get("names", []))
        elif kind == "forward":
            executor = self._executor
            if executor is not None:
                executor.submit(self._serve_forward, message)
        elif kind == "forward-reply":
            waiter = self._forward_waiters.pop(str(message.get("id")), None)
            if waiter is not None:
                payload = message.get("response")
                waiter.payload = payload if isinstance(payload, str) else None
                waiter.event.set()

    def _apply_invalidations(self, names: List[str]) -> None:
        """A sibling mutated these documents: drop our renderings and
        bump the shard stamps so in-flight fast reads fall back.
        ``broadcast=False`` keeps the relay from echoing forever."""
        with self._lock:
            for name in names:
                self.engine.response_cache.invalidate(str(name),
                                                      broadcast=False)
                with self.engine.shards.write(str(name)):
                    pass

    # -- directive forwarding --------------------------------------------

    def _owner_of(self, name: str) -> int:
        roster = self._roster or [self.worker_index]
        shard = shard_of(name, self.engine.config.lock_stripes)
        return roster[shard % len(roster)]

    def _directive_work(self, directive: object) -> Response:
        if isinstance(directive, RegenerateAndServe):
            name, request = directive.name, directive.request
        else:
            name, request = directive.key, directive.client_request
        owner = self._owner_of(name)
        if owner != self.worker_index:
            response = self._forward_request(name, request)
            if response is not None:
                return response
            # Owner dead, roster mid-heal, or reply timed out: execute
            # locally.  Every mutation behind a directive is idempotent
            # and crash-atomic, so relaxing single-writer ownership for
            # one request is strictly better than failing the client.
        return super()._directive_work(directive)

    def _forward_request(self, name: str,
                         request: Request) -> Optional[Response]:
        with self._forward_lock:
            self._forward_seq += 1
            request_id = f"{self.worker_index}:{self._forward_seq}"
        waiter = _ForwardWaiter()
        self._forward_waiters[request_id] = waiter
        sent = self.channel.send({
            "kind": "forward",
            "id": request_id,
            "origin": self.worker_index,
            "name": name,
            "stripes": self.engine.config.lock_stripes,
            "request": _b64(request.serialize()),
        })
        if not sent:
            self._forward_waiters.pop(request_id, None)
            return None
        if not waiter.event.wait(self.request_timeout):
            self._forward_waiters.pop(request_id, None)
            return None
        if waiter.payload is None:
            return None
        try:
            return parse_response(_unb64(waiter.payload))
        except Exception:
            return None

    def _serve_forward(self, message: Dict[str, Any]) -> None:
        """Execute a request forwarded from a non-owner (executor
        thread) and relay the response.  Dispatch is forced local —
        this worker *is* the owner — so forwards can never ping-pong."""
        try:
            request = parse_request(_unb64(str(message.get("request"))))
            response = self._dispatch_local(request)
            payload: Optional[str] = _b64(response.serialize())
        except Exception:
            payload = None
        self.channel.send({"kind": "forward-reply",
                           "id": str(message.get("id")),
                           "response": payload})

    def _dispatch_local(self, request: Request) -> Response:
        """Threaded-style blocking dispatch, directives executed here."""
        from repro.server.engine import EngineReply

        with self._lock:
            result = self.engine.handle_request(request, time.monotonic())
        if isinstance(result, EngineReply):
            return result.response
        if isinstance(result, RegenerateAndServe):
            return self._execute_regeneration(result)
        return self._execute_pull(result)

    # -- admin view -------------------------------------------------------

    def _worker_view(self) -> Dict[str, Any]:
        return {
            "worker": self.worker_index,
            "pid": os.getpid(),
            "roster": list(self._roster),
            "stripes": self.engine.config.lock_stripes,
            "cluster": self._cluster_view,
        }


def _worker_main(index: int,
                 factory: Callable[[int, Location], DCWSEngine],
                 listener: Optional[socket.socket],
                 channel_sock: socket.socket,
                 fd_sock: Optional[socket.socket],
                 location: Location,
                 server_options: Dict[str, Any]) -> None:
    """Entry point of one forked worker process."""
    channel = _Channel(channel_sock)
    engine = factory(index, location)
    options = dict(server_options)
    for path_key in ("snapshot_path", "journal_path"):
        # Durability files must not be shared between processes: suffix
        # per worker so each keeps an independent snapshot + journal.
        if options.get(path_key):
            options[path_key] = f"{options[path_key]}.w{index}"
    host = _WorkerHost(engine, channel=channel, worker_index=index,
                       **options)
    host.start(listener=listener, accept_connections=listener is not None)

    stopping = threading.Event()

    def read_channel() -> None:
        while True:
            message = channel.recv()
            if message is None or message.get("kind") == "stop":
                stopping.set()
                return
            try:
                host.handle_message(message)
            except Exception:
                pass  # a malformed control message must not kill serving

    def read_fds() -> None:
        assert fd_sock is not None
        while not stopping.is_set():
            try:
                __, fds, __, __ = socket.recv_fds(fd_sock, 16, 8)
            except OSError:
                return
            if not fds:
                return  # EOF: supervisor closed the hand-off channel
            for fd in fds:
                host.adopt_connection(socket.socket(fileno=fd))

    reader = threading.Thread(target=read_channel, daemon=True,
                              name=f"dcws-mp-ctl-{index}")
    reader.start()
    if fd_sock is not None:
        fd_reader = threading.Thread(target=read_fds, daemon=True,
                                     name=f"dcws-mp-fds-{index}")
        fd_reader.start()
    channel.send({"kind": "ready", "worker": index, "pid": os.getpid()})
    try:
        stopping.wait()
    except KeyboardInterrupt:
        pass  # Ctrl-C hits the whole foreground process group
    try:
        host.stop()
    except Exception:
        pass
    finally:
        channel.close()
        os._exit(0)


class _WorkerProc:
    """Supervisor-side record of one worker process."""

    __slots__ = ("index", "process", "channel", "fd_sock", "listener",
                 "ready", "stats", "last_requests", "last_sample", "rps")

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.channel: Optional[_Channel] = None
        self.fd_sock: Optional[socket.socket] = None
        self.listener: Optional[socket.socket] = None
        self.ready = threading.Event()
        self.stats: Dict[str, Any] = {}
        self.last_requests = 0
        self.last_sample = 0.0
        self.rps = 0.0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class WorkerSupervisor:
    """Fork, monitor, and coordinate N event-loop worker processes.

    ``engine_factory(index, location)`` runs *in the forked child* and
    builds that worker's engine (fork start method: nothing is pickled,
    the closure simply survives the fork).  All workers share one port.
    """

    def __init__(self, engine_factory: Callable[[int, Location], DCWSEngine],
                 workers: int, *,
                 host: str = "127.0.0.1",
                 port: int = 0,
                 mode: Optional[str] = None,
                 stripes: int = 16,
                 server_options: Optional[Dict[str, Any]] = None) -> None:
        if workers < 1:
            raise ReproError("workers must be >= 1")
        self.engine_factory = engine_factory
        self.workers = workers
        self.host = host
        self.port = port
        self.mode = mode or choose_mode()
        if self.mode not in ("reuseport", "fd-handoff"):
            raise ReproError(
                "no multi-process accept mode available on this platform")
        self.stripes = stripes
        self.server_options = dict(server_options or {})
        self._procs: List[_WorkerProc] = [
            _WorkerProc(i) for i in range(workers)]
        self._ctx = multiprocessing.get_context("fork")
        self._listener: Optional[socket.socket] = None  # fd-handoff mode
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._started = False
        self._accept_rr = 0
        self.respawns = 0

    # -- listener plumbing ------------------------------------------------

    def _bind_reuseport(self) -> socket.socket:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        if self.port == 0:
            self.port = listener.getsockname()[1]
        return listener

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise ReproError("supervisor already started")
        self._started = True
        if self.mode == "fd-handoff":
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            listener.listen(128)
            listener.settimeout(0.2)
            self.port = listener.getsockname()[1]
            self._listener = listener
        for proc in self._procs:
            self._spawn(proc)
        for proc in self._procs:
            if not proc.ready.wait(_READY_TIMEOUT):
                self.stop()
                raise ReproError(
                    f"worker {proc.index} failed to report ready")
        self._broadcast_roster()
        monitor = threading.Thread(target=self._monitor_loop, daemon=True,
                                   name="dcws-mp-monitor")
        self._threads.append(monitor)
        monitor.start()
        if self.mode == "fd-handoff":
            acceptor = threading.Thread(target=self._accept_loop,
                                        daemon=True, name="dcws-mp-accept")
            self._threads.append(acceptor)
            acceptor.start()

    def _spawn(self, proc: _WorkerProc) -> None:
        """Fork one worker (fresh listener + channels); used for both
        initial start and respawn after a worker death."""
        listener = self._bind_reuseport() if self.mode == "reuseport" \
            else None
        parent_ctl, child_ctl = socket.socketpair()
        parent_fd = child_fd = None
        if self.mode == "fd-handoff":
            parent_fd, child_fd = socket.socketpair()
        location = Location(self.host, self.port)
        process = self._ctx.Process(
            target=_worker_main,
            args=(proc.index, self.engine_factory, listener, child_ctl,
                  child_fd, location, self.server_options),
            daemon=True,
            name=f"dcws-worker-{proc.index}")
        process.start()
        # Parent keeps only its ends; the child inherited duplicates.
        child_ctl.close()
        if child_fd is not None:
            child_fd.close()
        if listener is not None:
            listener.close()
        proc.process = process
        proc.channel = _Channel(parent_ctl)
        proc.fd_sock = parent_fd
        proc.ready = threading.Event()
        reader = threading.Thread(target=self._read_worker, args=(proc,),
                                  daemon=True,
                                  name=f"dcws-mp-read-{proc.index}")
        reader.start()

    def stop(self) -> None:
        if not self._started:
            return
        self._stop.set()
        for proc in self._procs:
            if proc.channel is not None:
                proc.channel.send({"kind": "stop"})
        for proc in self._procs:
            if proc.process is not None:
                proc.process.join(timeout=3.0)
                if proc.process.is_alive():
                    proc.process.terminate()
                    proc.process.join(timeout=1.0)
            for sock in (proc.fd_sock,):
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
            if proc.channel is not None:
                proc.channel.close()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads = []
        self._started = False

    def __enter__(self) -> "WorkerSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- fd-handoff accept loop ------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                sock, __ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            targets = [p for p in self._procs
                       if p.alive and p.fd_sock is not None]
            if not targets:
                sock.close()
                continue
            self._accept_rr += 1
            target = targets[self._accept_rr % len(targets)]
            try:
                socket.send_fds(target.fd_sock, [b"c"], [sock.fileno()])
            except OSError:
                pass  # worker died mid-handoff; client will retry
            sock.close()  # the worker holds its own duplicate now

    # -- channel fan-in / fan-out ----------------------------------------

    def _read_worker(self, proc: _WorkerProc) -> None:
        channel = proc.channel
        assert channel is not None
        while True:
            message = channel.recv()
            if message is None:
                return  # worker gone; the monitor loop handles respawn
            kind = message.get("kind")
            if kind == "ready":
                proc.ready.set()
            elif kind == "stats":
                proc.stats = message
            elif kind == "invalidate":
                names = message.get("names", [])
                for other in self._procs:
                    if other is not proc and other.channel is not None:
                        other.channel.send({"kind": "invalidate",
                                            "names": names})
            elif kind == "forward":
                self._route_forward(proc, message)
            elif kind == "forward-reply":
                self._route_forward_reply(message)

    def _roster(self) -> List[int]:
        return sorted(p.index for p in self._procs if p.alive)

    def _route_forward(self, origin: _WorkerProc,
                       message: Dict[str, Any]) -> None:
        """Relay a forward to the shard owner — recomputed here from the
        live roster, so a stale worker-side roster cannot misroute."""
        roster = self._roster()
        name = str(message.get("name", ""))
        owner_index = None
        if roster:
            stripes = int(message.get("stripes", 0)) or self.stripes
            owner_index = roster[shard_of(name, stripes) % len(roster)]
        owner = next((p for p in self._procs if p.index == owner_index
                      and p.alive and p.channel is not None), None)
        if owner is None or owner.index == origin.index:
            # No better owner than the asker: tell it to run locally.
            if origin.channel is not None:
                origin.channel.send({"kind": "forward-reply",
                                     "id": str(message.get("id")),
                                     "response": None})
            return
        owner.channel.send(message)

    def _route_forward_reply(self, message: Dict[str, Any]) -> None:
        request_id = str(message.get("id", ""))
        origin_index = request_id.split(":", 1)[0]
        for proc in self._procs:
            if str(proc.index) == origin_index and proc.channel is not None:
                proc.channel.send(message)
                return

    def _broadcast_roster(self) -> None:
        roster = self._roster()
        for proc in self._procs:
            if proc.channel is not None:
                proc.channel.send({"kind": "roster", "workers": roster})

    # -- monitoring, respawn, aggregated view ----------------------------

    def _monitor_loop(self) -> None:
        last_view = 0.0
        while not self._stop.is_set():
            changed = False
            for proc in self._procs:
                if not proc.alive and not self._stop.is_set():
                    self.respawns += 1
                    self._spawn(proc)
                    proc.ready.wait(_READY_TIMEOUT)
                    changed = True
            if changed:
                self._broadcast_roster()
            now = time.monotonic()
            if now - last_view >= _VIEW_PERIOD:
                last_view = now
                self._sample_rps(now)
                view = self.cluster_view()
                for proc in self._procs:
                    if proc.channel is not None:
                        proc.channel.send({"kind": "cluster", "view": view})
            self._stop.wait(_MONITOR_PERIOD)

    def _sample_rps(self, now: float) -> None:
        for proc in self._procs:
            requests = int(proc.stats.get("requests", 0))
            if proc.last_sample:
                elapsed = max(now - proc.last_sample, 1e-6)
                delta = max(requests - proc.last_requests, 0)
                proc.rps = delta / elapsed
            proc.last_requests = requests
            proc.last_sample = now

    def per_worker_rps(self) -> Dict[str, float]:
        """Latest per-worker requests/second, keyed by worker index."""
        return {str(p.index): round(p.rps, 3) for p in self._procs}

    def cluster_view(self) -> Dict[str, Any]:
        """The aggregated per-worker roster any worker serves from
        ``/~dcws/workers``."""
        roster = self._roster()
        stripes = self.stripes
        workers: Dict[str, Any] = {}
        for proc in self._procs:
            shards = [s for s in range(stripes)
                      if roster and roster[s % len(roster)] == proc.index]
            workers[str(proc.index)] = {
                "pid": proc.stats.get("pid"),
                "alive": proc.alive,
                "accepted": proc.stats.get("accepted", 0),
                "requests": proc.stats.get("requests", 0),
                "response_cache_hits":
                    proc.stats.get("response_cache_hits", 0),
                "rps": round(proc.rps, 3),
                "repairs": proc.stats.get("repairs", 0),
                "replica_drops": proc.stats.get("replica_drops", 0),
                "shards": shards,
            }
        return {"mode": self.mode, "port": self.port, "stripes": stripes,
                "respawns": self.respawns, "roster": roster,
                "workers": workers}

    def aggregate_stats(self) -> Dict[str, int]:
        """Summed counters across workers (benchmark reporting)."""
        totals = {"requests": 0, "responses_200": 0, "accepted": 0,
                  "response_cache_hits": 0, "repairs": 0,
                  "replica_drops": 0, "two_choices_picks": 0}
        for proc in self._procs:
            for key in totals:
                totals[key] += int(proc.stats.get(key, 0))
        return totals
