"""Versioned serve-path caches (byte cache and rendered-response cache).

DistCache-style observation: a small cache in front of a distributed
store absorbs the skewed head of web load.  Two layers sit on the DCWS
serve hot path:

- :class:`CachingStore` — a size-bounded LRU *byte cache* wrapped around
  any :class:`~repro.server.filestore.DocumentStore` (in practice the
  :class:`~repro.server.filestore.DiskStore`), so repeat ``get`` calls for
  hot documents stop re-reading the disk.  ``put``/``delete`` write
  through and invalidate.
- :class:`ResponseCache` — rendered 200 responses keyed by
  ``(name, version, method)``, so a repeat hit skips the store entirely
  and reuses the same immutable body bytes.  Version bumps (author
  updates, migration/revocation dirtying) change the key, and
  regeneration explicitly invalidates, so a stale body is never served.

Both caches keep their own locking: the threaded server touches them
from worker threads outside the engine lock (lock-scope reduction), and
the counters feed the admin endpoint and benchmarks.  With ``stripes >
1`` the lock (and the LRU structure) is partitioned by
``hash(name) % stripes`` — per-shard locks, so concurrent readers of
unrelated documents never serialize on one cache mutex; capacity is
split evenly across stripes.  The default of one stripe preserves the
original global-LRU semantics exactly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.server.filestore import DocumentStore
from repro.server.striping import shard_of


@dataclass
class CacheStats:
    """Cumulative counters one cache exposes to stats/admin."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": round(self.hit_rate, 4)}


class _ByteShard:
    """One stripe of :class:`LRUByteCache`: entries + lock + budget."""

    __slots__ = ("capacity", "entries", "used", "lock")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries: "OrderedDict[str, bytes]" = OrderedDict()
        self.used = 0
        self.lock = threading.Lock()


class LRUByteCache:
    """A byte-bounded LRU map of document name -> bytes.

    ``capacity_bytes <= 0`` disables the cache (every lookup misses).
    Oversized single values are not cached rather than flushing the
    whole cache to make room.  With ``stripes > 1`` the byte budget,
    the LRU order, and the lock are all per-stripe.
    """

    def __init__(self, capacity_bytes: int, *, stripes: int = 1) -> None:
        self.capacity_bytes = capacity_bytes
        self.stripes = max(1, stripes)
        self.stats = CacheStats()
        per_shard = (max(1, capacity_bytes // self.stripes)
                     if capacity_bytes > 0 else 0)
        self._shards: List[_ByteShard] = [
            _ByteShard(per_shard) for __ in range(self.stripes)]

    def _shard(self, name: str) -> _ByteShard:
        return self._shards[shard_of(name, self.stripes)]

    @property
    def used_bytes(self) -> int:
        return sum(shard.used for shard in self._shards)

    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self._shards)

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        return name in self._shard(name).entries

    def get(self, name: str) -> Optional[bytes]:
        shard = self._shard(name)
        with shard.lock:
            data = shard.entries.get(name)
            if data is None:
                self.stats.misses += 1
                return None
            shard.entries.move_to_end(name)
            self.stats.hits += 1
            return data

    def put(self, name: str, data: bytes) -> None:
        if self.capacity_bytes <= 0:
            return
        size = len(data)
        shard = self._shard(name)
        with shard.lock:
            old = shard.entries.pop(name, None)
            if old is not None:
                shard.used -= len(old)
            if size > shard.capacity:
                return
            shard.entries[name] = data
            shard.used += size
            while shard.used > shard.capacity:
                __, evicted = shard.entries.popitem(last=False)
                shard.used -= len(evicted)
                self.stats.evictions += 1

    def invalidate(self, name: str) -> None:
        shard = self._shard(name)
        with shard.lock:
            data = shard.entries.pop(name, None)
            if data is not None:
                shard.used -= len(data)
                self.stats.invalidations += 1

    def clear(self) -> None:
        for shard in self._shards:
            with shard.lock:
                shard.entries.clear()
                shard.used = 0


class CachingStore(DocumentStore):
    """LRU byte cache in front of another :class:`DocumentStore`.

    Reads fill the cache; writes and deletes go through to the inner
    store and keep the cache coherent (the fresh bytes replace the cached
    entry rather than merely invalidating it, so a concurrent reader can
    never observe a partially written disk file).
    """

    def __init__(self, inner: DocumentStore, capacity_bytes: int, *,
                 stripes: int = 1) -> None:
        self.inner = inner
        self.cache = LRUByteCache(capacity_bytes, stripes=stripes)

    def get(self, name: str) -> bytes:
        data = self.cache.get(name)
        if data is not None:
            return data
        data = self.inner.get(name)
        self.cache.put(name, data)
        return data

    def put(self, name: str, data: bytes) -> None:
        data = bytes(data)
        self.inner.put(name, data)
        self.cache.put(name, data)

    def delete(self, name: str) -> None:
        self.inner.delete(name)
        self.cache.invalidate(name)

    def names(self) -> List[str]:
        return self.inner.names()

    def __contains__(self, name: object) -> bool:
        return name in self.inner

    def size(self, name: str) -> int:
        return self.inner.size(name)

    def items(self) -> Iterator[Tuple[str, bytes]]:
        return self.inner.items()

    def sendfile_source(self, name: str) -> Optional[Tuple[str, int]]:
        """Delegate zero-copy sourcing to the inner store — unless the
        bytes are already memory-resident here, in which case reading
        from cache beats a sendfile syscall pair."""
        if name in self.cache:
            return None
        return self.inner.sendfile_source(name)


@dataclass(frozen=True)
class CachedResponse:
    """One rendered 200: shared immutable body plus the header facts.

    ``etag``/``last_modified`` are the HTTP validators derived from
    ``(name, version)``; ``gzip_body`` is the pre-compressed variant
    stored alongside the identity body (``None`` when compression is not
    worthwhile), so gzip negotiation on a cache hit costs a header check,
    never a compression pass.
    """

    body: bytes
    content_length: int
    content_type: str
    version: str
    etag: str = ""
    last_modified: str = ""
    gzip_body: Optional[bytes] = None
    # Strong digest of the identity body (``sha256:<hex>``), copied from
    # the document record at fill time and stamped as ``X-DCWS-Digest``
    # on full responses; "" when the record had none.
    digest: str = ""


class _ResponseShard:
    """One stripe of :class:`ResponseCache`: LRU + name index + lock."""

    __slots__ = ("capacity", "entries", "by_name", "lock")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries: "OrderedDict[Tuple[str, str, str], CachedResponse]" = \
            OrderedDict()
        self.by_name: Dict[str, set] = {}
        self.lock = threading.Lock()

    def unindex(self, key: Tuple[str, str, str]) -> None:
        """Drop *key* from the per-name index (lock held by caller)."""
        keys = self.by_name.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self.by_name[key[0]]


class ResponseCache:
    """Rendered-response LRU keyed by ``(name, version, method)``.

    Bounded by entry count.  ``invalidate(name)`` drops every version and
    method of *name* — used when a regeneration or a hosted-copy refresh
    rewrites bytes without the version changing observably.  A per-name
    key index keeps that O(cached versions of *name*): migration events
    invalidate on the hot path, and a scan of every entry under the lock
    would make each invalidation O(total entries).

    ``on_invalidate`` (when set) is called with the document name after
    any invalidation that actually dropped entries — the multi-process
    front end hangs its cross-worker version broadcast here.  It fires
    outside the shard lock and never for invalidations that arrive *as*
    broadcasts (``broadcast=False``), so relays cannot loop.
    """

    def __init__(self, capacity_entries: int, *, stripes: int = 1) -> None:
        self.capacity_entries = capacity_entries
        self.stripes = max(1, stripes)
        self.stats = CacheStats()
        self.on_invalidate: Optional[Callable[[str], None]] = None
        per_shard = (max(1, capacity_entries // self.stripes)
                     if capacity_entries > 0 else 0)
        self._shards: List[_ResponseShard] = [
            _ResponseShard(per_shard) for __ in range(self.stripes)]

    def _shard(self, name: str) -> _ResponseShard:
        return self._shards[shard_of(name, self.stripes)]

    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self._shards)

    @property
    def enabled(self) -> bool:
        return self.capacity_entries > 0

    def get(self, name: str, version: object,
            method: str) -> Optional[CachedResponse]:
        if not self.enabled:
            return None
        key = (name, str(version), method)
        shard = self._shard(name)
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            shard.entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, name: str, version: object, method: str,
            entry: CachedResponse) -> None:
        if not self.enabled:
            return
        key = (name, str(version), method)
        shard = self._shard(name)
        with shard.lock:
            shard.entries[key] = entry
            shard.entries.move_to_end(key)
            shard.by_name.setdefault(name, set()).add(key)
            while len(shard.entries) > shard.capacity:
                evicted, __ = shard.entries.popitem(last=False)
                shard.unindex(evicted)
                self.stats.evictions += 1

    def invalidate(self, name: str, *, broadcast: bool = True) -> int:
        """Drop every cached rendering of *name*; returns how many.

        The per-name index makes this O(cached versions of *name*)
        rather than a scan of every entry under the lock.
        ``broadcast=False`` marks an invalidation that arrived over the
        cross-worker channel: it is applied but not re-announced."""
        shard = self._shard(name)
        with shard.lock:
            stale = shard.by_name.pop(name, None)
            if stale:
                for key in stale:
                    del shard.entries[key]
                self.stats.invalidations += len(stale)
        if broadcast and self.on_invalidate is not None:
            self.on_invalidate(name)
        return len(stale) if stale else 0

    def clear(self) -> None:
        for shard in self._shards:
            with shard.lock:
                shard.entries.clear()
                shard.by_name.clear()
