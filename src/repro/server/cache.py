"""Versioned serve-path caches (byte cache and rendered-response cache).

DistCache-style observation: a small cache in front of a distributed
store absorbs the skewed head of web load.  Two layers sit on the DCWS
serve hot path:

- :class:`CachingStore` — a size-bounded LRU *byte cache* wrapped around
  any :class:`~repro.server.filestore.DocumentStore` (in practice the
  :class:`~repro.server.filestore.DiskStore`), so repeat ``get`` calls for
  hot documents stop re-reading the disk.  ``put``/``delete`` write
  through and invalidate.
- :class:`ResponseCache` — rendered 200 responses keyed by
  ``(name, version, method)``, so a repeat hit skips the store entirely
  and reuses the same immutable body bytes.  Version bumps (author
  updates, migration/revocation dirtying) change the key, and
  regeneration explicitly invalidates, so a stale body is never served.

Both caches keep their own small lock: the threaded server touches them
from worker threads outside the engine lock (lock-scope reduction), and
the counters feed the admin endpoint and benchmarks.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.server.filestore import DocumentStore


@dataclass
class CacheStats:
    """Cumulative counters one cache exposes to stats/admin."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": round(self.hit_rate, 4)}


class LRUByteCache:
    """A byte-bounded LRU map of document name -> bytes.

    ``capacity_bytes <= 0`` disables the cache (every lookup misses).
    Oversized single values are not cached rather than flushing the
    whole cache to make room.
    """

    def __init__(self, capacity_bytes: int) -> None:
        self.capacity_bytes = capacity_bytes
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._used = 0
        self._lock = threading.Lock()

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, name: str) -> Optional[bytes]:
        with self._lock:
            data = self._entries.get(name)
            if data is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(name)
            self.stats.hits += 1
            return data

    def put(self, name: str, data: bytes) -> None:
        if self.capacity_bytes <= 0:
            return
        size = len(data)
        with self._lock:
            old = self._entries.pop(name, None)
            if old is not None:
                self._used -= len(old)
            if size > self.capacity_bytes:
                return
            self._entries[name] = data
            self._used += size
            while self._used > self.capacity_bytes:
                __, evicted = self._entries.popitem(last=False)
                self._used -= len(evicted)
                self.stats.evictions += 1

    def invalidate(self, name: str) -> None:
        with self._lock:
            data = self._entries.pop(name, None)
            if data is not None:
                self._used -= len(data)
                self.stats.invalidations += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._used = 0


class CachingStore(DocumentStore):
    """LRU byte cache in front of another :class:`DocumentStore`.

    Reads fill the cache; writes and deletes go through to the inner
    store and keep the cache coherent (the fresh bytes replace the cached
    entry rather than merely invalidating it, so a concurrent reader can
    never observe a partially written disk file).
    """

    def __init__(self, inner: DocumentStore, capacity_bytes: int) -> None:
        self.inner = inner
        self.cache = LRUByteCache(capacity_bytes)

    def get(self, name: str) -> bytes:
        data = self.cache.get(name)
        if data is not None:
            return data
        data = self.inner.get(name)
        self.cache.put(name, data)
        return data

    def put(self, name: str, data: bytes) -> None:
        data = bytes(data)
        self.inner.put(name, data)
        self.cache.put(name, data)

    def delete(self, name: str) -> None:
        self.inner.delete(name)
        self.cache.invalidate(name)

    def names(self) -> List[str]:
        return self.inner.names()

    def __contains__(self, name: object) -> bool:
        return name in self.inner

    def size(self, name: str) -> int:
        return self.inner.size(name)

    def items(self) -> Iterator[Tuple[str, bytes]]:
        return self.inner.items()


@dataclass(frozen=True)
class CachedResponse:
    """One rendered 200: shared immutable body plus the header facts.

    ``etag``/``last_modified`` are the HTTP validators derived from
    ``(name, version)``; ``gzip_body`` is the pre-compressed variant
    stored alongside the identity body (``None`` when compression is not
    worthwhile), so gzip negotiation on a cache hit costs a header check,
    never a compression pass.
    """

    body: bytes
    content_length: int
    content_type: str
    version: str
    etag: str = ""
    last_modified: str = ""
    gzip_body: Optional[bytes] = None


class ResponseCache:
    """Rendered-response LRU keyed by ``(name, version, method)``.

    Bounded by entry count.  ``invalidate(name)`` drops every version and
    method of *name* — used when a regeneration or a hosted-copy refresh
    rewrites bytes without the version changing observably.  A per-name
    key index keeps that O(cached versions of *name*): migration events
    invalidate on the hot path, and a scan of every entry under the lock
    would make each invalidation O(total entries).
    """

    def __init__(self, capacity_entries: int) -> None:
        self.capacity_entries = capacity_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[Tuple[str, str, str], CachedResponse]" = \
            OrderedDict()
        self._by_name: Dict[str, set] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.capacity_entries > 0

    def get(self, name: str, version: object,
            method: str) -> Optional[CachedResponse]:
        if not self.enabled:
            return None
        key = (name, str(version), method)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, name: str, version: object, method: str,
            entry: CachedResponse) -> None:
        if not self.enabled:
            return
        key = (name, str(version), method)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._by_name.setdefault(name, set()).add(key)
            while len(self._entries) > self.capacity_entries:
                evicted, __ = self._entries.popitem(last=False)
                self._unindex(evicted)
                self.stats.evictions += 1

    def invalidate(self, name: str) -> int:
        """Drop every cached rendering of *name*; returns how many.

        The per-name index makes this O(cached versions of *name*)
        rather than a scan of every entry under the lock."""
        with self._lock:
            stale = self._by_name.pop(name, None)
            if not stale:
                return 0
            for key in stale:
                del self._entries[key]
            self.stats.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_name.clear()

    def _unindex(self, key: Tuple[str, str, str]) -> None:
        """Drop *key* from the per-name index (lock held by caller)."""
        keys = self._by_name.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_name[key[0]]
