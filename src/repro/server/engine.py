"""The DCWS request engine: transport-independent server behaviour.

One :class:`DCWSEngine` embodies everything a DCWS server does apart from
moving bytes over a network:

- serve local documents, regenerating dirty ones with rewritten hyperlinks
  (paper section 4.3);
- answer requests for documents migrated *away* with a 301 redirect
  (section 4.4);
- act as a co-op server for documents migrated *to* it, pulling the bytes
  from the home server on first use — lazy migration (section 4.2);
- run the periodic machinery: statistics re-calculation and migration
  decisions every T_st, document validation every T_val, pinging every
  T_pi (sections 3.3, 4.5);
- piggyback and merge global-load-table rows on every server-to-server
  transfer (section 3.3).

The engine never sleeps, spawns threads, or opens sockets.  Time is an
explicit ``now`` argument and all outbound communication is returned as
*directives* (:class:`PullFromHome`, :class:`OutboundAction`) that the host
— the real threaded server or the simulator — executes and completes.
This is what lets the benchmarks drive the identical policy code under
virtual time.

The engine is not itself thread-safe; hosts serialize access (the threaded
server with a lock, the simulator by construction).

A note on the naming convention's pull-through property: a co-op serves
*any* ``/~migrate/h/p/path`` request by pulling from ``h:p``, whether or
not the home server explicitly migrated that document here.  Migrated
documents therefore have their own outgoing links rewritten to absolute
URLs at regeneration time, so relative links inside them cannot silently
turn the co-op into an accidental mirror of the whole site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING, Union

from repro.core.config import ServerConfig
from repro.core.consistency import DueTracker, PeerHealth
from repro.core.eventlog import EventLog
from repro.core.document import DocumentRecord, Location
from repro.core.glt import GlobalLoadTable
from repro.core.ldg import LocalDocumentGraph
from repro.core.metrics import ServerMetrics
from repro.core.membership import (
    ALIVE,
    DEAD,
    FORGOTTEN,
    MembershipTable,
    SUSPECT,
)
from repro.core.migration import MigrationDecision, MigrationPolicy
from repro.core.naming import (
    REPLICAS_HEADER,
    decode_migrated_path,
    encode_migrated_path,
    home_url,
    is_migrated_path,
    migrated_url,
)
from repro.errors import DocumentNotFound, NamingError
from repro.http.content import (
    DIGEST_HEADER,
    QUARANTINE_HEADER,
    RANGE_UNSATISFIABLE,
    accepts_gzip,
    body_digest,
    content_range,
    digest_matches,
    etag_for,
    last_modified_for,
    maybe_gzip,
    not_modified,
    parse_range,
)
from repro.html.links import extract_links
from repro.html.parser import parse_html
from repro.html.rewriter import rewrite_links
from repro.html.serializer import serialize_html
from repro.html.template import LinkTemplate, build_link_template
from repro.http.headers import Headers
from repro.http.messages import (
    FileBody,
    Request,
    Response,
    error_response,
    redirect_response,
    request_wants_keep_alive,
)
from repro.http.piggyback import (
    attach_load_reports,
    extract_load_reports,
    extract_sender,
)
from repro.http.status import StatusCode
from repro.http.cookies import (
    build_set_cookie,
    parse_cookie_header,
)
from repro.http.urls import URL, join_url, normalize_path, strip_fragment
from repro.server.admin import ADMIN_PREFIX, HEALTH_PATH
from repro.server.cache import CachedResponse, CachingStore, ResponseCache
from repro.server.entrygate import COOKIE_NAME, EntryGate
from repro.server.filestore import DocumentStore, MemoryStore, guess_content_type
from repro.server.integrity import (
    IntegrityManager,
    KIND_HOME,
    KIND_HOSTED,
    REASON_SCRUB,
    REASON_SERVE,
)
from repro.server.replication import ReplicationManager
from repro.server.striping import ShardVersions

if TYPE_CHECKING:
    from repro.client.breaker import CircuitBreaker
    from repro.server.persistence import RecoveryStats
    from repro.server.wal import WriteAheadJournal

VERSION_HEADER = "X-DCWS-Version"
PURPOSE_HEADER = "X-DCWS-Purpose"
# A co-op piggybacks the hits a hosted document received since its last
# validation; the home credits them to the document's LDG tuple, so
# selection/re-migration/replication see demand that lands on co-ops.
HOSTED_HITS_HEADER = "X-DCWS-Hosted-Hits"
# Rejoin reconciliation: a server answering a ping/probe from a peer
# attaches the (original path, version) manifest of every document it
# still hosts *for that peer*, so a home rediscovering a falsely-dead
# co-op can compare the returning hosted set against its current
# LDG/replication-group state without an extra round trip.
HOSTED_MANIFEST_HEADER = "X-DCWS-Hosted-Manifest"
# Manifest size cap: a pathological co-op cannot bloat probe responses.
HOSTED_MANIFEST_LIMIT = 128


@dataclass
class EngineReply:
    """A finished response plus accounting the host may need.

    ``reconstructed`` flags that serving this request required a
    dirty-document regeneration; ``spliced`` qualifies it as the cheap
    link-template splice rather than the full parse-and-regenerate pass
    (the ~20 ms cost of section 5.3).  ``parsed_only`` flags a parse
    without regeneration (~3 ms).
    """

    response: Response
    doc_name: str = ""
    reconstructed: bool = False
    parsed_only: bool = False
    spliced: bool = False


@dataclass
class _FastHit:
    """A validated lock-free cache read, pending commit.

    Produced by :meth:`DCWSEngine.fast_lookup` entirely outside the
    host's engine lock; the host then calls
    :meth:`DCWSEngine.fast_commit` *under* the lock, which re-checks the
    shard stamp (definitive there: every mutation holds the lock) and
    either books the counters and finishes the response, or returns
    ``None`` so the host falls back to :meth:`DCWSEngine.handle_request`.
    """

    shard: int
    stamp: int
    record: DocumentRecord
    cached: CachedResponse
    response: Response
    kind: str              # "identity" or "gzip"


@dataclass
class PullFromHome:
    """Directive: fetch a migrated document's bytes from its home server.

    The host sends ``request`` to ``home`` and passes the answer to
    :meth:`DCWSEngine.complete_pull` together with this directive.
    """

    key: str               # migrated-form path on this co-op
    home: Location
    original: str          # path on the home server
    request: Request
    client_request: Request


@dataclass
class RegenerateAndServe:
    """Directive: a dirty document must be regenerated before serving.

    Only emitted when the host opted in (``engine.defer_regeneration``,
    set by the threaded server): the host runs
    :meth:`DCWSEngine.regeneration_plan` under its engine lock, performs
    the splice *outside* the lock (guarded per document so two workers
    never regenerate the same name concurrently), commits via
    :meth:`DCWSEngine.commit_regeneration`, and finishes the request with
    :meth:`DCWSEngine.serve_after_regeneration`.
    """

    name: str
    version: int
    request: Request


@dataclass
class RegenerationPlan:
    """Everything an off-lock splice needs, captured under the lock."""

    name: str
    version: int
    template: LinkTemplate
    replacements: List[Optional[str]]

    def apply(self) -> "Tuple[str, LinkTemplate]":
        """The CPU-heavy string work; safe to run outside the engine
        lock — it touches only this plan's immutable captures."""
        return self.template.splice_all(self.replacements)


@dataclass
class OutboundAction:
    """Directive: a periodic server-to-server transfer.

    ``kind`` is ``"ping"`` (forced load-information exchange / liveness
    probe) or ``"validate"`` (co-op consistency re-request).  The host
    sends ``request`` to ``peer`` and reports the outcome through
    :meth:`DCWSEngine.complete_action`; a ``None`` response means the peer
    was unreachable.
    """

    kind: str
    peer: Location
    request: Request
    key: str = ""          # hosted key, for validations


@dataclass
class HostedDocument:
    """Co-op-side record of one document migrated (or pulled through) here."""

    key: str               # migrated-form path, e.g. /~migrate/h/80/a.html
    home: Location
    original: str          # original path on the home server
    fetched: bool = False
    size: int = 0
    hits: int = 0
    version: str = ""      # home's version, echoed for 304 validation
    content_type: str = "text/html"
    hits_reported: int = 0  # hits already piggybacked back to the home
    # Home's content digest of the identity body, claimed on the pull /
    # validation response and verified before install; "" for legacy
    # copies pulled from digestless homes.
    digest: str = ""


@dataclass
class EngineStats:
    """Cumulative counters surfaced to benchmarks and tests."""

    requests: int = 0
    responses_200: int = 0
    responses_301: int = 0
    responses_304: int = 0
    responses_404: int = 0
    bytes_sent: int = 0
    reconstructions: int = 0
    splices: int = 0           # reconstructions served by template splice
    template_builds: int = 0   # link templates built (each costs a parse)
    parses: int = 0
    responses_503: int = 0
    responses_206: int = 0
    responses_416: int = 0
    conditional_304s: int = 0   # client-validator 304s (ETag/IMS), not peer
    gzip_responses: int = 0
    gzip_bytes_saved: int = 0   # identity length minus gzip length, summed
    regenerations_shed: int = 0  # dirty regenerations refused under overload
    pulls_shed: int = 0          # first-use co-op pulls refused under overload
    pulls_started: int = 0
    pulls_completed: int = 0
    pulls_degraded: int = 0    # failed pulls answered 302-to-home or 503
    validations: int = 0
    pings: int = 0
    migrations: int = 0
    revocations: int = 0
    replications: int = 0
    replica_drops: int = 0   # dead holders shed from replication groups
    repairs: int = 0         # replacement holders added by the repair loop
    decisions: List[MigrationDecision] = field(default_factory=list)


# Approximate wire overhead of a response head, counted into BPS the same
# way the paper's servers saw connection bytes beyond the document body.
RESPONSE_HEAD_OVERHEAD = 160


class DCWSEngine:
    """One DCWS server's complete behaviour, minus transport and threads."""

    def __init__(self, location: Location, config: ServerConfig,
                 store: DocumentStore, *,
                 entry_points: Iterable[str] = (),
                 peers: Iterable[Location] = ()) -> None:
        self.location = location
        self.config = config
        # Byte cache (DistCache-style) in front of disk-backed stores;
        # memory stores are already memory-resident, and a store the
        # caller pre-wrapped keeps its own cache.
        if config.byte_cache_bytes > 0 and \
                not isinstance(store, (MemoryStore, CachingStore)):
            store = CachingStore(store, config.byte_cache_bytes,
                                 stripes=config.lock_stripes)
        self.store = store
        # Rendered-response cache keyed by (name, version, method).
        self.response_cache = ResponseCache(config.response_cache_entries,
                                            stripes=config.lock_stripes)
        # Seqlock shard stamps for the lock-free clean-read fast path:
        # every mutation site below bumps the shards it touches, and
        # fast_lookup/fast_commit validate against them.
        self.shards = ShardVersions(config.lock_stripes)
        # Per-document link templates for splice reconstruction, synced at
        # every point the stored bytes change (initial parse, author
        # update, regeneration commit).  Keyed by name: migration events
        # bump a document's *version* without touching its bytes, so the
        # template stays valid across them.
        self._templates: Dict[str, LinkTemplate] = {}
        # Host capability: the threaded server sets this so dirty-document
        # regeneration runs outside its engine lock (RegenerateAndServe).
        self.defer_regeneration = False
        # Host capability: front ends that can deliver a FileBody with
        # os.sendfile set this; large clean disk-backed GETs then skip
        # the byte read entirely (see _respond_home).
        self.sendfile_enabled = False
        # Multi-process hosts install a callable here returning the
        # supervisor's per-worker roster for /~dcws/workers.
        self.worker_view = None
        # Tiered shedding input: hosts set this before dispatching when
        # their queue/connection pressure crosses ``config.shed_pressure``.
        # While True, expensive work (regenerations, first-use pulls) is
        # shed with 503 while cache hits and 304s keep being served.
        self.overloaded = False
        self.graph = LocalDocumentGraph(
            location, enforce_entry_home=config.protect_entry_points)
        self.glt = GlobalLoadTable(location)
        self.policy = MigrationPolicy(config, self.graph, self.glt)
        self.policy.peer_available = self._peer_available
        self.policy.on_decision = self._on_decision
        self.metrics = ServerMetrics(config.stats_interval)
        self.validation = DueTracker(config.validation_interval)
        self.health = PeerHealth(config.ping_failure_limit)
        # Adaptive membership: the alive -> suspect -> dead -> forgotten
        # state machine driven by the accrual failure detector, plus the
        # rediscovery re-probe schedule for falsely-dead configured
        # peers.  Every success/failure observation below feeds it via
        # _peer_success/_peer_failure; all DEAD declarations it
        # recommends flow through the single journaled _declare_dead.
        self.membership = MembershipTable.from_config(config)
        # Replication groups with autonomous repair (replication_k >= 2):
        # the manager owns group bookkeeping and the repair loop; its
        # decisions surface through the policy callback above, so they
        # are journaled and seqlock-stamped like every other relocation.
        # ``alive`` (suspects count as live) governs holder retention
        # and serving; ``targetable`` (strictly alive) governs where new
        # replicas may be placed — a suspect peer keeps its documents
        # but receives no new ones.
        # End-to-end content integrity: digests, the scrub daemon's
        # schedule/cursor, and the quarantine table (see
        # repro.server.integrity).  Wired into replication below so a
        # quarantined holder is treated exactly like a dead one.
        self.integrity = IntegrityManager(config)
        self.replication: Optional[ReplicationManager] = None
        if config.replication_k > 1:
            self.replication = ReplicationManager(
                config, self.graph, self.glt, self.policy,
                alive=self._peer_live,
                targetable=self._peer_available,
                quarantined=self.integrity.holder_quarantined,
                log=lambda msg: self.log.record(self._clock, "replication",
                                                detail=msg))
        # Set by hosts that own a pooled transport: per-peer circuit
        # breaker consulted for migration-target availability and
        # surfaced by the /~dcws/peers endpoint.
        self.breaker: Optional["CircuitBreaker"] = None
        self.hosted: Dict[str, HostedDocument] = {}
        self.stats = EngineStats()
        self.log = EventLog()
        # Durability (attach_journal): every state mutation below appends
        # a redo record before (or, for derived facts like a cleared dirty
        # bit, immediately after) the mutation lands, so snapshot + replay
        # reconstructs this engine after a crash.  ``recovery`` carries the
        # stats of the last recover() for the durability admin endpoint.
        self.journal: Optional["WriteAheadJournal"] = None
        self.recovery: Optional["RecoveryStats"] = None
        # Journal timestamps: engine time is an explicit ``now`` argument,
        # refreshed here at every entry point so nested mutation sites
        # (policy callbacks, _commit_bytes) can stamp records without
        # threading ``now`` through every call chain.
        self._clock = 0.0
        self.entry_gate: Optional[EntryGate] = None
        if config.entry_gate_secret:
            self.entry_gate = EntryGate(config.entry_gate_secret,
                                        config.entry_gate_ttl)
        self._entry_points = {normalize_path(p) for p in entry_points}
        self._last_stats_at: Optional[float] = None
        self._last_ping_at: Optional[float] = None
        self._initialized = False
        # The static configured peer list is retained (the GLT alone
        # forgets dead peers): it is the rediscovery daemon's probe
        # roster and the string -> Location map for journal replay.
        self._configured_peers: List[Location] = list(peers)
        # Peers that rejoined via a path with no manifest in hand
        # (incoming gossip): settle their surviving copies against the
        # next manifest-bearing ping/probe response instead.
        self._reconcile_pending: set = set()
        for peer in self._configured_peers:
            self.glt.register(peer)
            self.membership.register(str(peer), configured=True)

    # ------------------------------------------------------------------
    # Durability: write-ahead journal hooks
    # ------------------------------------------------------------------

    def attach_journal(self, journal: "WriteAheadJournal") -> None:
        """Journal every state mutation from here on.

        The migration policy's decision callback (wired at construction)
        already routes *every* decision site — periodic rounds, forced
        migrations, dead-peer revocations — through
        :meth:`_on_decision`, which journals when a journal is attached.
        """
        self.journal = journal
        self.policy.on_decision = self._on_decision

    def _journal(self, kind: str, **fields: object) -> None:
        if self.journal is not None:
            self.journal.append(kind, self._clock, **fields)

    def _on_decision(self, decision: MigrationDecision) -> None:
        """Publish one applied migration decision.

        Journals it (when a journal is attached) and bumps the seqlock
        stamps of every shard the decision touched, so decisions applied
        outside the bracketed periodic paths — admin force-migrations,
        for example — still invalidate in-flight lock-free reads.  (The
        periodic paths additionally bracket whole decision *rounds* with
        ``shards.write_all``.)
        """
        self._journal_decision(decision)
        with self.shards.write(decision.name, *decision.dirtied):
            pass

    def _journal_decision(self, decision: MigrationDecision) -> None:
        """Journal one applied migration decision as *resulting state*.

        Recording the post-decision location/replicas/versions (rather
        than the operation) makes replay a plain state install: applying
        a record twice is the same as once, and the replica-discard flavor
        of ``revoke`` (document still migrated, one replica gone) needs no
        special casing.
        """
        if self.journal is None:
            return
        record = self.graph.find(decision.name)
        restored = self.policy.restored(decision.name)
        dirtied = []
        for name in decision.dirtied:
            touched = self.graph.find(name)
            if touched is not None:
                dirtied.append([name, touched.version])
        self._journal(
            decision.kind,
            name=decision.name,
            location=str(record.location) if record else str(self.location),
            replicas=sorted(str(r) for r in record.replicas) if record else [],
            version=record.version if record else 0,
            dirtied=dirtied,
            migrated_at=restored[1] if restored else None)

    # ------------------------------------------------------------------
    # Initialization: scan the store, parse documents, build the LDG
    # (paper section 3.3: "computed upon initialization of the web server
    # by scanning its disk and parsing the documents")
    # ------------------------------------------------------------------

    def initialize(self, now: float = 0.0) -> None:
        if self._initialized:
            return
        names = self.store.names()
        sources: Dict[str, bytes] = {}
        for name in names:
            if is_migrated_path(name):
                continue  # cached co-op copies are not home documents
            content_type = guess_content_type(name)
            data = self.store.get(name)
            self.graph.add_document(
                name, size=len(data), content_type=content_type,
                entry_point=name in self._entry_points)
            record = self.graph.find(name)
            if record is not None:
                record.digest = body_digest(data)
            if content_type.startswith("text/html"):
                sources[name] = data
        for name, data in sources.items():
            self.stats.parses += 1
            link_names = self._index_html(name, data)
            self.graph.set_links(name, link_names)
        self._last_stats_at = now
        self._last_ping_at = now
        self._initialized = True

    def _index_html(self, base_name: str, data: bytes) -> List[str]:
        """One parse, two products: the document's link names for the LDG
        and a fresh link template for splice reconstruction."""
        document = parse_html(data.decode("latin-1"))
        if self.config.link_templates:
            self._templates[base_name] = build_link_template(document)
            self.stats.template_builds += 1
        names: List[str] = []
        for link in extract_links(document):
            resolved = self._resolve_to_name(base_name, link.value)
            if resolved is not None:
                names.append(resolved)
        return names

    def _resolve_to_name(self, base_name: str, raw: str) -> Optional[str]:
        """Map a raw hyperlink value to a same-site document name.

        Handles relative links, absolute links to this server, and links
        previously rewritten into migrated form pointing back at us.
        Returns ``None`` for off-site references.
        """
        raw = strip_fragment(raw).strip()
        if not raw:
            return None
        base = URL(self.location.host, self.location.port, base_name)
        try:
            resolved = join_url(base, raw)
        except Exception:
            return None
        path = normalize_path(resolved.path)
        if is_migrated_path(path):
            try:
                home, original = decode_migrated_path(path)
            except NamingError:
                return None
            return original if home == self.location else None
        if resolved.host == self.location.host and resolved.port == self.location.port:
            return path
        return None

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    def handle_request(self, request: Request, now: float
                       ) -> Union[EngineReply, PullFromHome,
                                  RegenerateAndServe]:
        """Process one client or peer request.

        Returns a finished :class:`EngineReply`; a :class:`PullFromHome`
        directive when a migrated document must first be fetched lazily;
        or a :class:`RegenerateAndServe` directive when the host asked to
        run dirty-document regeneration itself (off its engine lock).
        """
        self._clock = now
        path = normalize_path(request.path)
        if path == HEALTH_PATH:
            # Monitoring traffic: answered before any accounting so
            # probes never inflate hit counters or the CPS/BPS metrics,
            # and never bounce off the entry gate.
            return self._handle_health(request)
        self.stats.requests += 1
        self._absorb_piggyback(request.headers)
        if path.startswith(ADMIN_PREFIX):
            return self._handle_admin(request, path, now)
        if is_migrated_path(path):
            try:
                home, original = decode_migrated_path(path)
            except NamingError:
                return self._finish(request, error_response(
                    StatusCode.BAD_REQUEST, "malformed ~migrate path"), now)
            if home == self.location:
                # Migrated-form URL for our own document, e.g. after a
                # revocation raced a stale link: serve it as local.
                return self._handle_local(request, original, now)
            return self._handle_coop(request, path, home, original, now)
        return self._handle_local(request, path, now)

    # -- lock-free fast path for clean cached reads ----------------------

    def fast_lookup(self, request: Request, now: float) -> Optional[_FastHit]:
        """Try to resolve *request* as a clean cached read, LOCK-FREE.

        Hosts call this before taking their engine lock.  Only the
        plainest requests qualify — an unconditional client GET/HEAD of
        a clean, local, unreplicated, cached document — and the result
        is validated against the shard's seqlock stamp: any concurrent
        mutation of the shard sends the caller to the locked slow path.
        Nothing here mutates engine state; all accounting happens in
        :meth:`fast_commit` under the host's lock, so every counter
        stays exactly as accurate as the single-lock engine's.
        """
        if request.method not in ("GET", "HEAD"):
            return None
        if self.entry_gate is not None:
            # Gate checks and cookie issuance are time-dependent per
            # request; gated sites always take the slow path.
            return None
        headers = request.headers
        if headers.get(PURPOSE_HEADER) is not None \
                or headers.get(VERSION_HEADER) is not None \
                or extract_sender(headers):
            return None  # peer traffic: piggyback/validation semantics
        if headers.get("Range") is not None \
                or headers.get("If-None-Match") is not None \
                or headers.get("If-Modified-Since") is not None:
            return None  # conditional/partial: slow-path negotiation
        path = normalize_path(request.path)
        if path == HEALTH_PATH or path.startswith(ADMIN_PREFIX) \
                or is_migrated_path(path):
            return None
        shard = self.shards.shard_of(path)
        stamp = self.shards.read(shard)
        if stamp is None:
            return None  # writer active in this shard right now
        record = self.graph.find(path)
        if record is None or record.dirty or record.replicas \
                or record.location != self.location:
            return None
        cached = self.response_cache.get(path, record.version,
                                         request.method)
        if cached is None:
            return None
        response, kind = self._render_entity(request, cached)
        if kind not in ("identity", "gzip"):
            return None  # unreachable without Range, but stay defensive
        response.headers.set(VERSION_HEADER, cached.version)
        if self.shards.read(shard) != stamp:
            # A writer completed (or started) between our first stamp
            # read and here: everything read above may be torn.
            return None
        return _FastHit(shard=shard, stamp=stamp, record=record,
                        cached=cached, response=response, kind=kind)

    def fast_commit(self, hit: _FastHit, request: Request,
                    now: float) -> Optional[EngineReply]:
        """Book a :meth:`fast_lookup` hit (host holds the engine lock).

        The stamp re-check here is definitive — every mutation runs
        under the same lock — so a ``None`` return (fall back to
        :meth:`handle_request`) is the only alternative to a reply
        counted exactly like the slow path would have counted it.
        """
        if self.shards.read(hit.shard) != hit.stamp:
            return None
        self._clock = now
        self.stats.requests += 1
        hit.record.record_hit()
        if hit.kind == "gzip" and hit.cached.gzip_body is not None:
            self.stats.gzip_responses += 1
            self.stats.gzip_bytes_saved += \
                hit.cached.content_length - len(hit.cached.gzip_body)
        self.stats.responses_200 += 1
        return self._finish(request, hit.response, now,
                            doc_name=hit.record.name)

    # -- administrative endpoints (/~dcws/...) ---------------------------

    def _handle_admin(self, request: Request, path: str,
                      now: float) -> EngineReply:
        from repro.server import admin

        endpoint = path[len(ADMIN_PREFIX):]
        renderer = admin.ENDPOINTS.get(endpoint)
        if renderer is None:
            return self._finish(request, error_response(
                StatusCode.NOT_FOUND,
                f"unknown admin endpoint; try {sorted(admin.ENDPOINTS)}"),
                now, doc_name=path)
        # Renderers are pure functions of the engine; age computations
        # (e.g. /~dcws/peers GLT row age) read the request's clock here.
        self._admin_now = now
        body = renderer(self).encode("latin-1", "replace")
        response = Response(status=StatusCode.OK,
                            body=b"" if request.method == "HEAD" else body)
        response.headers.set("Content-Type", "text/plain")
        response.headers.set("Content-Length", str(len(body)))
        return self._finish(request, response, now, doc_name=path)

    def _handle_health(self, request: Request) -> EngineReply:
        """The accounting-free ``/~dcws/health`` probe.

        Framing headers are set here directly (this path skips
        :meth:`_finish` on purpose — no metrics, no byte counters, no
        piggyback) so keep-alive probes still frame correctly.
        """
        from repro.server import admin

        body = admin.render_health(self).encode("latin-1", "replace")
        response = Response(status=StatusCode.OK,
                            body=b"" if request.method == "HEAD" else body)
        response.headers.set("Content-Type", "text/plain")
        response.headers.set("Content-Length", str(len(body)))
        if self.config.keep_alive and request_wants_keep_alive(request):
            response.headers.set("Connection", "keep-alive")
        else:
            response.headers.set("Connection", "close")
        return EngineReply(response=response, doc_name=HEALTH_PATH)

    # -- local (home-server) documents ---------------------------------

    def _handle_local(self, request: Request, path: str, now: float
                      ) -> Union[EngineReply, RegenerateAndServe]:
        record = self.graph.find(path)
        if record is None:
            self.stats.responses_404 += 1
            return self._finish(request, error_response(
                StatusCode.NOT_FOUND, f"no such document: {path}"), now,
                doc_name=path)
        record.record_hit()
        purpose = request.headers.get(PURPOSE_HEADER)
        sender = extract_sender(request.headers)
        privileged = (purpose in ("migration-pull", "validation")
                      and self._sender_is_assigned(sender, record))
        if sender and request.headers.get(QUARANTINE_HEADER):
            # A peer reports its copy of this document as corrupt (and,
            # for a re-pull, must not be served its own bad copy back):
            # drop the holder, repair the group, and point it home.
            return self._holder_quarantined(request, record, sender, now)
        if self.entry_gate is not None and not record.entry_point \
                and not sender and not self._gate_passes(request, now):
            return self._gate_bounce(request, now, doc_name=record.name)
        if record.location != self.location and not privileged:
            # Migrated away: 301 to the current location (section 4.4).
            # Pull and validation requests from the *assigned* co-op are
            # the exception: the home keeps the permanent copy and must
            # serve it.  A co-op that is no longer the document's host
            # (the home re-migrated it) gets the same 301 — that is how
            # it learns to stop serving its stale copy.
            target = self._pick_location(record, salt=request.target)
            location_url = migrated_url(target, self.location, path)
            self.metrics.record_redirect(now)
            self.stats.responses_301 += 1
            response = redirect_response(str(location_url))
            if self.replication is not None:
                # Stamp the live replica set so requesters can apply
                # two-choices — and fail over — without asking again.
                live = self.replication.live_holders(path)
                if len(live) > 1:
                    response.headers.set(
                        REPLICAS_HEADER,
                        ",".join(str(loc) for loc in live))
            reply = self._finish(request, response, now, doc_name=path)
            return reply
        return self._serve_home_document(request, record, now)

    def _serve_home_document(self, request: Request, record: DocumentRecord,
                             now: float
                             ) -> Union[EngineReply, RegenerateAndServe]:
        # A validating co-op reports the hits its hosted copy absorbed;
        # credit them so selection/re-migration/replication see real
        # demand for documents that no longer generate local hits.
        reported = request.headers.get_int(HOSTED_HITS_HEADER, 0) or 0
        if reported > 0:
            record.record_hit(reported)
        if self.integrity.is_quarantined(record.name) \
                and not (record.dirty and record.is_html
                         and record.name in self._templates):
            # Quarantined with no regeneration path to repair it (only a
            # dirty HTML document regenerates from the in-memory link
            # template, replacing the corrupt bytes): refuse to serve the
            # bad copy rather than hand out a body that fails its digest.
            response = error_response(StatusCode.SERVICE_UNAVAILABLE,
                                      "content integrity failure")
            response.headers.set("Retry-After", "5")
            self.stats.responses_503 += 1
            return self._finish(request, response, now, doc_name=record.name)
        reconstructed = False
        spliced = False
        if record.dirty and record.is_html:
            if self.overloaded and self.config.tiered_shedding:
                # Tier 2 of overload handling: a dirty document needs a
                # regeneration pass before it can be served — refuse that
                # expense while the front end reports pressure.  Clean
                # documents (the cheap tier) keep serving below.
                return self._shed(request, now, doc_name=record.name,
                                  kind="regeneration")
            if self.defer_regeneration:
                # Lock-scope reduction: hand the splice to the host so the
                # string work runs outside the engine lock.
                return RegenerateAndServe(name=record.name,
                                          version=record.version,
                                          request=request)
            spliced = self._regenerate(record)
            reconstructed = True
            self.metrics.record_reconstruction(now)
            self.stats.reconstructions += 1
            if spliced:
                self.stats.splices += 1
        return self._respond_home(request, record, now,
                                  reconstructed=reconstructed,
                                  spliced=spliced)

    def _respond_home(self, request: Request, record: DocumentRecord,
                      now: float, *, reconstructed: bool = False,
                      spliced: bool = False) -> EngineReply:
        """Render (or reuse) the response for a clean home document."""
        # Conditional validation support (section 4.5): a co-op re-request
        # carrying our current version gets a cheap 304 — no store read.
        peer_version = request.headers.get(VERSION_HEADER)
        if peer_version is not None and peer_version == str(record.version):
            response = Response(status=StatusCode.NOT_MODIFIED)
            response.headers.set(VERSION_HEADER, str(record.version))
            self.stats.responses_304 += 1
            return self._finish(request, response, now, doc_name=record.name,
                                reconstructed=reconstructed, spliced=spliced)
        # Client conditional GET: validators derive from (name, version),
        # so both the 304 check and the 304 itself need no store read.
        # Safe because every byte change bumps the version (author updates
        # directly; migration events dirty referrers with a bump, and
        # dirty documents regenerate before reaching this point).
        etag = etag_for(record.name, record.version)
        last_modified = last_modified_for(record.version)
        if not_modified(request.headers, etag, last_modified):
            response = Response(status=StatusCode.NOT_MODIFIED)
            response.headers.set("ETag", etag)
            response.headers.set("Last-Modified", last_modified)
            response.headers.set(VERSION_HEADER, str(record.version))
            self.stats.responses_304 += 1
            self.stats.conditional_304s += 1
            return self._finish(request, response, now, doc_name=record.name,
                                reconstructed=reconstructed, spliced=spliced)
        if self.sendfile_enabled and request.method == "GET" \
                and request.headers.get("Range") is None \
                and (self.entry_gate is None or not record.entry_point):
            # Zero-copy delivery of large disk-backed bodies: hand the
            # transport a FileBody for os.sendfile instead of reading the
            # bytes.  Deliberately bypasses the byte/response caches so
            # one big file cannot flush the hot set; small documents (or
            # ones already byte-cached) keep the cached path below.
            source = self.store.sendfile_source(record.name)
            if source is not None \
                    and source[1] >= self.config.sendfile_min_bytes:
                disk_path, size = source
                response = Response(
                    status=StatusCode.OK,
                    body_file=FileBody(path=disk_path, size=size))
                response.headers.set("Content-Type", record.content_type)
                response.headers.set("Content-Length", str(size))
                response.headers.set("Accept-Ranges", "bytes")
                response.headers.set("ETag", etag)
                response.headers.set("Last-Modified", last_modified)
                response.headers.set(VERSION_HEADER, str(record.version))
                if record.digest:
                    # Stamped from the record, not from re-hashing the
                    # file: in-transit verification must not cost the
                    # zero-copy path a body read.
                    response.headers.set(DIGEST_HEADER, record.digest)
                self.stats.responses_200 += 1
                return self._finish(request, response, now,
                                    doc_name=record.name,
                                    reconstructed=reconstructed,
                                    spliced=spliced)
        cached = self.response_cache.get(record.name, record.version,
                                         request.method)
        if cached is None:
            data = self.store.get(record.name)
            # Sampled serve-path integrity check: every Nth cache miss
            # re-hashes the bytes just read against the recorded digest,
            # so bit-rot on a document the scrubber has not reached yet
            # is still caught before the body leaves the server.
            if record.digest and self.integrity.sample_serve() \
                    and not digest_matches(data, record.digest):
                return self._quarantine_home(request, record,
                                             body_digest(data), now)
            gzip_body = None
            if request.method == "GET" and self.config.gzip_enabled:
                gzip_body = maybe_gzip(data, record.content_type,
                                       self.config.gzip_min_bytes)
            cached = CachedResponse(
                body=b"" if request.method == "HEAD" else data,
                content_length=len(data),
                content_type=record.content_type,
                version=str(record.version),
                etag=etag,
                last_modified=last_modified,
                gzip_body=gzip_body,
                digest=record.digest)
            self.response_cache.put(record.name, record.version,
                                    request.method, cached)
        response = self._entity_response(request, cached)
        response.headers.set(VERSION_HEADER, cached.version)
        if self.entry_gate is not None and record.entry_point:
            # Gate cookies are time-dependent, so they are applied per
            # request on top of the cached rendering.
            response.headers.set("Set-Cookie", build_set_cookie(
                COOKIE_NAME, self.entry_gate.issue(now),
                max_age=int(self.config.entry_gate_ttl)))
        return self._finish(request, response, now, doc_name=record.name,
                            reconstructed=reconstructed, spliced=spliced)

    def _render_entity(self, request: Request, cached: CachedResponse
                       ) -> Tuple[Response, str]:
        """Build the 200/206/416 for one cached rendering — PURE.

        Negotiates ``Range`` (single byte range against the identity
        representation) and ``Accept-Encoding: gzip`` (the pre-compressed
        variant stored at cache-fill time).  The validators ride on every
        flavor so a client can revalidate whatever it received.  No
        counter is touched here: the lock-free fast path renders outside
        the engine lock and books the outcome later (in
        :meth:`fast_commit`); the slow path books it immediately in
        :meth:`_entity_response`.  Returns the response plus its kind —
        ``"identity"``, ``"gzip"``, ``"206"`` or ``"416"``.  The identity
        and gzip bodies are the *shared* cached bytes objects, never a
        copy.
        """
        response = Response(status=StatusCode.OK, body=cached.body)
        response.headers.set("Content-Type", cached.content_type)
        response.headers.set("Content-Length", str(cached.content_length))
        response.headers.set("Accept-Ranges", "bytes")
        if cached.etag:
            response.headers.set("ETag", cached.etag)
        if cached.last_modified:
            response.headers.set("Last-Modified", cached.last_modified)
        if cached.gzip_body is not None:
            # The representation depends on Accept-Encoding whenever a
            # compressed variant exists — even when this response is the
            # identity one — or a shared cache would serve gzip to all.
            response.headers.set("Vary", "Accept-Encoding")
        range_header = request.headers.get("Range")
        if range_header and request.method == "GET":
            span = parse_range(range_header, cached.content_length)
            if span is RANGE_UNSATISFIABLE:
                response.status = StatusCode.RANGE_NOT_SATISFIABLE
                response.body = b""
                response.headers.set("Content-Length", "0")
                response.headers.set(
                    "Content-Range", f"bytes */{cached.content_length}")
                return response, "416"
            if span is not None:
                start, end = span
                response.status = StatusCode.PARTIAL_CONTENT
                response.body = cached.body[start:end + 1]
                response.headers.set("Content-Range",
                                     content_range(span,
                                                   cached.content_length))
                response.headers.set("Content-Length", str(end - start + 1))
                return response, "206"
        if cached.gzip_body is not None and request.method == "GET" \
                and accepts_gzip(request.headers):
            response.body = cached.gzip_body
            response.headers.set("Content-Encoding", "gzip")
            response.headers.set("Content-Length",
                                 str(len(cached.gzip_body)))
            if cached.digest:
                # The digest always covers the identity entity; a gzip
                # recipient verifies after decoding (the pool skips
                # encoded bodies, the real client gunzips first).
                response.headers.set(DIGEST_HEADER, cached.digest)
            return response, "gzip"
        if cached.digest:
            response.headers.set(DIGEST_HEADER, cached.digest)
        return response, "identity"

    def _entity_response(self, request: Request,
                         cached: CachedResponse) -> Response:
        """Render one cached entity and book the outcome counters
        (slow path; the host's engine lock is held)."""
        response, kind = self._render_entity(request, cached)
        if kind == "416":
            self.stats.responses_416 += 1
        elif kind == "206":
            self.stats.responses_206 += 1
        else:
            if kind == "gzip" and cached.gzip_body is not None:
                self.stats.gzip_responses += 1
                self.stats.gzip_bytes_saved += \
                    cached.content_length - len(cached.gzip_body)
            self.stats.responses_200 += 1
        return response

    def _shed(self, request: Request, now: float, *, doc_name: str,
              kind: str) -> EngineReply:
        """Refuse one expensive request under overload (tier 2 shedding):
        503 + Retry-After, counted as a drop so advertised load rises."""
        reply = error_response(StatusCode.SERVICE_UNAVAILABLE,
                               "server overloaded; retry shortly")
        reply.headers.set("Retry-After", "1")
        self.stats.responses_503 += 1
        if kind == "regeneration":
            self.stats.regenerations_shed += 1
        else:
            self.stats.pulls_shed += 1
        self.metrics.record_drop(now)
        self.log.record(now, "shed", name=doc_name, what=kind)
        return self._finish(request, reply, now, doc_name=doc_name)

    def _gate_passes(self, request: Request, now: float) -> bool:
        cookie_header = request.headers.get("Cookie", "") or ""
        token = parse_cookie_header(cookie_header).get(COOKIE_NAME)
        assert self.entry_gate is not None
        return self.entry_gate.validate(token, now)

    def _gate_bounce(self, request: Request, now: float, *,
                     doc_name: str, home: Optional[Location] = None
                     ) -> EngineReply:
        """Redirect an ungated deep link to the site's front door
        (section 3.1: "force them to come in the front door")."""
        front_host = home if home is not None else self.location
        entries = sorted(self._entry_points) or ["/"]
        front_door = str(home_url(front_host, entries[0])) \
            if home is None else str(home_url(front_host, "/"))
        response = Response(status=StatusCode.FOUND)
        response.headers.set("Location", front_door)
        response.headers.set("Content-Type", "text/html")
        response.body = (f'<html><body>Please enter via '
                         f'<a href="{front_door}">{front_door}</a>'
                         f'</body></html>').encode("latin-1")
        self.metrics.record_redirect(now)
        return self._finish(request, response, now, doc_name=doc_name)

    def _sender_is_assigned(self, sender: str,
                            record: DocumentRecord) -> bool:
        """Is *sender* (a ``host:port`` string) a current host of *record*?"""
        if not sender:
            return False
        return any(sender == str(location)
                   for location in record.locations())

    def _pick_location(self, record: DocumentRecord, salt: str) -> Location:
        """Choose among a migrated document's locations.

        With the prototype's single-location rule this is just the primary;
        with replication enabled the choice is a deterministic hash so load
        spreads without per-request state.
        """
        if self.replication is not None:
            # Replication groups: power-of-two-choices over the live
            # holders, weighted by last-known GLT load.
            return self.replication.pick(record, salt)
        locations = sorted(record.locations(), key=str)
        if len(locations) == 1:
            return locations[0]
        index = hash((record.name, salt)) % len(locations)
        return locations[index]

    # -- co-op (migrated) documents -------------------------------------

    def _handle_coop(self, request: Request, key: str, home: Location,
                     original: str, now: float) -> Union[EngineReply, PullFromHome]:
        if self.entry_gate is not None \
                and not extract_sender(request.headers) \
                and not self._gate_passes(request, now):
            return self._gate_bounce(request, now, doc_name=key,
                                     home=home)
        hosted = self.hosted.get(key)
        if hosted is None:
            hosted = HostedDocument(key=key, home=home, original=original,
                                    content_type=guess_content_type(original))
            self.hosted[key] = hosted
        hosted.hits += 1
        if not hosted.fetched:
            if self.overloaded and self.config.tiered_shedding:
                # First-use pull is the co-op's expensive tier: refuse it
                # under pressure; already-fetched copies keep serving.
                return self._shed(request, now, doc_name=key, kind="pull")
            # Lazy migration, sub-condition 1 (section 4.2): no local copy
            # yet — pull from the home server, then serve and cache.
            return self._start_pull(request, key, home, original)
        # Hosted copies carry the home's version, so client conditional
        # GETs validate here without touching the store — a versionless
        # copy (legacy pull) simply skips the validator machinery.
        etag = etag_for(key, hosted.version) if hosted.version else ""
        last_modified = last_modified_for(hosted.version) \
            if hosted.version else ""
        if etag and not_modified(request.headers, etag, last_modified):
            response = Response(status=StatusCode.NOT_MODIFIED)
            response.headers.set("ETag", etag)
            response.headers.set("Last-Modified", last_modified)
            self.stats.responses_304 += 1
            self.stats.conditional_304s += 1
            return self._finish(request, response, now, doc_name=key)
        cached = self.response_cache.get(key, hosted.version, request.method) \
            if hosted.version else None
        if cached is None:
            try:
                data = self.store.get(key)
            except DocumentNotFound:
                # The entry says fetched but the bytes are gone — a
                # restart recovered the registration without the copy, or
                # the file was lost.  Degrade to a fresh pull instead of
                # 404ing a document the home migrated here.
                hosted.fetched = False
                hosted.version = ""
                self.response_cache.invalidate(key)
                self.log.record(now, "pull", key=key, reason="missing-bytes")
                return self._start_pull(request, key, home, original)
            # Sampled serve-path integrity check, co-op flavor: a hosted
            # copy that fails its digest is dropped and re-pulled (the
            # pull carries the quarantine flag so the home repairs the
            # group), never served corrupt.
            if hosted.digest and self.integrity.sample_serve() \
                    and not digest_matches(data, hosted.digest):
                self._quarantine_hosted(hosted, REASON_SERVE,
                                        body_digest(data), now)
                return self._start_pull(request, key, home, original)
            gzip_body = None
            if request.method == "GET" and self.config.gzip_enabled:
                gzip_body = maybe_gzip(data, hosted.content_type,
                                       self.config.gzip_min_bytes)
            cached = CachedResponse(
                body=b"" if request.method == "HEAD" else data,
                content_length=len(data),
                content_type=hosted.content_type,
                version=hosted.version,
                etag=etag,
                last_modified=last_modified,
                gzip_body=gzip_body,
                digest=hosted.digest)
            if hosted.version:
                # Never cache versionless copies: two pulls of the same
                # key could then collide across re-migrations.
                self.response_cache.put(key, hosted.version, request.method,
                                        cached)
        response = self._entity_response(request, cached)
        return self._finish(request, response, now, doc_name=key)

    def _start_pull(self, request: Request, key: str, home: Location,
                    original: str) -> PullFromHome:
        """Directive to fetch a hosted document's bytes from its home."""
        self.stats.pulls_started += 1
        pull_request = Request(method="GET", target=original)
        self._attach_piggyback(pull_request.headers)
        pull_request.headers.set(PURPOSE_HEADER, "migration-pull")
        if self.integrity.is_quarantined(key):
            # Tell the home this pull replaces a quarantined copy, so it
            # drops us as a holder and repairs the replication group from
            # a verified copy — never from ours.
            pull_request.headers.set(QUARANTINE_HEADER, "1")
        return PullFromHome(key=key, home=home, original=original,
                            request=pull_request, client_request=request)

    def complete_pull(self, pull: PullFromHome, response: Optional[Response],
                      now: float, *, home_down: bool = False,
                      rtt: Optional[float] = None,
                      corrupt: bool = False) -> EngineReply:
        """Finish a lazy-migration pull: cache the bytes and serve them.

        ``response=None`` means the transfer failed; the reply degrades
        gracefully instead of erroring (302 back to the home — the client
        may well reach it even when we cannot — or, when *home_down* says
        the home's circuit is open, 503 + Retry-After so clients back
        off).  Transport failures feed :attr:`health` exactly like failed
        pings, so a dead home is declared from the data path.

        ``corrupt=True`` means the transport-layer digest check rejected
        the body (and the pool's one-shot retry failed too): the reply is
        a 302 to the home, and nothing corrupt is installed or served.
        """
        self._clock = now
        if corrupt:
            return self._reject_corrupt_pull(pull, now)
        hosted = self.hosted.get(pull.key)
        if hosted is None:
            # The entry was discarded while the pull was in flight (e.g.
            # a validation learned the home dropped the document).
            hosted = HostedDocument(key=pull.key, home=pull.home,
                                    original=pull.original,
                                    content_type=guess_content_type(pull.original))
            self.hosted[pull.key] = hosted
        if response is not None and response.status in (
                StatusCode.MOVED_PERMANENTLY, StatusCode.FOUND):
            # The home says we are not (or no longer) this document's
            # host: forward the redirect to the client, keep nothing.
            self._absorb_piggyback(response.headers)
            with self.shards.write(pull.key):
                self._journal("hosted_dropped", key=pull.key)
                self.hosted.pop(pull.key, None)
                self.validation.forget(pull.key)
                self.response_cache.invalidate(pull.key)
                self._clear_quarantine(pull.key)
            forwarded = redirect_response(
                response.headers.get("Location", "") or "")
            self.stats.responses_301 += 1
            return self._finish(pull.client_request, forwarded, now,
                                doc_name=pull.key)
        if response is None or response.status >= 500:
            # Home unreachable, circuit open, or home erroring: degrade.
            # The hosted entry stays so a later request retries the pull.
            return self._degrade_pull(pull, response, now,
                                      home_down=home_down)
        if response.status != StatusCode.OK:
            # The home answered with something unexpected (4xx): shed the
            # request; keep the entry so a later request retries the pull.
            self.log.record(now, "pull_failed", key=pull.key,
                            status=int(response.status))
            self.stats.responses_404 += 1
            return self._finish(pull.client_request,
                                error_response(response.status,
                                               "pull from home failed"),
                                now, doc_name=pull.key)
        self._absorb_piggyback(response.headers)
        self._peer_success(str(pull.home), now, rtt=rtt)
        # Belt-and-braces digest verification at install time: the pool
        # already rejected mismatching bodies in transit, but fault-free
        # transports (the simulator, a future HTTP client) land here too.
        claimed = response.headers.get(DIGEST_HEADER, "") or ""
        if claimed and not digest_matches(response.body, claimed):
            return self._reject_corrupt_pull(pull, now)
        content_type = response.headers.get("Content-Type") \
            or hosted.content_type
        # Journal before the byte write: a crash in between recovers the
        # hosted entry as unfetched, and the next request re-pulls — lost
        # work, never lost state.
        with self.shards.write(pull.key):
            self._journal("pull", key=pull.key, home=str(pull.home),
                          original=pull.original, size=len(response.body),
                          version=response.headers.get(VERSION_HEADER, "")
                          or "",
                          content_type=content_type,
                          digest=claimed or body_digest(response.body))
            self.store.put(pull.key, response.body)
            self.response_cache.invalidate(pull.key)
            hosted.fetched = True
            hosted.size = len(response.body)
            hosted.version = response.headers.get(VERSION_HEADER, "") or ""
            hosted.digest = claimed or body_digest(response.body)
            if content_type:
                hosted.content_type = content_type
            self._clear_quarantine(pull.key)
        # Jitter each document's first validation deadline so documents
        # pulled in a burst (e.g. right after a warm start) do not
        # re-validate in synchronized storms that flood the home server.
        jitter = (hash(pull.key) % 997) / 997.0
        self.validation.register(
            pull.key, now - jitter * self.config.validation_interval)
        self.log.record(now, "pull", key=pull.key, home=str(pull.home),
                        bytes=hosted.size)
        self.stats.pulls_completed += 1
        client_response = Response(status=StatusCode.OK, body=response.body)
        client_response.headers.set("Content-Type", hosted.content_type)
        client_response.headers.set("Content-Length", str(len(response.body)))
        if hosted.digest:
            client_response.headers.set(DIGEST_HEADER, hosted.digest)
        self.stats.responses_200 += 1
        return self._finish(pull.client_request, client_response, now,
                            doc_name=pull.key)

    def _reject_corrupt_pull(self, pull: PullFromHome,
                             now: float) -> EngineReply:
        """A pull whose body failed digest verification: count it, keep
        nothing, and 302 the client to the home — the home answered, so
        corruption is not evidence of death and the client can still be
        served a good copy from the source."""
        self.integrity.counters.pulls_rejected += 1
        self.log.record(now, "pull_rejected", key=pull.key,
                        home=str(pull.home), reason="digest")
        return self._degrade_pull(pull, None, now, home_down=False,
                                  corrupt=True)

    def _degrade_pull(self, pull: PullFromHome,
                      response: Optional[Response], now: float, *,
                      home_down: bool, corrupt: bool = False) -> EngineReply:
        """Answer a failed pull without a 5xx of our own making.

        Transport failure with the circuit still closed → 302 back to the
        home (the client may reach it even when we cannot).  Circuit open
        or home answering 5xx → 503 + Retry-After, the paper's overload
        rule: clients back off instead of hammering a known-bad path.
        A digest-rejected pull (*corrupt*) always takes the redirect arm:
        the home is alive and holds the canonical copy.
        """
        home_key = str(pull.home)
        status = 0 if response is None else int(response.status)
        self.stats.pulls_degraded += 1
        self.log.record(now, "pull_failed", key=pull.key, status=status,
                        home=home_key)
        if response is None and not home_down and not corrupt:
            # A real transport failure we just observed (a breaker-open
            # fast-fail never reached the wire, so it is not evidence —
            # and neither is a digest rejection: the home *answered*):
            # count it toward dead-peer declaration like a failed ping.
            # The membership table keeps this path and the ping path in
            # complete_action from double-declaring within one tick.
            self._peer_failure(pull.home, now)
        if not corrupt and (home_down or response is not None):
            reply = error_response(StatusCode.SERVICE_UNAVAILABLE,
                                   "document temporarily unavailable")
            reply.headers.set("Retry-After", "1")
            self.stats.responses_503 += 1
            self.metrics.record_drop(now)
            self.log.record(now, "pull_degraded", key=pull.key, mode="shed")
            return self._finish(pull.client_request, reply, now,
                                doc_name=pull.key)
        target = str(home_url(pull.home, pull.original))
        reply = redirect_response(target, status=StatusCode.FOUND)
        self.stats.responses_301 += 1
        self.metrics.record_redirect(now)
        self.log.record(now, "pull_degraded", key=pull.key, mode="redirect",
                        target=target)
        return self._finish(pull.client_request, reply, now,
                            doc_name=pull.key)

    # ------------------------------------------------------------------
    # Dirty-document regeneration (section 4.3)
    # ------------------------------------------------------------------

    def _regenerate(self, record: DocumentRecord) -> bool:
        """Rewrite hyperlinks to current locations and write back.

        Uses the link-template splice when a template is available —
        replacement URLs are spliced into the canonical source without
        re-parsing — and falls back to the full parse → rewrite →
        serialize round trip otherwise.  Returns True when the fast path
        was used.
        """
        template = self._template_for(record)
        if template is not None:
            regenerated, next_template = template.splice(
                lambda raw: self._rewrite_value(record.name, raw))
            self._templates[record.name] = next_template
            self._commit_bytes(record, regenerated.encode("latin-1"))
            return True
        source = self.store.get(record.name).decode("latin-1")
        document = parse_html(source)
        rewrite_links(document, lambda raw: self._rewrite_value(record.name, raw))
        self._commit_bytes(record, serialize_html(document).encode("latin-1"))
        return False

    def _template_for(self, record: DocumentRecord, *,
                      build: bool = True) -> Optional[LinkTemplate]:
        """The document's current link template, built on demand.

        Templates exist for every home HTML document parsed at
        initialization or update; building here (one parse, no serialize
        round trip) covers documents that appeared by other means.
        """
        if not self.config.link_templates:
            return None
        template = self._templates.get(record.name)
        if template is None and build:
            if self.integrity.is_quarantined(record.name):
                # Never build a template (the regeneration source) from
                # bytes known to be corrupt.
                return None
            try:
                source = self.store.get(record.name).decode("latin-1")
            except DocumentNotFound:
                return None
            template = build_link_template(parse_html(source))
            self._templates[record.name] = template
            self.stats.template_builds += 1
        return template

    def _commit_bytes(self, record: DocumentRecord, data: bytes) -> None:
        """Install regenerated bytes: store, record, response cache."""
        with self.shards.write(record.name):
            self.store.put(record.name, data)
            record.size = len(data)
            record.dirty = False
            record.digest = body_digest(data)
            # Journal *after* the byte write — the record asserts "this
            # version's links are clean on disk", which is only true once
            # the crash-atomic put returned.  A crash in between replays
            # as still-dirty and simply regenerates again.
            self._journal("regenerate", name=record.name,
                          version=record.version, size=record.size,
                          digest=record.digest)
            # Regeneration changes bytes without bumping the version, so
            # the rendered-response cache must be invalidated explicitly.
            self.response_cache.invalidate(record.name)
            # Freshly spliced from the canonical template: whatever was
            # quarantined is repaired by construction.
            self._clear_quarantine(record.name)

    # -- deferred regeneration (threaded host, off the engine lock) ------

    def regeneration_plan(self, name: str) -> Optional[RegenerationPlan]:
        """Capture an off-lock splice plan for *name* (host holds the
        engine lock).  Returns ``None`` when there is nothing to do —
        the double-checked dirty flag: another worker may have already
        regenerated — or no template exists to splice from."""
        record = self.graph.find(name)
        if record is None or not record.dirty or not record.is_html:
            return None
        template = self._template_for(record)
        if template is None:
            return None
        replacements = template.compute_replacements(
            lambda raw: self._rewrite_value(name, raw))
        return RegenerationPlan(name=name, version=record.version,
                                template=template, replacements=replacements)

    def commit_regeneration(self, plan: RegenerationPlan, output: str,
                            next_template: LinkTemplate, now: float) -> bool:
        """Install an off-lock splice result (host holds the engine lock).

        Discarded — returns False — when the document changed while the
        splice ran unlocked (version bump or concurrent regeneration).
        """
        record = self.graph.find(plan.name)
        if record is None or record.version != plan.version \
                or not record.dirty:
            return False
        self._templates[plan.name] = next_template
        self._commit_bytes(record, output.encode("latin-1"))
        self.metrics.record_reconstruction(now)
        self.stats.reconstructions += 1
        self.stats.splices += 1
        return True

    def serve_after_regeneration(self, directive: RegenerateAndServe,
                                 now: float) -> EngineReply:
        """Finish the request a :class:`RegenerateAndServe` deferred
        (host holds the engine lock again)."""
        record = self.graph.find(directive.name)
        if record is not None and record.location == self.location \
                and not record.dirty:
            return self._respond_home(directive.request, record, now,
                                      reconstructed=True, spliced=True)
        # Rare races: the document vanished, migrated away, or was
        # re-dirtied while the splice ran unlocked (the commit was then
        # discarded).  Retake the full path inline; the extra hit this
        # recounts is negligible against the event's rarity.
        deferred = self.defer_regeneration
        self.defer_regeneration = False
        try:
            result = self._handle_local(directive.request, directive.name, now)
        finally:
            self.defer_regeneration = deferred
        assert isinstance(result, EngineReply)
        return result

    def _rewrite_value(self, base_name: str, raw: str) -> Optional[str]:
        """Rewrite one hyperlink to the target's *current* location.

        Same-site links are rewritten to absolute URLs so the containing
        document stays correct wherever it is served from; off-site links
        are left alone.
        """
        name = self._resolve_to_name(base_name, raw)
        if name is None:
            return None
        record = self.graph.find(name)
        if record is None:
            return None
        if record.location == self.location and not record.replicas:
            return str(home_url(self.location, name))
        target = self._pick_location(record, salt=base_name)
        if target == self.location:
            return str(home_url(self.location, name))
        return str(migrated_url(target, self.location, name))

    # ------------------------------------------------------------------
    # Periodic machinery
    # ------------------------------------------------------------------

    def tick(self, now: float) -> List[OutboundAction]:
        """Run any periodic work due at *now*; return transfer directives.

        Hosts call this regularly (the threaded server from its pinger and
        statistics threads, the simulator from scheduled events).
        """
        self._clock = now
        actions: List[OutboundAction] = []
        if self._last_stats_at is None or \
                now - self._last_stats_at >= self.config.stats_interval:
            self._recalculate_statistics(now)
            self._last_stats_at = now
        if self.replication is not None and self.replication.due(now):
            self._repair_round(now)
        if self.integrity.scrub_due(now):
            self._scrub_round(now)
        actions.extend(self._quarantine_notifications(now))
        actions.extend(self._validations_due(now))
        if self._last_ping_at is None or \
                now - self._last_ping_at >= self.config.pinger_interval:
            actions.extend(self._pings_due(now))
            self._last_ping_at = now
        actions.extend(self._membership_due(now))
        return actions

    def _repair_round(self, now: float) -> None:
        """Replication repair daemon: one pass, bracketed like the
        migration round (drops and repairs touch arbitrary shards)."""
        assert self.replication is not None
        with self.shards.write_all():
            decisions = self.replication.repair_round(now)
        self._count_repair_decisions(decisions, now)

    def _count_repair_decisions(self, decisions: List[MigrationDecision],
                                now: float) -> None:
        for decision in decisions:
            self.stats.decisions.append(decision)
            self.log.record(now, decision.kind, name=decision.name,
                            target=str(decision.target),
                            dirtied=len(decision.dirtied))
            if decision.kind == "repair":
                self.stats.repairs += 1
            elif decision.kind == "replica_drop":
                self.stats.replica_drops += 1

    def _recalculate_statistics(self, now: float) -> None:
        """T_st boundary: refresh own GLT row, run migration decisions."""
        own_metric = self.metrics.load_metric(
            now, self.config.load_metric,
            drop_pressure_weight=self.config.drop_pressure_weight)
        self.glt.update_own(own_metric, now)
        # Own GLT row only: piggybacked peer rows are gossip, rebuilt for
        # free after a restart — journaling them would bloat the log with
        # a record per transfer for state that expires in seconds.
        self._journal("glt_row", metric=own_metric)
        # One decision round can relocate documents and dirty their
        # referrers across many shards: bracket the whole round so
        # lock-free readers fall back for its (short) duration.
        with self.shards.write_all():
            decisions = self.policy.consider(now, own_metric)
        for decision in decisions:
            self.stats.decisions.append(decision)
            self.log.record(now, decision.kind, name=decision.name,
                            target=str(decision.target),
                            dirtied=len(decision.dirtied))
            if decision.kind in ("migrate", "remigrate"):
                self.stats.migrations += 1
            elif decision.kind == "revoke":
                self.stats.revocations += 1
            elif decision.kind == "replicate":
                self.stats.replications += 1
        self.graph.reset_windows()

    def _validations_due(self, now: float) -> List[OutboundAction]:
        """Co-op consistency: re-request hosted documents every T_val."""
        actions: List[OutboundAction] = []
        for key in self.validation.due(now):
            hosted = self.hosted.get(str(key))
            if hosted is None or not hosted.fetched:
                self.validation.forget(key)
                continue
            request = Request(method="GET", target=hosted.original)
            self._attach_piggyback(request.headers)
            request.headers.set(PURPOSE_HEADER, "validation")
            if hosted.version:
                request.headers.set(VERSION_HEADER, hosted.version)
            fresh_hits = hosted.hits - hosted.hits_reported
            if fresh_hits > 0:
                request.headers.set(HOSTED_HITS_HEADER, str(fresh_hits))
                hosted.hits_reported = hosted.hits
            actions.append(OutboundAction(kind="validate", peer=hosted.home,
                                          request=request, key=hosted.key))
            self.validation.mark(key, now)
            self.log.record(now, "validate", key=hosted.key)
            self.stats.validations += 1
        return actions

    def _pings_due(self, now: float) -> List[OutboundAction]:
        """Pinger: force a transfer to peers with stale load information."""
        max_age = self.config.staleness_intervals * self.config.pinger_interval
        actions: List[OutboundAction] = []
        for peer in self.glt.stale_peers(now, max_age):
            request = Request(method="HEAD", target="/")
            self._attach_piggyback(request.headers)
            request.headers.set(PURPOSE_HEADER, "ping")
            actions.append(OutboundAction(kind="ping", peer=peer,
                                          request=request))
            self.log.record(now, "ping", peer=str(peer))
            self.stats.pings += 1
        return actions

    def _membership_due(self, now: float) -> List[OutboundAction]:
        """Membership upkeep off the engine tick.

        Applies the accrual sweep (silence-driven ``alive -> suspect``,
        ``suspect -> dead`` through the single declared-dead site,
        ``dead -> forgotten`` ageing) and emits rediscovery probes for
        configured dead/forgotten peers whose jittered exponential
        re-probe period has elapsed.  Each probe first collapses the
        tripped breaker's backoff (:meth:`CircuitBreaker.allow_probe`)
        so it reaches the wire as the half-open trial rather than
        fast-failing locally.
        """
        transitions, deaths = self.membership.sweep(now)
        for peer_key, _old, new in transitions:
            self._journal("membership", peer=peer_key, state=new)
            self.log.record(now, "peer_" + new, peer=peer_key)
        for peer_key in deaths:
            location = self._location_of(peer_key)
            if location is not None:
                self._declare_dead(location, now)
        actions: List[OutboundAction] = []
        for peer_key in self.membership.due_probes(now):
            location = self._location_of(peer_key)
            if location is None:
                continue
            if self.breaker is not None:
                self.breaker.allow_probe(peer_key, now)
            request = Request(method="HEAD", target="/")
            self._attach_piggyback(request.headers)
            request.headers.set(PURPOSE_HEADER, "probe")
            actions.append(OutboundAction(kind="probe", peer=location,
                                          request=request))
            self.membership.probe_sent(peer_key, now)
            self.log.record(now, "reprobe", peer=peer_key)
        return actions

    def complete_action(self, action: OutboundAction,
                        response: Optional[Response], now: float, *,
                        rtt: Optional[float] = None) -> None:
        """Report the outcome of a :class:`OutboundAction`.

        ``response=None`` means the peer did not answer; enough
        consecutive failures (or accrued suspicion) declare it dead, and
        if we are the home of documents it hosted, they are revoked
        (section 4.5, case 3).  ``rtt`` is the host-measured round trip
        of a successful exchange, feeding the per-peer EWMA.
        """
        self._clock = now
        peer_key = str(action.peer)
        if response is None:
            if action.kind == "probe":
                # A rediscovery probe missed: the peer is already dead,
                # so this is not new evidence — just reopen the probe
                # slot (the backoff was advanced at send time).
                self.membership.probe_failed(peer_key, now)
                self.log.record(now, "reprobe_failed", peer=peer_key)
                return
            if action.kind == "validate" and action.key in self.hosted:
                # Transient validation failure: the stale copy keeps
                # serving until a later validation reaches the home.
                self.log.record(now, "validate_stale", key=action.key,
                                peer=peer_key)
            if action.kind == "validate" and action.key:
                # A quarantine notification that never reached the home
                # is re-armed for the next tick.
                qrec = self.integrity.get(action.key)
                if qrec is not None:
                    qrec.notified = False
            self._peer_failure(action.peer, now)
            return
        self._peer_success(peer_key, now, rtt=rtt)
        self._absorb_piggyback(response.headers)
        has_manifest = bool(response.headers.get(HOSTED_MANIFEST_HEADER, ""))
        if action.kind == "probe" or (has_manifest
                                      and peer_key in self._reconcile_pending):
            # Probes always reconcile.  A peer that rejoined through
            # gossip (its own probe reached us first) never gets a probe
            # from our side, so the next manifest-bearing ping response
            # settles its surviving copies instead.
            self._reconcile_pending.discard(peer_key)
            self._reconcile_manifest(action.peer, response.headers, now)
        if action.kind == "validate" and action.key:
            self._finish_validation(action, response, now)

    def _finish_validation(self, action: OutboundAction, response: Response,
                           now: float) -> None:
        hosted = self.hosted.get(action.key)
        if hosted is None:
            return
        if response.status == StatusCode.NOT_MODIFIED:
            return  # copy is current
        if response.status == StatusCode.OK:
            claimed = response.headers.get(DIGEST_HEADER, "") or ""
            if claimed and not digest_matches(response.body, claimed):
                # A refresh body that fails its own digest never replaces
                # the installed copy; the old (verified) bytes keep
                # serving and the next T_val retries.
                self.integrity.counters.pulls_rejected += 1
                self.log.record(now, "validate_rejected", key=hosted.key,
                                reason="digest")
                return
            version = response.headers.get(VERSION_HEADER, "") \
                or hosted.version
            digest = claimed or body_digest(response.body)
            with self.shards.write(hosted.key):
                self._journal("validate_refreshed", key=hosted.key,
                              size=len(response.body), version=version,
                              digest=digest)
                self.store.put(hosted.key, response.body)
                self.response_cache.invalidate(hosted.key)
                hosted.size = len(response.body)
                hosted.version = version
                hosted.digest = digest
                hosted.fetched = True
                self._clear_quarantine(hosted.key)
            self.log.record(now, "validate_refreshed", key=hosted.key,
                            bytes=hosted.size)
            return
        if response.status in (StatusCode.NOT_FOUND,
                               StatusCode.MOVED_PERMANENTLY,
                               StatusCode.FOUND):
            # 404: the home deleted the document.  301/302: the home
            # re-migrated or revoked it — we are no longer its host.
            # Either way, drop our copy; future requests for the old URL
            # pull again and are answered with the home's redirect.
            with self.shards.write(hosted.key):
                self._journal("hosted_dropped", key=hosted.key)
                self.store.delete(hosted.key)
                self.response_cache.invalidate(hosted.key)
                self.validation.forget(hosted.key)
                self.hosted.pop(hosted.key, None)
                self._clear_quarantine(hosted.key)
            return
        # Transient statuses (503 overload, 5xx) keep the copy; the next
        # validation interval retries.
        if response.status >= 500:
            self.log.record(now, "validate_stale", key=hosted.key,
                            status=int(response.status))

    # ------------------------------------------------------------------
    # Content integrity: scrub daemon, quarantine, repair coordination
    # ------------------------------------------------------------------

    def _scrub_round(self, now: float) -> None:
        """One budgeted pass of the background scrubber (engine tick).

        The population is every copy with a recorded digest — home
        documents (the home keeps the permanent copy wherever the
        document is assigned) plus fetched hosted copies — minus copies
        already quarantined.  The manager's cursor picks at most
        ``scrub_budget`` of them; each is re-read from the *underlying*
        store and re-hashed.
        """
        population: List[str] = []
        for record in self.graph.documents():
            if record.digest and not self.integrity.is_quarantined(
                    record.name):
                population.append(record.name)
        for hosted in self.hosted.values():
            if hosted.fetched and hosted.digest \
                    and not self.integrity.is_quarantined(hosted.key):
                population.append(hosted.key)
        for name in self.integrity.scrub_batch(population, now):
            self._scrub_one(name, now)

    def _scrub_one(self, name: str, now: float) -> None:
        """Re-hash one copy against its recorded digest.

        Reads bypass the byte cache (``CachingStore.inner``): the scrub
        exists to catch disk rot, which a warm cache would mask."""
        if self.integrity.is_quarantined(name):
            return  # already caught earlier this round
        store = self.store.inner if isinstance(self.store, CachingStore) \
            else self.store
        try:
            data = store.get(name)
        except DocumentNotFound:
            return  # vanished between population capture and read
        if is_migrated_path(name):
            hosted = self.hosted.get(name)
            if hosted is None or not hosted.digest:
                return
            if not digest_matches(data, hosted.digest):
                self._quarantine_hosted(hosted, REASON_SCRUB,
                                        body_digest(data), now)
            return
        record = self.graph.find(name)
        if record is None or not record.digest:
            return
        if not digest_matches(data, record.digest):
            self._quarantine_home_record(record, REASON_SCRUB,
                                         body_digest(data), now)

    def _quarantine_home_record(self, record: DocumentRecord, reason: str,
                                actual: str, now: float) -> None:
        """Quarantine a home document's bytes: journal, stop serving the
        corrupt copy from any cache, and arm regeneration when the
        in-memory link template (pre-corruption canonical source) can
        rebuild it."""
        with self.shards.write(record.name):
            self.integrity.quarantine(record.name, KIND_HOME, reason,
                                      record.digest, actual, now)
            self._journal("quarantine", key=record.name, copy=KIND_HOME,
                          reason=reason, expected=record.digest,
                          actual=actual)
            self.response_cache.invalidate(record.name)
            if isinstance(self.store, CachingStore):
                self.store.cache.invalidate(record.name)
            if record.is_html and record.name in self._templates:
                # The next serve regenerates from the template; the
                # commit replaces the corrupt bytes and clears this
                # quarantine.
                record.dirty = True
        self.log.record(now, "quarantine", key=record.name, copy=KIND_HOME,
                        reason=reason)

    def _quarantine_home(self, request: Request, record: DocumentRecord,
                         actual: str, now: float) -> EngineReply:
        """Serve-path detection on a home document: quarantine and answer
        503 — never the corrupt body.  (A repairable document regenerates
        on the retry the Retry-After invites.)"""
        self._quarantine_home_record(record, REASON_SERVE, actual, now)
        response = error_response(StatusCode.SERVICE_UNAVAILABLE,
                                  "content integrity failure")
        response.headers.set("Retry-After", "1")
        self.stats.responses_503 += 1
        self.metrics.record_drop(now)
        return self._finish(request, response, now, doc_name=record.name)

    def _quarantine_hosted(self, hosted: HostedDocument, reason: str,
                           actual: str, now: float) -> None:
        """Quarantine a hosted copy: the bytes are deleted and the entry
        reverts to unfetched, so the copy stops being served immediately
        (the next request re-pulls, carrying the quarantine flag so the
        home repairs the replication group from a verified copy)."""
        with self.shards.write(hosted.key):
            self.integrity.quarantine(hosted.key, KIND_HOSTED, reason,
                                      hosted.digest, actual, now)
            self._journal("quarantine", key=hosted.key, copy=KIND_HOSTED,
                          reason=reason, expected=hosted.digest,
                          actual=actual)
            self.store.delete(hosted.key)
            self.response_cache.invalidate(hosted.key)
            if isinstance(self.store, CachingStore):
                self.store.cache.invalidate(hosted.key)
            hosted.fetched = False
            hosted.version = ""
            hosted.digest = ""
            hosted.size = 0
        self.log.record(now, "quarantine", key=hosted.key, copy=KIND_HOSTED,
                        reason=reason)

    def _clear_quarantine(self, key: str) -> None:
        """Lift a quarantine after verified bytes replaced the copy (or
        the copy was dropped entirely).  Journaled so replay converges."""
        if self.integrity.clear(key) is not None:
            self._journal("quarantine_cleared", key=key)
            self.log.record(self._clock, "quarantine_cleared", key=key)

    def _quarantine_notifications(self, now: float) -> List[OutboundAction]:
        """Tell each home about our quarantined copies of its documents.

        Rides the validation machinery: a ``validate``-kind action whose
        request carries ``X-DCWS-Quarantined`` (and no version header, so
        the home cannot answer 304).  The home drops us as a holder and
        answers 301; :meth:`_finish_validation` then discards the entry
        and clears the quarantine.  Failures re-arm in
        :meth:`complete_action` for the next tick.
        """
        actions: List[OutboundAction] = []
        for qrec in self.integrity.pending_notifications():
            hosted = self.hosted.get(qrec.key)
            if hosted is None:
                qrec.notified = True  # entry already gone; nothing to say
                continue
            request = Request(method="GET", target=hosted.original)
            self._attach_piggyback(request.headers)
            request.headers.set(PURPOSE_HEADER, "validation")
            request.headers.set(QUARANTINE_HEADER, "1")
            actions.append(OutboundAction(kind="validate", peer=hosted.home,
                                          request=request, key=hosted.key))
            qrec.notified = True
            self.log.record(now, "quarantine_notify", key=hosted.key,
                            home=str(hosted.home))
        return actions

    def _holder_quarantined(self, request: Request, record: DocumentRecord,
                            sender: str, now: float) -> EngineReply:
        """Home-side handling of ``X-DCWS-Quarantined``: the sender's copy
        of *record* is corrupt.  Treat the holder like a dead one — drop
        it from the replication group (falling back to full revocation
        when no live replica survives) and repair critical-first from a
        verified copy; answer 301 so the reporter discards its entry."""
        holder = self._location_of(sender)
        path = record.name
        if holder is not None and holder != self.location \
                and any(holder == loc for loc in record.locations()) \
                and self.integrity.report_bad_holder(path, holder):
            self.log.record(now, "holder_quarantined", name=path,
                            holder=sender)
            with self.shards.write_all():
                decision = self.policy.drop_holder(path, holder)
                if decision is None:
                    # Not droppable (no live copy would survive beyond
                    # home): full revocation — the document comes home.
                    decision = self.policy.revoke(path)
            self.stats.decisions.append(decision)
            if decision.kind == "replica_drop":
                self.stats.replica_drops += 1
            else:
                self.stats.revocations += 1
            self.integrity.clear_bad_holder(path, holder)
            if self.replication is not None:
                # Repair immediately, critical-first; the replacement
                # holder lazily pulls from copies that passed (or will
                # pass) digest verification — never from the corrupt one,
                # which no longer holds the document.
                repairs_before = self.stats.repairs
                self._repair_round(now)
                self.integrity.counters.repairs_from_verified += \
                    self.stats.repairs - repairs_before
        target = str(home_url(self.location, path))
        response = redirect_response(target)
        self.stats.responses_301 += 1
        self.metrics.record_redirect(now)
        return self._finish(request, response, now, doc_name=path)

    def _peer_available(self, peer: Location) -> bool:
        """Target-selection predicate: only strictly-ALIVE peers behind a
        closed circuit receive new migrations, re-migrations, or
        replicas.  A *suspect* peer — slow, or under early suspicion —
        is excluded here while :meth:`_peer_live` keeps its documents."""
        key = str(peer)
        if self.membership.state(key) != ALIVE:
            return False
        return self.breaker is None or not self.breaker.is_open(key)

    def _peer_live(self, peer: Location) -> bool:
        """Holder-retention/serving predicate: anything not declared
        dead.  Suspect peers keep their hosted documents and keep
        serving — suspicion throttles *placement*, not custody."""
        key = str(peer)
        if self.membership.is_dead(key):
            return False
        return self.breaker is None or not self.breaker.is_open(key)

    def _location_of(self, key: str) -> Optional[Location]:
        """Resolve a peer key back to a Location (configured list first,
        parse fallback for gossip-discovered peers)."""
        for peer in self._configured_peers:
            if str(peer) == key:
                return peer
        try:
            return Location.parse(key)
        except (ValueError, NamingError):
            return None

    def _peer_success(self, peer_key: str, now: float,
                      rtt: Optional[float] = None) -> None:
        """One success observed from *peer_key* (ping, pull, validation,
        probe, or piggybacked gossip): feed health/RTT and the accrual
        detector; apply and journal any membership recovery."""
        self.health.record_success(peer_key, now, rtt=rtt)
        transition = self.membership.heartbeat(peer_key, now)
        if transition is None:
            return
        old, _new = transition
        self._journal("membership", peer=peer_key, state=ALIVE)
        if old in (DEAD, FORGOTTEN):
            self._peer_rejoined(peer_key, now)
        else:
            self.log.record(now, "peer_recovered", peer=peer_key)

    def _peer_failure(self, peer: Location, now: float) -> None:
        """One explicit transport failure toward *peer*: the membership
        table escalates alive -> suspect immediately and recommends DEAD
        once the consecutive-failure bound is hit; the declaration
        itself runs through the single :meth:`_declare_dead` site."""
        key = str(peer)
        self.health.record_failure(key)
        verdict = self.membership.failure(key, now)
        if verdict == SUSPECT:
            self._journal("membership", peer=key, state=SUSPECT)
            self.log.record(now, "peer_suspect", peer=key)
        elif verdict == DEAD:
            self._declare_dead(peer, now)

    def _peer_rejoined(self, peer_key: str, now: float) -> None:
        """A dead/forgotten peer answered again: false death healed.

        Re-registers it in the GLT (so the pinger resumes), logs the
        rediscovery, and runs the co-op-side half of reconciliation:
        every document *we* host for the rejoined home is forced due for
        validation right now, so copies the home re-homed or updated
        during the split are refreshed or dropped at the next tick
        instead of lingering a full T_val."""
        self.log.record(now, "peer_rejoined", peer=peer_key)
        self._reconcile_pending.add(peer_key)
        location = self._location_of(peer_key)
        if location is not None and self.glt.get(location) is None:
            self.glt.register(location)
        overdue = now - self.config.validation_interval
        for hosted in self.hosted.values():
            if str(hosted.home) == peer_key and hosted.fetched:
                self.validation.mark(hosted.key, overdue)

    def _declare_dead(self, peer: Location, now: float) -> None:
        """The single peer-death site, idempotent by construction.

        Both observation paths — failed pings/validations in
        :meth:`complete_action` and failed data-path pulls in
        :meth:`_degrade_pull` — can reach the failure bound for the same
        peer within one tick; :meth:`MembershipTable.mark_dead` applies
        the transition exactly once, so the journal record, the
        revocation sweep, and the repair trigger never run twice.
        """
        key = str(peer)
        if not self.membership.mark_dead(key, now):
            return
        self._journal("membership", peer=key, state=DEAD)
        self.log.record(now, "peer_dead", peer=key)
        # Revoking every document hosted on the dead peer mutates
        # records across arbitrary shards; bracket the sweep.  Documents
        # with surviving replica holders are *dropped* from the dead
        # peer (kind ``replica_drop``) rather than revoked — they keep
        # serving from the survivors with no redirect churn.
        with self.shards.write_all():
            decisions = self.policy.revoke_all_from(peer)
        for decision in decisions:
            self.stats.decisions.append(decision)
            if decision.kind == "replica_drop":
                self.stats.replica_drops += 1
            else:
                self.stats.revocations += 1
        self.glt.remove(peer)
        self.health.forget(key)
        if self.breaker is not None:
            # Force the circuit open: traffic toward the dead peer
            # fast-fails instead of burning timeouts, and a revived peer
            # heals through the normal half-open probe.
            self.breaker.trip(key)
        if self.replication is not None:
            # Autonomous repair, immediately: re-replicate the degraded
            # groups instead of waiting for the next scheduled round.
            # Purely logical — replacement holders pull bytes lazily.
            self._repair_round(now)

    # ------------------------------------------------------------------
    # Warm-state helpers (operator tooling and benchmark pre-warming)
    # ------------------------------------------------------------------

    def regenerate_dirty(self) -> int:
        """Regenerate every dirty HTML document now (instead of lazily on
        the next request).  Returns how many documents were rewritten."""
        count = 0
        for record in self.graph.documents():
            if record.dirty and record.is_html:
                self._regenerate(record)
                count += 1
        return count

    def seed_hosted(self, home: Location, original: str, data: bytes,
                    version: int, now: float) -> None:
        """Install a migrated document's bytes as if the lazy pull had
        already happened (a warmed co-op).  Validation is scheduled with
        the usual per-document jitter."""
        self._clock = now
        key = encode_migrated_path(home, original)
        hosted = HostedDocument(key=key, home=home, original=original,
                                fetched=True, size=len(data),
                                version=str(version),
                                content_type=guess_content_type(original),
                                digest=body_digest(data))
        with self.shards.write(key):
            self.hosted[key] = hosted
            self._journal("pull", key=key, home=str(home), original=original,
                          size=len(data), version=str(version),
                          content_type=hosted.content_type,
                          digest=hosted.digest)
            self.store.put(key, data)
            self.response_cache.invalidate(key)
        jitter = (hash(key) % 997) / 997.0
        self.validation.register(
            key, now - jitter * self.config.validation_interval)

    # ------------------------------------------------------------------
    # Content administration (section 4.5, case 1)
    # ------------------------------------------------------------------

    def update_document(self, name: str, data: bytes) -> None:
        """An author changed a document: store it, bump its version, and
        refresh its outgoing edges.  Co-op copies catch up at their next
        validation."""
        record = self.graph.get(name)
        with self.shards.write(name):
            # Journal before the byte write: replay bumps the version even
            # if the crash ate the bytes, so co-ops revalidate instead of
            # holding a stale copy that compares equal by version.
            self._journal("content_update", name=name,
                          version=record.version + 1, size=len(data),
                          dirty=record.is_html,
                          digest=body_digest(data))
            self.store.put(name, data)
            self.response_cache.invalidate(name)
            record.size = len(data)
            record.version += 1
            record.digest = body_digest(data)
            if record.is_html:
                self.stats.parses += 1
                self.graph.set_links(name, self._index_html(name, data))
                record.dirty = True
            else:
                self._templates.pop(name, None)
            # Authored bytes replace the copy wholesale: any quarantine
            # on the old bytes is moot.
            self._clear_quarantine(name)
        self.log.record(0.0, "content_update", name=name,
                        version=record.version)

    # ------------------------------------------------------------------
    # Piggybacking helpers
    # ------------------------------------------------------------------

    def _attach_piggyback(self, headers: Headers) -> None:
        attach_load_reports(headers, str(self.location), self.glt.snapshot())

    def _hosted_manifest_for(self, home_key: str) -> str:
        """The ``original@version`` manifest of fetched documents we host
        for *home_key*, attached to ping/probe responses so a home
        rediscovering us reconciles our surviving copies in-band."""
        entries = []
        for key in sorted(self.hosted):
            hosted = self.hosted[key]
            if not hosted.fetched or str(hosted.home) != home_key:
                continue
            entries.append(f"{hosted.original}@{hosted.version or '0'}")
            if len(entries) >= HOSTED_MANIFEST_LIMIT:
                break
        return ",".join(entries)

    def _reconcile_manifest(self, peer: Location, headers: Headers,
                            now: float) -> None:
        """Home-side rejoin reconciliation.

        The rediscovered peer's probe response listed the documents it
        still holds for us, by (original path, version).  Compare each
        against the current LDG/replication-group state: a copy of a
        document we re-homed, revoked, or re-versioned during the split
        *loses* (counted here; the peer's own forced revalidation drops
        it), while a version-current copy of a still-under-target group
        *wins* — it is re-registered as a replica, which cancels the
        pending repair and returns the group to healthy without moving
        a byte.
        """
        raw = headers.get(HOSTED_MANIFEST_HEADER, "")
        if not raw:
            return
        key = str(peer)
        drops = 0
        reregistered = 0
        for token in raw.split(","):
            name, separator, version = token.rpartition("@")
            if not separator or not name:
                continue
            record = self.graph.find(normalize_path(name))
            if record is None or record.location == self.location:
                drops += 1          # deleted or revoked home: stale copy
                continue
            if peer in record.locations():
                continue            # already a holder, nothing to settle
            if str(record.version) != version:
                drops += 1          # outdated copy loses
                continue
            group = (self.replication.groups.get(record.name)
                     if self.replication is not None else None)
            if group is None or \
                    len(self.replication.live_holders(record.name)) \
                    >= group.target:
                drops += 1          # group already whole (or unmanaged)
                continue
            decision = self.policy.repair_replica(record.name, peer, now)
            self._count_repair_decisions([decision], now)
            reregistered += 1
        counters = self.membership.counters
        counters.reconcile_drops += drops
        counters.reconcile_reregistrations += reregistered
        if drops or reregistered:
            self.log.record(now, "reconcile", peer=key, drops=drops,
                            reregistered=reregistered)

    def _absorb_piggyback(self, headers: Headers) -> None:
        sender = extract_sender(headers)
        if not sender:
            return
        try:
            self.glt.merge(extract_load_reports(headers))
        except Exception:
            return  # malformed gossip from a peer never breaks serving
        # Gossip is a heartbeat too: a request *from* a suspect (or
        # falsely-dead) peer is proof of life, stamped at engine time.
        self._peer_success(sender, self._clock)

    def _finish(self, request: Request, response: Response, now: float, *,
                doc_name: str = "", reconstructed: bool = False,
                spliced: bool = False) -> EngineReply:
        """Common bookkeeping for every response leaving this server."""
        sender = extract_sender(request.headers)
        if sender:
            # Peer transfer: piggyback our current table on the response.
            self._attach_piggyback(response.headers)
            if request.headers.get(PURPOSE_HEADER, "") in ("ping", "probe"):
                # Pings and rediscovery probes additionally carry back
                # the hosted manifest for the asking home, the in-band
                # half of rejoin reconciliation.
                manifest = self._hosted_manifest_for(sender)
                if manifest:
                    response.headers.set(HOSTED_MANIFEST_HEADER, manifest)
        # Explicit framing and connection semantics so keep-alive peers and
        # pooled channels can delimit the body without waiting for EOF.
        # (HEAD/304 Content-Length refers to the omitted body, per RFC.)
        if "content-length" not in response.headers:
            response.headers.set("Content-Length", str(len(response.body)))
        if request.method == "HEAD":
            # Every path, including errors and redirects: a HEAD response
            # must not put body bytes on the wire, or a keep-alive peer
            # reading by the head alone finds the channel dirty.
            response.body = b""
        if self.config.keep_alive and request_wants_keep_alive(request):
            response.headers.set("Connection", "keep-alive")
            response.headers.set(
                "Keep-Alive",
                f"timeout={self.config.keep_alive_timeout:g}, "
                f"max={self.config.keep_alive_max_requests}")
        else:
            response.headers.set("Connection", "close")
        body_bytes = response.body_length()
        self.metrics.record_connection(now, body_bytes + RESPONSE_HEAD_OVERHEAD)
        self.stats.bytes_sent += body_bytes
        return EngineReply(response=response, doc_name=doc_name,
                           reconstructed=reconstructed, spliced=spliced)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def current_load(self, now: float) -> float:
        return self.metrics.load_metric(
            now, self.config.load_metric,
            drop_pressure_weight=self.config.drop_pressure_weight)

    def cache_counters(self) -> Dict[str, Dict[str, float]]:
        """Hit/miss/eviction counters of every serve-path cache layer,
        for the admin endpoint, stats sampling, and benchmarks."""
        response = self.response_cache.stats.as_dict()
        response["entries"] = len(self.response_cache)
        counters: Dict[str, Dict[str, float]] = {
            "templates": {
                "entries": len(self._templates),
                "builds": self.stats.template_builds,
                "splices": self.stats.splices,
            },
            "response_cache": response,
        }
        if isinstance(self.store, CachingStore):
            byte_cache = self.store.cache.stats.as_dict()
            byte_cache["entries"] = len(self.store.cache)
            byte_cache["used_bytes"] = self.store.cache.used_bytes
            counters["byte_cache"] = byte_cache
        return counters

    def describe(self) -> Dict[str, object]:
        """A summary dict for logging and debugging."""
        return {
            "location": str(self.location),
            "documents": len(self.graph),
            "migrated_away": len(self.graph.migrated_documents()),
            "hosted": sum(1 for h in self.hosted.values() if h.fetched),
            "glt_rows": len(self.glt),
            "requests": self.stats.requests,
        }
