"""Engine state persistence: survive a server restart.

The prototype recomputes the Local Document Graph from disk at startup
(paper section 3.3), but a restart would forget *migration state* — which
documents live on which co-ops — and every hyperlink already rewritten on
disk would point at co-ops the restarted server no longer knows about.
This module saves and restores the mutable half of an engine's state:

- per-document location, replicas, version, hits and dirty bit;
- the migration policy's bookkeeping (who hosts what, since when);
- hosted foreign documents (the co-op role), with validation deadlines;
- the last known global load table.

The snapshot format is a single JSON document, written atomically.
Document *content* is not snapshotted — it already lives in the store.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict

from repro.core.document import Location
from repro.core.migration import _MigrationRecord
from repro.errors import ReproError
from repro.http.piggyback import LoadReport
from repro.server.engine import DCWSEngine, HostedDocument
from repro.server.filestore import guess_content_type

SNAPSHOT_VERSION = 1


class SnapshotError(ReproError):
    """A snapshot could not be written, read, or applied."""


def snapshot_engine(engine: DCWSEngine, now: float) -> Dict[str, Any]:
    """Capture the engine's mutable state as a JSON-serializable dict."""
    documents = {}
    for record in engine.graph.documents():
        documents[record.name] = {
            "location": str(record.location),
            "replicas": sorted(str(r) for r in record.replicas),
            "version": record.version,
            "hits": record.hits,
            "dirty": record.dirty,
        }
    hosted = {}
    for key, entry in engine.hosted.items():
        if not entry.fetched:
            continue
        hosted[key] = {
            "home": str(entry.home),
            "original": entry.original,
            "size": entry.size,
            "hits": entry.hits,
            "version": entry.version,
            "content_type": entry.content_type,
            "last_validated": engine.validation.last_serviced(key),
        }
    migrations = {}
    for name in engine.policy.migrated_names():
        target = engine.policy.migration_of(name)
        if target is not None:
            migrations[name] = str(target)
    glt = [{"server": row.server, "metric": row.metric,
            "ts": row.timestamp}
           for row in engine.glt.snapshot()
           if row.timestamp != float("-inf")]
    return {
        "snapshot_version": SNAPSHOT_VERSION,
        "location": str(engine.location),
        "taken_at": now,
        "documents": documents,
        "hosted": hosted,
        "migrations": migrations,
        "glt": glt,
    }


def save_snapshot(engine: DCWSEngine, path: str, now: float) -> None:
    """Write the snapshot atomically (write-to-temp, rename)."""
    data = json.dumps(snapshot_engine(engine, now), indent=1, sort_keys=True)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    descriptor, temp_path = tempfile.mkstemp(dir=directory,
                                             suffix=".snapshot.tmp")
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(data)
        os.replace(temp_path, path)
    except OSError as exc:
        try:
            os.remove(temp_path)
        except OSError:
            pass
        raise SnapshotError(f"cannot write snapshot {path}: {exc}") from exc


def load_snapshot(path: str) -> Dict[str, Any]:
    """Read and structurally validate a snapshot file."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if not isinstance(data, dict) or \
            data.get("snapshot_version") != SNAPSHOT_VERSION:
        raise SnapshotError(f"unsupported snapshot format in {path}")
    return data


def restore_engine(engine: DCWSEngine, snapshot: Dict[str, Any],
                   now: float) -> int:
    """Apply *snapshot* to a freshly initialized engine.

    The engine must already be initialized (its LDG built from the
    store).  Documents present in the snapshot but no longer on disk are
    skipped; new documents keep their fresh state.  Returns the number of
    restored document records.
    """
    if snapshot.get("location") != str(engine.location):
        raise SnapshotError(
            f"snapshot belongs to {snapshot.get('location')}, "
            f"not {engine.location}")
    restored = 0
    for name, saved in snapshot.get("documents", {}).items():
        record = engine.graph.find(name)
        if record is None:
            continue
        record.location = Location.parse(saved["location"])
        record.replicas = {Location.parse(r) for r in saved["replicas"]}
        record.version = int(saved["version"])
        record.hits = int(saved["hits"])
        record.dirty = bool(saved["dirty"])
        restored += 1
    for name, target in snapshot.get("migrations", {}).items():
        if name in engine.graph:
            engine.policy._migrations[name] = _MigrationRecord(
                coop=Location.parse(target), migrated_at=now)
    for key, saved in snapshot.get("hosted", {}).items():
        if key not in engine.store:
            continue  # content lost; it will be pulled again on demand
        entry = HostedDocument(
            key=key,
            home=Location.parse(saved["home"]),
            original=saved["original"],
            fetched=True,
            size=int(saved["size"]),
            hits=int(saved["hits"]),
            version=str(saved["version"]),
            content_type=saved.get("content_type")
            or guess_content_type(saved["original"]))
        engine.hosted[key] = entry
        engine.validation.register(key, now)
    engine.glt.merge(LoadReport(server=row["server"],
                                metric=float(row["metric"]),
                                timestamp=float(row["ts"]))
                     for row in snapshot.get("glt", []))
    return restored


def restore_from_file(engine: DCWSEngine, path: str, now: float) -> int:
    """Convenience wrapper: load + restore; 0 restored if file is absent."""
    if not os.path.exists(path):
        return 0
    return restore_engine(engine, load_snapshot(path), now)
