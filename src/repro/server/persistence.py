"""Engine state persistence: survive a server restart — or a crash.

The prototype recomputes the Local Document Graph from disk at startup
(paper section 3.3), but a restart would forget *migration state* — which
documents live on which co-ops — and every hyperlink already rewritten on
disk would point at co-ops the restarted server no longer knows about.
This module saves and restores the mutable half of an engine's state:

- per-document location, replicas, version, hits and dirty bit;
- the migration policy's bookkeeping (who hosts what, since when);
- hosted foreign documents (the co-op role), with validation deadlines;
- the last known global load table.

The snapshot format is a single JSON document with an embedded CRC32
checksum, written crash-atomically (temp file, fsync, rename, parent-dir
fsync).  Document *content* is not snapshotted — it already lives in the
store.

Durability beyond the snapshot interval comes from the write-ahead
journal (:mod:`repro.server.wal`):

- :func:`recover` = snapshot + replay.  Load the newest snapshot
  (verifying its checksum; a corrupt snapshot degrades to journal-only
  replay rather than refusing to start), then replay the journal tail
  past the snapshot's LSN.  Records from a different server location are
  refused outright; records from a different checkpoint epoch (a journal
  mispaired with a snapshot) are skipped and counted.
- :func:`checkpoint` writes a snapshot stamped with the journal's
  position and the *next* epoch, then truncates the journal — callers
  hold the engine lock across both so no append can land in between.

Replay is a plain state install (journal records carry resulting
locations and versions, not operations), which makes it idempotent:
replaying a prefix twice leaves the same engine as replaying it once —
the property ``tests/test_wal.py`` fuzzes.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.document import Location
from repro.errors import ReproError
from repro.http.piggyback import LoadReport
from repro.server.engine import DCWSEngine, HostedDocument
from repro.server.filestore import fsync_directory, guess_content_type
from repro.server.wal import JournalRecord, WALError, scan_journal

SNAPSHOT_VERSION = 2
_CHECKSUM_KEY = "checksum"


class SnapshotError(ReproError):
    """A snapshot could not be written, read, or applied."""


def _payload_checksum(data: Dict[str, Any]) -> str:
    """CRC32 of the canonical JSON encoding, checksum field excluded."""
    payload = {k: v for k, v in data.items() if k != _CHECKSUM_KEY}
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":")).encode("utf-8")
    return f"crc32:{zlib.crc32(canonical):08x}"


def snapshot_engine(engine: DCWSEngine, now: float, *,
                    epoch: int = 0, last_lsn: int = 0) -> Dict[str, Any]:
    """Capture the engine's mutable state as a JSON-serializable dict.

    ``epoch``/``last_lsn`` stamp the journal position this snapshot
    covers, so recovery knows which journal tail still applies.
    """
    documents = {}
    for record in engine.graph.documents():
        documents[record.name] = {
            "location": str(record.location),
            "replicas": sorted(str(r) for r in record.replicas),
            "version": record.version,
            "hits": record.hits,
            "dirty": record.dirty,
            "digest": record.digest,
        }
    hosted = {}
    for key, entry in engine.hosted.items():
        if not entry.fetched and not engine.integrity.is_quarantined(key):
            # Unfetched entries re-register lazily — except quarantined
            # ones, which must survive so the home notification (and the
            # quarantine itself) is not forgotten by a restart.
            continue
        hosted[key] = {
            "home": str(entry.home),
            "original": entry.original,
            "size": entry.size,
            "hits": entry.hits,
            "version": entry.version,
            "content_type": entry.content_type,
            "digest": entry.digest,
            "last_validated": engine.validation.last_serviced(key),
        }
    migrations = {}
    for name in engine.policy.migrated_names():
        restored = engine.policy.restored(name)
        if restored is not None:
            entry = {"coop": str(restored[0]), "migrated_at": restored[1]}
            replicas = engine.policy.restored_replicas(name)
            if replicas:  # absent key == no replicas (seed-format compatible)
                entry["replicas"] = replicas
            migrations[name] = entry
    glt = [{"server": row.server, "metric": row.metric,
            "ts": row.timestamp}
           for row in engine.glt.snapshot()
           if row.timestamp != float("-inf")]
    data = {
        "snapshot_version": SNAPSHOT_VERSION,
        "location": str(engine.location),
        "taken_at": now,
        "epoch": epoch,
        "last_lsn": last_lsn,
        "documents": documents,
        "hosted": hosted,
        "migrations": migrations,
        "replication": engine.replication.snapshot()
        if engine.replication is not None else [],
        "glt": glt,
        # Non-alive membership rows only; absent peers restore as alive.
        "membership": engine.membership.snapshot(),
        # Active quarantine records (content-integrity subsystem).
        "integrity": engine.integrity.snapshot(),
    }
    data[_CHECKSUM_KEY] = _payload_checksum(data)
    return data


def save_snapshot(engine: DCWSEngine, path: str, now: float, *,
                  epoch: int = 0, last_lsn: int = 0) -> None:
    """Write the snapshot crash-atomically.

    Temp file in the target directory, fsync, ``os.replace``, parent
    directory fsync — the same discipline as :meth:`DiskStore.put`.
    Without the fsyncs the "atomic" rename could land an empty file
    after power loss, which is precisely the failure this snapshot
    exists to survive.
    """
    data = json.dumps(snapshot_engine(engine, now, epoch=epoch,
                                      last_lsn=last_lsn),
                      indent=1, sort_keys=True)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    descriptor, temp_path = tempfile.mkstemp(dir=directory,
                                             suffix=".snapshot.tmp")
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
        fsync_directory(directory)
    except OSError as exc:
        try:
            os.remove(temp_path)
        except OSError:
            pass
        raise SnapshotError(f"cannot write snapshot {path}: {exc}") from exc


def load_snapshot(path: str) -> Dict[str, Any]:
    """Read, checksum-verify, and structurally validate a snapshot."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise SnapshotError(f"unsupported snapshot format in {path}")
    version = data.get("snapshot_version")
    if version not in (1, SNAPSHOT_VERSION):
        raise SnapshotError(f"unsupported snapshot format in {path}")
    if version >= 2:
        stored = data.get(_CHECKSUM_KEY)
        computed = _payload_checksum(data)
        if stored != computed:
            raise SnapshotError(
                f"snapshot checksum mismatch in {path}: "
                f"stored {stored!r}, computed {computed!r}")
    return data


def restore_engine(engine: DCWSEngine, snapshot: Dict[str, Any],
                   now: float) -> int:
    """Apply *snapshot* to a freshly initialized engine.

    The engine must already be initialized (its LDG built from the
    store).  Documents present in the snapshot but no longer on disk are
    skipped; new documents keep their fresh state.  Hosted entries whose
    bytes are missing from the store are re-registered *unfetched* — the
    next request lazily re-pulls from the home instead of 404ing a
    document the home still believes migrated here.  Returns the number
    of restored document records.
    """
    if snapshot.get("location") != str(engine.location):
        raise SnapshotError(
            f"snapshot belongs to {snapshot.get('location')}, "
            f"not {engine.location}")
    restored = 0
    for name, saved in snapshot.get("documents", {}).items():
        record = engine.graph.find(name)
        if record is None:
            continue
        record.location = Location.parse(saved["location"])
        record.replicas = {Location.parse(r) for r in saved["replicas"]}
        record.version = int(saved["version"])
        record.hits = int(saved["hits"])
        record.dirty = bool(saved["dirty"])
        # The snapshot carries the digest of the *authored* bytes; when
        # present it overrides the one initialize() computed from disk,
        # so rot that happened while the server was down is caught by
        # the first scrub instead of being blessed at startup.
        saved_digest = str(saved.get("digest", ""))
        if saved_digest:
            record.digest = saved_digest
        restored += 1
    for name, saved in snapshot.get("migrations", {}).items():
        if name not in engine.graph:
            continue
        if isinstance(saved, str):  # version-1 snapshots: target only
            coop, migrated_at = Location.parse(saved), now
            replicas: Dict[str, float] = {}
        else:
            coop = Location.parse(saved["coop"])
            migrated_at = float(saved.get("migrated_at", now))
            replicas = {str(k): float(v)
                        for k, v in saved.get("replicas", {}).items()}
        engine.policy.restore(name, coop, migrated_at, replicas=replicas)
    for key, saved in snapshot.get("hosted", {}).items():
        fetched = key in engine.store
        entry = HostedDocument(
            key=key,
            home=Location.parse(saved["home"]),
            original=saved["original"],
            fetched=fetched,
            size=int(saved["size"]) if fetched else 0,
            hits=int(saved["hits"]),
            version=str(saved["version"]) if fetched else "",
            digest=str(saved.get("digest", "")) if fetched else "",
            content_type=saved.get("content_type")
            or guess_content_type(saved["original"]))
        engine.hosted[key] = entry
        if fetched:
            last = saved.get("last_validated")
            if last is not None:
                # Keep the real deadline: a document overdue at crash
                # time validates immediately, not one interval late.
                engine.validation.restore(key, float(last))
            else:
                engine.validation.register(key, now)
    engine.glt.merge(LoadReport(server=row["server"],
                                metric=float(row["metric"]),
                                timestamp=float(row["ts"]))
                     for row in snapshot.get("glt", []))
    if engine.replication is not None:
        engine.replication.restore(snapshot.get("replication", []))
    for row in snapshot.get("membership", []):
        _install_membership(engine, str(row.get("peer", "")),
                            str(row.get("state", "")), now)
    engine.integrity.restore(snapshot.get("integrity", []))
    for entry in snapshot.get("integrity", []):
        if entry.get("kind") == "home":
            # A restored home quarantine must not regenerate from a
            # template initialize() built out of the (possibly corrupt)
            # disk bytes; the quarantine then holds until re-authored.
            engine._templates.pop(str(entry.get("key", "")), None)
    return restored


def _install_membership(engine: DCWSEngine, peer: str, state: str,
                        now: float) -> None:
    """Install one membership state (snapshot restore / journal replay).

    Idempotent like every other resulting-state record.  Dead and
    forgotten peers are also removed from the GLT — the constructor
    re-registers every configured peer, so without this a recovered
    engine would ping a peer it had already declared dead — and alive
    peers are re-registered so the pinger resumes after a replayed
    rejoin.
    """
    if not peer or not state:
        return
    engine.membership.install(peer, state, now)
    try:
        location = Location.parse(peer)
    except ValueError:
        return
    if state in ("dead", "forgotten"):
        engine.glt.remove(location)
    elif engine.glt.get(location) is None:
        engine.glt.register(location)


def restore_from_file(engine: DCWSEngine, path: str, now: float) -> int:
    """Convenience wrapper: load + restore; 0 restored if file is absent."""
    if not os.path.exists(path):
        return 0
    return restore_engine(engine, load_snapshot(path), now)


# ----------------------------------------------------------------------
# Journal replay (snapshot + tail = recovered engine)
# ----------------------------------------------------------------------


@dataclass
class RecoveryStats:
    """What one :func:`recover` run did, for operators and fsck."""

    recovered_at: float = 0.0
    snapshot_loaded: bool = False
    snapshot_error: str = ""
    documents_restored: int = 0
    records_replayed: int = 0
    records_skipped: int = 0       # wrong-epoch records (mispaired journal)
    torn_tail_truncated: bool = False
    last_lsn: int = 0
    # Where a reopened journal must resume so the snapshot's LSN filter
    # keeps working: the snapshot's epoch and the highest LSN consumed
    # anywhere (snapshot stamp or surviving journal records).
    resume_epoch: int = 0
    resume_lsn: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "recovered_at": self.recovered_at,
            "snapshot_loaded": self.snapshot_loaded,
            "snapshot_error": self.snapshot_error,
            "documents_restored": self.documents_restored,
            "records_replayed": self.records_replayed,
            "records_skipped": self.records_skipped,
            "torn_tail_truncated": self.torn_tail_truncated,
            "last_lsn": self.last_lsn,
            "resume_epoch": self.resume_epoch,
            "resume_lsn": self.resume_lsn,
        }


def apply_record(engine: DCWSEngine, record: JournalRecord) -> None:
    """Install one journal record's resulting state into *engine*.

    Versions only ever move forward (``max``), locations and flags are
    set outright — so applying any prefix of the journal twice equals
    applying it once, and a record for a document that no longer exists
    on disk is a no-op rather than an error.
    """
    fields = record.fields
    if record.kind in ("migrate", "remigrate", "revoke", "replicate",
                       "replica_drop", "repair"):
        name = str(fields["name"])
        location = Location.parse(str(fields["location"]))
        replicas = [str(r) for r in fields.get("replicas", [])]
        document = engine.graph.find(name)
        if document is not None:
            document.location = location
            document.replicas = {Location.parse(r) for r in replicas}
            document.version = max(document.version,
                                   int(fields.get("version", 0)))
            for touched_name, touched_version in fields.get("dirtied", []):
                touched = engine.graph.find(str(touched_name))
                if touched is not None:
                    touched.version = max(touched.version,
                                          int(touched_version))
                    touched.dirty = True
        if location == engine.location and not replicas:
            engine.policy.discard(name)
        else:
            migrated_at = fields.get("migrated_at")
            engine.policy.restore(
                name, location,
                float(migrated_at) if migrated_at is not None
                else record.time,
                replicas={r: record.time for r in replicas})
        return
    if record.kind == "pull":
        key = str(fields["key"])
        original = str(fields.get("original", key))
        fetched = key in engine.store
        entry = HostedDocument(
            key=key, home=Location.parse(str(fields["home"])),
            original=original, fetched=fetched,
            size=int(fields.get("size", 0)) if fetched else 0,
            # Version intentionally dropped even when bytes exist: the
            # journal is written before the byte write, so the on-disk
            # copy might be an older complete pull.  A blank version
            # makes the first validation an unconditional refresh
            # instead of a 304 that would pin a stale copy forever.
            # The digest is dropped for the same reason: claiming the
            # journaled digest for bytes that may belong to an older
            # pull would quarantine a legitimately stale copy.
            version="",
            digest="",
            content_type=str(fields.get("content_type", ""))
            or guess_content_type(original))
        existing = engine.hosted.get(key)
        if existing is not None:
            entry.hits = existing.hits
            entry.hits_reported = existing.hits_reported
        engine.hosted[key] = entry
        if fetched:
            engine.validation.restore(key, record.time)
        return
    if record.kind == "hosted_dropped":
        key = str(fields["key"])
        engine.hosted.pop(key, None)
        engine.validation.forget(key)
        engine.response_cache.invalidate(key)
        engine.store.delete(key)
        engine.integrity.clear(key)
        return
    if record.kind == "validate_refreshed":
        key = str(fields["key"])
        entry = engine.hosted.get(key)
        if entry is not None:
            if key in engine.store:
                entry.size = int(fields.get("size", entry.size))
                entry.version = ""  # same staleness argument as "pull"
                entry.digest = ""
            else:
                entry.fetched = False
                entry.version = ""
                entry.digest = ""
                entry.size = 0
            engine.validation.restore(key, record.time)
        return
    if record.kind == "content_update":
        document = engine.graph.find(str(fields["name"]))
        if document is not None:
            document.version = max(document.version,
                                   int(fields.get("version", 0)))
            if fields.get("dirty"):
                document.dirty = True
        return
    if record.kind == "regenerate":
        document = engine.graph.find(str(fields["name"]))
        if document is not None and \
                document.version == int(fields.get("version", -1)):
            document.dirty = False
            # Journaled *after* the byte write, so the digest names the
            # bytes that are (or were) on disk: installing it lets the
            # scrub catch rot that happened while the server was down.
            # ("content_update" replay deliberately does NOT install its
            # digest — that record precedes the write, and the crash may
            # have left the previous, legitimate bytes on disk.)
            digest = str(fields.get("digest", ""))
            if digest:
                document.digest = digest
        return
    if record.kind == "glt_row":
        engine.glt.update_own(float(fields.get("metric", 0.0)), record.time)
        return
    if record.kind == "quarantine":
        key = str(fields["key"])
        copy_kind = str(fields.get("copy", "home"))
        engine.integrity.quarantine(
            key, copy_kind, str(fields.get("reason", "scrub")),
            str(fields.get("expected", "")), str(fields.get("actual", "")),
            record.time)
        if copy_kind == "hosted":
            entry = engine.hosted.get(key)
            if entry is not None:
                entry.fetched = False
                entry.version = ""
                entry.digest = ""
                entry.size = 0
            engine.store.delete(key)
        else:
            # Never regenerate from a template built out of the corrupt
            # disk bytes at initialize time.
            engine._templates.pop(key, None)
        engine.response_cache.invalidate(key)
        return
    if record.kind == "quarantine_cleared":
        engine.integrity.clear(str(fields["key"]))
        return
    if record.kind == "membership":
        # Membership transitions journal the *resulting* state, so any
        # replay prefix lands on the same table: a peer declared dead,
        # rediscovered, and re-declared replays to its final state.
        _install_membership(engine, str(fields.get("peer", "")),
                            str(fields.get("state", "")), record.time)
        return
    # Unknown kinds (a newer writer) are skipped: replay applies what it
    # understands and fsck judges the result.


def recover(engine: DCWSEngine, snapshot_path: Optional[str],
            journal_path: Optional[str], now: float) -> RecoveryStats:
    """Snapshot + journal-tail replay; the one true crash-restart path.

    Initializes the engine from its store, restores the newest snapshot
    if one loads cleanly (a corrupt or missing snapshot degrades to
    journal-only replay), then replays every journal record past the
    snapshot's LSN.  Raises :class:`WALError` only for a journal that
    belongs to a *different server* — everything else recovers.
    """
    stats = RecoveryStats(recovered_at=now)
    engine.initialize(now)
    snapshot: Optional[Dict[str, Any]] = None
    if snapshot_path and os.path.exists(snapshot_path):
        try:
            snapshot = load_snapshot(snapshot_path)
        except SnapshotError as exc:
            stats.snapshot_error = str(exc)
    after_lsn = 0
    expected_epoch: Optional[int] = None
    if snapshot is not None:
        stats.documents_restored = restore_engine(engine, snapshot, now)
        stats.snapshot_loaded = True
        after_lsn = int(snapshot.get("last_lsn", 0))
        expected_epoch = int(snapshot.get("epoch", 0))
    stats.resume_epoch = expected_epoch or 0
    stats.resume_lsn = after_lsn
    if journal_path:
        scan = scan_journal(journal_path)
        stats.torn_tail_truncated = scan.torn_tail
        stats.resume_lsn = max(after_lsn, scan.last_lsn)
        if expected_epoch is None:
            stats.resume_epoch = max((r.epoch for r in scan.records),
                                     default=0)
        for record in scan.records:
            if record.lsn <= after_lsn:
                continue
            if record.location and record.location != str(engine.location):
                raise WALError(
                    f"journal {journal_path} belongs to {record.location}, "
                    f"not {engine.location}")
            if expected_epoch is not None and record.epoch != expected_epoch:
                stats.records_skipped += 1
                continue
            apply_record(engine, record)
            stats.records_replayed += 1
            stats.last_lsn = record.lsn
    engine.recovery = stats
    engine.log.record(now, "recover",
                      replayed=stats.records_replayed,
                      skipped=stats.records_skipped,
                      snapshot=int(stats.snapshot_loaded),
                      torn=int(stats.torn_tail_truncated))
    return stats


def checkpoint(engine: DCWSEngine, snapshot_path: str, now: float) -> int:
    """Durable snapshot, then truncate the journal; returns the epoch.

    The caller must hold the engine lock (the host's serialization of
    engine access) so no journal append can slip between the snapshot
    and the truncation.  A crash between the two is safe: the old-epoch
    records left in the journal all have ``lsn <= last_lsn`` and are
    filtered out by the snapshot's LSN at the next recovery.
    """
    journal = engine.journal
    if journal is None:
        save_snapshot(engine, snapshot_path, now)
        return 0
    epoch = journal.epoch + 1
    save_snapshot(engine, snapshot_path, now, epoch=epoch,
                  last_lsn=journal.last_lsn)
    journal.start_epoch(epoch, now)
    engine.log.record(now, "checkpoint", epoch=epoch,
                      lsn=journal.last_lsn)
    return epoch
