"""Turn a parse tree back into a stream of HTML (paper section 4.3).

Serialization is canonical rather than byte-preserving: attributes are
emitted double-quoted and entity-escaped, tags lower-case.  The guaranteed
invariant — covered by property tests — is that re-parsing the output
yields an identical link set and identical text content, which is all the
DCWS system (and a browser) observes.
"""

from __future__ import annotations

from typing import List

from repro.errors import HTMLParseError
from repro.html.parser import CommentNode, Document, DoctypeNode, Element, Node, Text
from repro.html.tokenizer import VOID_ELEMENTS, escape_attribute


def serialize_html(document: Document) -> str:
    """Render *document* as an HTML string."""
    parts: List[str] = []
    for node in document.children:
        _serialize_node(node, parts)
    return "".join(parts)


def _serialize_node(node: Node, parts: List[str]) -> None:
    if isinstance(node, Text):
        parts.append(node.data)
    elif isinstance(node, CommentNode):
        parts.append(f"<!--{node.data}-->")
    elif isinstance(node, DoctypeNode):
        parts.append(f"<!{node.data}>")
    elif isinstance(node, Element):
        _serialize_element(node, parts)
    else:
        raise HTMLParseError(f"foreign node in parse tree: {node!r}")


def _serialize_element(element: Element, parts: List[str]) -> None:
    parts.append(f"<{element.name}")
    for name, value in element.tag.attrs:
        if value is None:
            parts.append(f" {name}")
        else:
            parts.append(f' {name}="{escape_attribute(value)}"')
    parts.append(">")
    if element.name in VOID_ELEMENTS:
        return
    for child in element.children:
        _serialize_node(child, parts)
    parts.append(f"</{element.name}>")
