"""Turn a parse tree back into a stream of HTML (paper section 4.3).

Serialization is canonical rather than byte-preserving: attributes are
emitted double-quoted and entity-escaped, tags lower-case.  The guaranteed
invariant — covered by property tests — is that re-parsing the output
yields an identical link set and identical text content, which is all the
DCWS system (and a browser) observes.

The optional *capture* hook reports the exact character span every
attribute value occupies in the output.  :mod:`repro.html.template` uses
it to build link templates whose spans are correct by construction: the
same code path produces the bytes and the offsets.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import HTMLParseError
from repro.html.parser import CommentNode, Document, DoctypeNode, Element, Node, Text
from repro.html.tokenizer import VOID_ELEMENTS, escape_attribute

#: capture(element, attr_index, attr_name, raw_value, start, end) — *start*
#: and *end* delimit the escaped value inside its double quotes in the
#: serialized output; *raw_value* is the unescaped value from the tree.
CaptureFn = Callable[[Element, int, str, str, int, int], None]


class _Out:
    """Output accumulator that tracks the running character offset."""

    __slots__ = ("parts", "length", "capture")

    def __init__(self, capture: Optional[CaptureFn]) -> None:
        self.parts: List[str] = []
        self.length = 0
        self.capture = capture

    def append(self, text: str) -> None:
        self.parts.append(text)
        self.length += len(text)


def serialize_html(document: Document, *,
                   capture: Optional[CaptureFn] = None) -> str:
    """Render *document* as an HTML string."""
    out = _Out(capture)
    for node in document.children:
        _serialize_node(node, out)
    return "".join(out.parts)


def _serialize_node(node: Node, out: _Out) -> None:
    if isinstance(node, Text):
        out.append(node.data)
    elif isinstance(node, CommentNode):
        out.append(f"<!--{node.data}-->")
    elif isinstance(node, DoctypeNode):
        out.append(f"<!{node.data}>")
    elif isinstance(node, Element):
        _serialize_element(node, out)
    else:
        raise HTMLParseError(f"foreign node in parse tree: {node!r}")


def _serialize_element(element: Element, out: _Out) -> None:
    out.append(f"<{element.name}")
    for index, (name, value) in enumerate(element.tag.attrs):
        if value is None:
            out.append(f" {name}")
        else:
            out.append(f' {name}="')
            start = out.length
            out.append(escape_attribute(value))
            if out.capture is not None:
                out.capture(element, index, name, value, start, out.length)
            out.append('"')
    out.append(">")
    if element.name in VOID_ELEMENTS:
        return
    for child in element.children:
        _serialize_node(child, out)
    out.append(f"</{element.name}>")
