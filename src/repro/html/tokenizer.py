"""A tolerant HTML tokenizer.

Splits raw HTML into a flat stream of tokens: text runs, start tags (with
their attributes), end tags, comments, and doctype declarations.  The
tokenizer never raises on malformed markup — real 1998-era pages contain
unquoted attributes, missing quotes, bare ampersands and stray ``<`` — it
instead degrades gracefully by treating unparseable ``<`` as literal text,
the same recovery strategy browsers of the period used.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Union

# Tags that never have content or an end tag (HTML 4 "empty" elements).
VOID_ELEMENTS = frozenset({
    "area", "base", "basefont", "br", "col", "frame", "hr",
    "img", "input", "isindex", "link", "meta", "param",
})

# Elements whose raw content must not be tokenized as markup.
RAW_TEXT_ELEMENTS = frozenset({"script", "style"})

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ")
_NAME_CHARS = _NAME_START | set("0123456789-_:.")
_SPACE = set(" \t\r\n\f")

# Precompiled fast paths for the scanner's inner loops.  Each regex
# matches exactly the character class of the set it replaces, so the
# token stream is byte-identical to the char-by-char scan (guarded by
# the round-trip property tests).
_SPACE_RE = re.compile(r"[ \t\r\n\f]+")
_NAME_RE = re.compile(r"[a-zA-Z0-9\-_:.]+")
_UNQUOTED_VALUE_RE = re.compile(r"[^ \t\r\n\f>]+")


@dataclass
class TextToken:
    """A run of character data between tags."""

    data: str


@dataclass
class StartTag:
    """``<name attr=value ...>``; attribute order is preserved.

    Attribute values are stored unescaped; names are lower-cased.  A value
    of ``None`` records a bare attribute (``<input checked>``).
    """

    name: str
    attrs: List[Tuple[str, Optional[str]]] = field(default_factory=list)
    self_closing: bool = False

    def get_attr(self, name: str) -> Optional[str]:
        key = name.lower()
        for attr_name, attr_value in self.attrs:
            if attr_name == key:
                return attr_value
        return None

    def set_attr(self, name: str, value: Optional[str]) -> None:
        key = name.lower()
        for index, (attr_name, _) in enumerate(self.attrs):
            if attr_name == key:
                self.attrs[index] = (attr_name, value)
                return
        self.attrs.append((key, value))


@dataclass
class EndTag:
    """``</name>``."""

    name: str


@dataclass
class Comment:
    """``<!-- data -->``."""

    data: str


@dataclass
class Doctype:
    """``<!DOCTYPE ...>`` (content kept verbatim)."""

    data: str


Token = Union[TextToken, StartTag, EndTag, Comment, Doctype]


class _Scanner:
    """Character cursor over the source text."""

    __slots__ = ("text", "pos", "length")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    def eof(self) -> bool:
        return self.pos >= self.length

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.length else ""

    def advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        return ch

    def skip_space(self) -> None:
        match = _SPACE_RE.match(self.text, self.pos)
        if match is not None:
            self.pos = match.end()

    def take_until(self, needle: str) -> str:
        """Consume up to (not including) *needle*; to EOF if absent."""
        index = self.text.find(needle, self.pos)
        if index < 0:
            chunk = self.text[self.pos:]
            self.pos = self.length
            return chunk
        chunk = self.text[self.pos:index]
        self.pos = index
        return chunk


def tokenize_html(source: str) -> List[Token]:
    """Tokenize *source* into a list of tokens.

    >>> tokenize_html('<a href="x.html">go</a>')
    [StartTag(name='a', attrs=[('href', 'x.html')], self_closing=False), \
TextToken(data='go'), EndTag(name='a')]
    """
    return list(iter_tokens(source))


def iter_tokens(source: str) -> Iterator[Token]:
    """Yield tokens lazily; see :func:`tokenize_html`."""
    scanner = _Scanner(source)
    raw_until: Optional[str] = None  # inside <script>/<style>: name to close on
    while not scanner.eof():
        if raw_until is not None:
            token = _scan_raw_text(scanner, raw_until)
            raw_until = None
            if token is not None:
                yield token
            continue
        if scanner.peek() != "<":
            text = scanner.take_until("<")
            if text:
                yield TextToken(text)
            continue
        token = _scan_markup(scanner)
        if token is None:
            continue
        yield token
        if isinstance(token, StartTag) and token.name in RAW_TEXT_ELEMENTS \
                and not token.self_closing:
            raw_until = token.name


def _scan_raw_text(scanner: _Scanner, name: str) -> Optional[Token]:
    """Consume raw content up to ``</name``; yields the text then lets the
    normal path consume the end tag."""
    closer = f"</{name}"
    lower = scanner.text.lower()
    index = lower.find(closer, scanner.pos)
    if index < 0:
        data = scanner.text[scanner.pos:]
        scanner.pos = scanner.length
    else:
        data = scanner.text[scanner.pos:index]
        scanner.pos = index
    return TextToken(data) if data else None


def _scan_markup(scanner: _Scanner) -> Optional[Token]:
    start = scanner.pos
    scanner.advance()  # consume '<'
    ch = scanner.peek()
    if ch == "!":
        return _scan_declaration(scanner)
    if ch == "/":
        scanner.advance()
        return _scan_end_tag(scanner, start)
    if ch in _NAME_START:
        return _scan_start_tag(scanner, start)
    # Not a tag: emit the '<' as literal text (browser-style recovery).
    return TextToken("<")


def _scan_declaration(scanner: _Scanner) -> Optional[Token]:
    scanner.advance()  # consume '!'
    if scanner.text.startswith("--", scanner.pos):
        scanner.pos += 2
        data = scanner.take_until("-->")
        if not scanner.eof():
            scanner.pos += 3
        return Comment(data)
    data = scanner.take_until(">")
    if not scanner.eof():
        scanner.advance()
    return Doctype(data)


def _scan_name(scanner: _Scanner) -> str:
    match = _NAME_RE.match(scanner.text, scanner.pos)
    if match is None:
        return ""
    scanner.pos = match.end()
    return match.group().lower()


def _scan_end_tag(scanner: _Scanner, start: int) -> Token:
    name = _scan_name(scanner)
    if not name:
        # "</>" or "</ garbage": recover as text.
        scanner.take_until(">")
        if not scanner.eof():
            scanner.advance()
        return TextToken(scanner.text[start:scanner.pos])
    scanner.take_until(">")
    if not scanner.eof():
        scanner.advance()
    return EndTag(name)


def _scan_start_tag(scanner: _Scanner, start: int) -> Token:
    name = _scan_name(scanner)
    tag = StartTag(name=name)
    while True:
        scanner.skip_space()
        if scanner.eof():
            return tag
        ch = scanner.peek()
        if ch == ">":
            scanner.advance()
            return tag
        if ch == "/":
            scanner.advance()
            scanner.skip_space()
            if scanner.peek() == ">":
                scanner.advance()
                tag.self_closing = True
                return tag
            continue  # stray '/': skip it
        attr = _scan_attribute(scanner)
        if attr is None:
            # Unparseable character inside the tag: skip it.
            scanner.advance()
            continue
        tag.attrs.append(attr)


def _scan_attribute(scanner: _Scanner) -> Optional[Tuple[str, Optional[str]]]:
    match = _NAME_RE.match(scanner.text, scanner.pos)
    if match is None:
        return None
    scanner.pos = match.end()
    name = match.group().lower()
    scanner.skip_space()
    if scanner.peek() != "=":
        return (name, None)
    scanner.advance()
    scanner.skip_space()
    quote = scanner.peek()
    if quote in ('"', "'"):
        scanner.advance()
        value = scanner.take_until(quote)
        if not scanner.eof():
            scanner.advance()
        return (name, unescape_entities(value))
    # Unquoted value: runs to whitespace or '>'.
    match = _UNQUOTED_VALUE_RE.match(scanner.text, scanner.pos)
    if match is None:
        return (name, unescape_entities(""))
    scanner.pos = match.end()
    return (name, unescape_entities(match.group()))


_ENTITIES = {
    "amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'", "nbsp": "\xa0",
}


def unescape_entities(text: str) -> str:
    """Resolve the small set of character entities that matter for URLs."""
    if "&" not in text:
        return text
    out: List[str] = []
    index = 0
    length = len(text)
    while index < length:
        ch = text[index]
        if ch != "&":
            out.append(ch)
            index += 1
            continue
        semi = text.find(";", index + 1, index + 10)
        if semi < 0:
            out.append(ch)
            index += 1
            continue
        entity = text[index + 1:semi]
        if entity.startswith("#"):
            try:
                code = int(entity[2:], 16) if entity[1:2] in ("x", "X") \
                    else int(entity[1:])
                out.append(chr(code))
                index = semi + 1
                continue
            except ValueError:
                pass
        elif entity in _ENTITIES:
            out.append(_ENTITIES[entity])
            index = semi + 1
            continue
        out.append(ch)
        index += 1
    return "".join(out)


def escape_attribute(value: str) -> str:
    """Escape a value for inclusion in a double-quoted attribute."""
    return value.replace("&", "&amp;").replace('"', "&quot;")


def escape_text(value: str) -> str:
    """Escape character data."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
