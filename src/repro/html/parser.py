"""A simple, tolerant HTML parse tree.

The paper (section 4.3) calls for "a simple parse tree" built from an HTML
source file, in which modified links are replaced before the tree is turned
back into a stream of HTML.  This parser builds exactly that: a tree of
:class:`Element` and :class:`Text` nodes, recovering from the unclosed and
mis-nested tags common in hand-written pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Union

from repro.html.tokenizer import (
    VOID_ELEMENTS,
    Comment,
    Doctype,
    EndTag,
    StartTag,
    TextToken,
    iter_tokens,
)

# Elements that implicitly close an open element of the same name
# (``<li>`` closes a previous ``<li>``, etc.).
_SELF_NESTING_CLOSERS = frozenset({"li", "p", "tr", "td", "th", "option", "dt", "dd"})


@dataclass
class Text:
    """Character data leaf node (raw source text, entities intact)."""

    data: str


@dataclass
class CommentNode:
    """An HTML comment preserved in the tree."""

    data: str


@dataclass
class DoctypeNode:
    """A doctype declaration preserved in the tree."""

    data: str


@dataclass
class Element:
    """An element node: a start tag plus child nodes.

    ``tag`` keeps the attribute list; rewriting mutates ``tag.attrs`` in
    place so attribute order and unrelated attributes survive untouched.
    """

    tag: StartTag
    children: List["Node"] = field(default_factory=list)
    explicit_end: bool = True

    @property
    def name(self) -> str:
        return self.tag.name

    def get_attr(self, name: str) -> Optional[str]:
        return self.tag.get_attr(name)

    def set_attr(self, name: str, value: Optional[str]) -> None:
        self.tag.set_attr(name, value)


Node = Union[Element, Text, CommentNode, DoctypeNode]


@dataclass
class Document:
    """The root of a parse tree: an ordered forest of top-level nodes."""

    children: List[Node] = field(default_factory=list)

    def iter_elements(self) -> Iterator[Element]:
        """Depth-first, document-order traversal of every element."""
        stack: List[Node] = list(reversed(self.children))
        while stack:
            node = stack.pop()
            if isinstance(node, Element):
                yield node
                stack.extend(reversed(node.children))

    def find_all(self, name: str) -> List[Element]:
        """Every element with tag *name* (lower-case), document order."""
        key = name.lower()
        return [el for el in self.iter_elements() if el.name == key]

    def find_first(self, name: str) -> Optional[Element]:
        """The first element with tag *name*, or ``None``."""
        key = name.lower()
        for element in self.iter_elements():
            if element.name == key:
                return element
        return None

    def text_content(self) -> str:
        """Concatenated character data of the whole document."""
        parts: List[str] = []
        stack: List[Node] = list(reversed(self.children))
        while stack:
            node = stack.pop()
            if isinstance(node, Text):
                parts.append(node.data)
            elif isinstance(node, Element):
                stack.extend(reversed(node.children))
        return "".join(parts)


def parse_html(source: str) -> Document:
    """Parse *source* into a :class:`Document`.

    Recovery rules (matching period browsers closely enough for link
    extraction to be exact):

    - void elements (``img``, ``br``, ...) never take children;
    - an end tag with no matching open element is dropped;
    - an end tag closing an outer element implicitly closes everything
      inside it;
    - a repeated ``li``/``p``/``tr``/... start tag closes its predecessor.
    """
    document = Document()
    # Stack of open elements; index 0 is a virtual root.
    stack: List[List[Node]] = [document.children]
    open_names: List[str] = []

    def append(node: Node) -> None:
        stack[-1].append(node)

    for token in iter_tokens(source):
        if isinstance(token, TextToken):
            append(Text(token.data))
        elif isinstance(token, Comment):
            append(CommentNode(token.data))
        elif isinstance(token, Doctype):
            append(DoctypeNode(token.data))
        elif isinstance(token, StartTag):
            if token.name in _SELF_NESTING_CLOSERS and open_names \
                    and open_names[-1] == token.name:
                stack.pop()
                open_names.pop()
            element = Element(tag=token)
            append(element)
            if token.name not in VOID_ELEMENTS and not token.self_closing:
                stack.append(element.children)
                open_names.append(token.name)
            else:
                element.explicit_end = False
        elif isinstance(token, EndTag):
            if token.name not in open_names:
                continue  # stray end tag: drop
            while open_names and open_names[-1] != token.name:
                stack.pop()
                open_names.pop()
            stack.pop()
            open_names.pop()
    return document
