"""Hyperlink rewriting on parse trees (paper section 4.3).

When a document's ``Dirty`` bit is set — some of its ``LinkTo`` documents
have been migrated — the server parses it, replaces the affected hyperlinks
in the parse tree, regenerates the HTML, and writes it back to disk.  The
rewrite function is a plain ``str -> str | None`` mapping so the policy
layer (:mod:`repro.core.migration`) stays independent of HTML mechanics.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.html.links import HREF_ATTRIBUTES, is_followable
from repro.html.parser import Document

RewriteFn = Callable[[str], Optional[str]]


def rewrite_links(document: Document, rewrite: RewriteFn) -> int:
    """Apply *rewrite* to every followable reference in *document*.

    *rewrite* receives the raw attribute value and returns the replacement,
    or ``None`` to leave the reference unchanged.  The tree is mutated in
    place; attribute order and unrelated attributes are untouched.  Returns
    the number of references changed.

    >>> from repro.html.parser import parse_html
    >>> from repro.html.serializer import serialize_html
    >>> doc = parse_html('<a href="d.html">D</a>')
    >>> rewrite_links(doc, lambda v: "http://coop:81/~migrate/home/80/d.html"
    ...               if v == "d.html" else None)
    1
    >>> serialize_html(doc)
    '<a href="http://coop:81/~migrate/home/80/d.html">D</a>'
    """
    changed = 0
    for element in document.iter_elements():
        attribute = HREF_ATTRIBUTES.get(element.name)
        if attribute is None:
            continue
        value = element.get_attr(attribute)
        if value is None or not is_followable(value):
            continue
        replacement = rewrite(value.strip())
        if replacement is not None and replacement != value:
            element.set_attr(attribute, replacement)
            changed += 1
    return changed


def count_rewritable_links(document: Document) -> int:
    """How many references :func:`rewrite_links` would visit."""
    count = 0
    for element in document.iter_elements():
        attribute = HREF_ATTRIBUTES.get(element.name)
        if attribute is None:
            continue
        value = element.get_attr(attribute)
        if value is not None and is_followable(value):
            count += 1
    return count


def rewrite_html(source: str, rewrite: RewriteFn) -> str:
    """Parse, rewrite, and re-serialize *source* in one call.

    This is the full regeneration path whose cost the paper reports as
    roughly 20 ms per 6.5 KB document on 1998 hardware.
    """
    from repro.html.parser import parse_html
    from repro.html.serializer import serialize_html

    document = parse_html(source)
    rewrite_links(document, rewrite)
    return serialize_html(document)
