"""HTML substrate: tokenizer, parse tree, link extraction and rewriting.

The DCWS prototype's central mechanism is *hyperlink rewriting* (paper
section 4.3): a general-purpose HTML parser builds a simple parse tree from
a document, migrated links are replaced in the tree, and the tree is turned
back into a stream of HTML and written to disk.  This package implements
that pipeline from scratch, tolerant of the messy real-world HTML of the
era (unclosed tags, unquoted attributes, stray ``>``).
"""

from repro.html.links import HREF_ATTRIBUTES, LinkRef, extract_links
from repro.html.parser import Document, Element, Node, Text, parse_html
from repro.html.rewriter import count_rewritable_links, rewrite_links
from repro.html.serializer import serialize_html
from repro.html.tokenizer import (
    Comment,
    Doctype,
    EndTag,
    StartTag,
    TextToken,
    Token,
    tokenize_html,
)

__all__ = [
    "Comment",
    "Doctype",
    "Document",
    "Element",
    "EndTag",
    "HREF_ATTRIBUTES",
    "LinkRef",
    "Node",
    "StartTag",
    "Text",
    "TextToken",
    "Token",
    "count_rewritable_links",
    "extract_links",
    "parse_html",
    "rewrite_links",
    "serialize_html",
    "tokenize_html",
]
