"""Hyperlink and resource-reference extraction from parse trees.

The local document graph (paper section 3.3) is computed by scanning the
disk and parsing every document: each ``<a href>`` contributes a hyperlink
edge and each ``<img src>`` an embedded-image edge.  Frames (section 3.1)
and image maps are also first-class: a frame template references internal
frame pages via ``<frame src>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.html.parser import Document, Element

# (tag name -> attribute holding the reference).  Covers every reference
# kind the DCWS prototype migrates or follows.
HREF_ATTRIBUTES: Dict[str, str] = {
    "a": "href",
    "area": "href",
    "link": "href",
    "img": "src",
    "frame": "src",
    "iframe": "src",
    "script": "src",
    "input": "src",
    "body": "background",
}

# Tags whose references are fetched automatically with the page (no user
# click), i.e. "embedded" in the paper's sense.  ``a``/``area``/``link``
# require navigation.
EMBEDDED_TAGS: FrozenSet[str] = frozenset(
    {"img", "frame", "iframe", "script", "input", "body"})

_IGNORED_SCHEMES: Tuple[str, ...] = ("mailto:", "ftp:", "news:", "javascript:",
                                     "gopher:", "telnet:", "https:")


@dataclass(frozen=True)
class LinkRef:
    """One outgoing reference found in a document.

    ``embedded`` distinguishes automatically-fetched resources (images,
    frames) from navigational hyperlinks; the custom client benchmark
    (Algorithm 2) fetches embedded references in parallel and navigates
    only hyperlinks.
    """

    tag: str
    attribute: str
    value: str
    embedded: bool


def is_followable(value: str) -> bool:
    """True when a raw attribute value is a fetchable http(-relative) URL.

    Fragment-only references, empty values, and non-http schemes are not
    edges in the document graph.
    """
    if not value:
        return False
    stripped = value.strip()
    if not stripped or stripped.startswith("#"):
        return False
    return not stripped.lower().startswith(_IGNORED_SCHEMES)


def extract_links(document: Document) -> List[LinkRef]:
    """Every followable outgoing reference of *document*, document order.

    >>> from repro.html.parser import parse_html
    >>> doc = parse_html('<a href="b.html">b</a><img src="i.gif">')
    >>> [(l.tag, l.value, l.embedded) for l in extract_links(doc)]
    [('a', 'b.html', False), ('img', 'i.gif', True)]
    """
    links: List[LinkRef] = []
    for element in document.iter_elements():
        attribute = HREF_ATTRIBUTES.get(element.name)
        if attribute is None:
            continue
        value = element.get_attr(attribute)
        if value is None or not is_followable(value):
            continue
        links.append(LinkRef(tag=element.name, attribute=attribute,
                             value=value.strip(),
                             embedded=element.name in EMBEDDED_TAGS))
    return links


def link_elements(document: Document) -> List[Element]:
    """The elements carrying followable references, document order."""
    elements: List[Element] = []
    for element in document.iter_elements():
        attribute = HREF_ATTRIBUTES.get(element.name)
        if attribute is None:
            continue
        value = element.get_attr(attribute)
        if value is not None and is_followable(value):
            elements.append(element)
    return elements
