"""Link templates: splice-based dirty-document reconstruction.

The paper prices a dirty document's full parse-and-regenerate pass at
~20 ms (section 5.3) — tokenize, build the parse tree, rewrite the
affected hyperlinks, serialize.  But between two regenerations of the
same document only the hyperlink *values* can change; every other byte of
the output is identical.  A :class:`LinkTemplate` captures that once: the
canonical serialization of the document plus the character span of every
followable href/src attribute value.  Regeneration then becomes a splice
— copy the unchanged stretches, drop in the replacement URLs — which is
orders of magnitude cheaper than the full round trip.

Correctness by construction: the template is built by the real serializer
(:func:`repro.html.serializer.serialize_html` with a capture hook), so the
template source and the span offsets come from the same code path that the
full parse-tree rewriter would use.  :meth:`LinkTemplate.splice` therefore
produces byte-identical output to ``serialize_html`` after
:func:`repro.html.rewriter.rewrite_links` on the same tree — the property
tests assert exactly that.  Splicing also returns a *new* template for the
regenerated source, so successive reconstructions keep using the fast
path without ever re-parsing.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Set, Tuple

from repro.html.links import HREF_ATTRIBUTES, is_followable
from repro.html.parser import Document, Element
from repro.html.rewriter import RewriteFn
from repro.html.serializer import serialize_html
from repro.html.tokenizer import escape_attribute


class LinkSpan(NamedTuple):
    """One followable reference inside a template's source.

    ``start``/``end`` delimit the *escaped* attribute value (inside its
    double quotes); ``value`` is the unescaped value as the parse tree
    stores it.  (A NamedTuple, not a dataclass: splicing rebuilds every
    span per regeneration, so construction cost is on the hot path.)
    """

    start: int
    end: int
    value: str
    tag: str
    attribute: str


class LinkTemplate:
    """A document's canonical source plus the spans of its references."""

    __slots__ = ("source", "spans")

    def __init__(self, source: str, spans: List[LinkSpan]) -> None:
        self.source = source
        self.spans = spans

    def __len__(self) -> int:
        return len(self.source)

    def compute_replacements(self, rewrite: RewriteFn) -> List[Optional[str]]:
        """Evaluate *rewrite* on every span, mirroring ``rewrite_links``:
        spans whose current value is no longer followable are skipped."""
        replacements: List[Optional[str]] = []
        for span in self.spans:
            if not is_followable(span.value):
                replacements.append(None)
            else:
                replacements.append(rewrite(span.value.strip()))
        return replacements

    def splice(self, rewrite: RewriteFn) -> Tuple[str, "LinkTemplate"]:
        """Regenerate via *rewrite*; returns ``(output, next_template)``.

        ``output`` is byte-identical to parsing this template's source,
        applying :func:`~repro.html.rewriter.rewrite_links`, and
        serializing.  ``next_template`` describes ``output`` so the next
        regeneration can splice again.
        """
        return self.splice_all(self.compute_replacements(rewrite))

    def splice_all(self, replacements: List[Optional[str]]
                   ) -> Tuple[str, "LinkTemplate"]:
        """Splice precomputed per-span *replacements* (``None`` = keep).

        Splitting replacement computation from splicing lets a host
        evaluate the rewrite mapping under its engine lock (cheap graph
        lookups) and run the string work outside it.
        """
        source = self.source
        if not any(replacement is not None and replacement != span.value
                   for span, replacement in zip(self.spans, replacements)):
            return source, self
        parts: List[str] = []
        new_spans: List[LinkSpan] = []
        cursor = 0
        shift = 0
        for span, replacement in zip(self.spans, replacements):
            if replacement is None or replacement == span.value:
                if shift:
                    span = LinkSpan(span.start + shift, span.end + shift,
                                    span.value, span.tag, span.attribute)
                new_spans.append(span)
                continue
            parts.append(source[cursor:span.start])
            escaped = escape_attribute(replacement)
            parts.append(escaped)
            new_start = span.start + shift
            new_end = new_start + len(escaped)
            shift += len(escaped) - (span.end - span.start)
            cursor = span.end
            new_spans.append(LinkSpan(new_start, new_end, replacement,
                                      span.tag, span.attribute))
        parts.append(source[cursor:])
        output = "".join(parts)
        return output, LinkTemplate(output, new_spans)


def build_link_template(document: Document) -> LinkTemplate:
    """Serialize *document* and capture the spans of its followable links.

    Only the attribute occurrence that ``Element.get_attr`` would return —
    the first with the matching name — becomes a span, so splicing touches
    exactly the values ``rewrite_links`` would touch.
    """
    spans: List[LinkSpan] = []
    seen: Set[Tuple[int, str]] = set()

    def capture(element: Element, index: int, name: str, value: str,
                start: int, end: int) -> None:
        if HREF_ATTRIBUTES.get(element.name) != name:
            return
        key = (id(element), name)
        if key in seen:
            return
        seen.add(key)
        if not is_followable(value):
            return
        spans.append(LinkSpan(start, end, value, element.name, name))

    source = serialize_html(document, capture=capture)
    return LinkTemplate(source, spans)
