"""Resource model: serializers, bandwidth, and the calibrated cost model.

Every contended resource — a node's CPU, its NIC egress, the switch
fabric — is a :class:`Serializer`: work reserves an interval on it and the
reservation start is pushed back while the resource is busy.  This is the
classic store-and-forward approximation; it captures saturation and
queueing delay, which is what the paper's scalability shapes depend on,
without per-packet bookkeeping.

Calibration (``CostModel`` defaults) targets the paper's absolute scale on
1998 hardware:

- ``request_cpu`` ≈ 1 ms: a 200 MHz Pentium running 12 worker threads
  peaked around 950 connections/s/server in the paper's LOD runs
  (7150 CPS over 8 servers, 15150 over 16);
- ``reconstruct_cpu`` = 20 ms and ``parse_cpu`` = 3 ms are taken directly
  from section 5.3;
- ``node_bandwidth`` = 100 Mbps switched Ethernet, ``switch_bandwidth`` =
  2.4 Gbps aggregate (section 5.2);
- ``client_overhead`` ≈ 22 ms models the client workstation's share of
  per-request work (the paper saw ~700 CPS per 8-instance client machine,
  i.e. roughly 45 requests/s per simulated client thread).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:
    from repro.faults import FaultPlan


class Serializer:
    """A resource that serves one reservation at a time.

    ``reserve`` returns the interval actually granted; the caller schedules
    its completion event at the returned end time.
    """

    __slots__ = ("name", "_busy_until", "_busy_time")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._busy_until = 0.0
        self._busy_time = 0.0

    def reserve(self, earliest: float, duration: float) -> Tuple[float, float]:
        """Reserve *duration* seconds starting no earlier than *earliest*."""
        if duration < 0:
            raise SimulationError(f"negative duration on {self.name}: {duration}")
        start = max(earliest, self._busy_until)
        end = start + duration
        self._busy_until = end
        self._busy_time += duration
        return start, end

    def busy_until(self) -> float:
        return self._busy_until

    def utilization(self, elapsed: float) -> float:
        """Fraction of [0, elapsed] this resource spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_time / elapsed)


class BandwidthLink(Serializer):
    """A serializer whose reservations are sized in bytes."""

    __slots__ = ("bits_per_second",)

    def __init__(self, bits_per_second: float, name: str = "") -> None:
        super().__init__(name)
        if bits_per_second <= 0:
            raise SimulationError(f"bandwidth must be positive: {bits_per_second}")
        self.bits_per_second = bits_per_second

    def transfer_time(self, nbytes: int) -> float:
        return (nbytes * 8.0) / self.bits_per_second

    def reserve_bytes(self, earliest: float, nbytes: int) -> Tuple[float, float]:
        return self.reserve(earliest, self.transfer_time(nbytes))


@dataclass(frozen=True)
class CostModel:
    """Calibrated timing constants for the simulated testbed."""

    # Server-side CPU costs (seconds).
    request_cpu: float = 0.001       # serve a document (lookup + syscall path)
    # Per-byte CPU for moving the document through the server (disk read,
    # buffer copies): ~20 MB/s on a Pentium-200.  This is what makes
    # large-file workloads CPU-heavier per connection (SBLog's ~400
    # conn/s/server vs LOD's ~950 in the paper).
    cpu_per_byte: float = 5e-8
    redirect_cpu: float = 0.0003     # 301: no disk fetch (section 4.4)
    error_cpu: float = 0.0002        # 404/400/503 generation
    reconstruct_cpu: float = 0.020   # parse + rewrite + regenerate (section 5.3)
    parse_cpu: float = 0.003         # parse without regeneration (section 5.3)
    # Link-template splice reconstruction: replacement URLs are spliced
    # into the document's canonical bytes without re-parsing, so a dirty
    # document costs a memory copy instead of the full 20 ms round trip.
    # Calibrated from benchmarks/test_reconstruction_fastpath.py (>= 5x
    # cheaper; ablations toggle ServerConfig.link_templates to compare).
    splice_cpu: float = 0.002

    # Network.
    node_bandwidth: float = 100e6    # bits/s per workstation NIC
    switch_bandwidth: float = 2.4e9  # bits/s aggregate through the switch
    link_latency: float = 0.0005     # one-way propagation + stack, seconds
    connection_overhead_bytes: int = 400   # TCP setup/teardown packets
    request_bytes: int = 240         # typical GET head on the wire
    # Persistent connections: when True, requests reuse established
    # channels (the real server's keep-alive front-end and pooled
    # server-to-server channels), so each request pays only the per-
    # exchange framing/ACK overhead instead of full setup/teardown.
    keep_alive: bool = False
    keepalive_overhead_bytes: int = 40     # ACKs + header growth per reuse

    # Client-side.
    client_overhead: float = 0.022   # per-request client work (main thread)
    image_helpers: int = 4           # parallel image fetch threads
    request_timeout: float = 4.0     # deadline for declaring a peer dead
    # 503 exponential backoff (section 5.2): 1 s, 2 s, 4 s, ... capped.
    # Benchmarks compress these together with the Table 1 intervals.
    backoff_base: float = 1.0
    backoff_ceiling: float = 64.0

    def effective_connection_overhead(self) -> int:
        """Per-request wire overhead under the current connection model."""
        if self.keep_alive:
            return self.keepalive_overhead_bytes
        return self.connection_overhead_bytes

    def cpu_cost(self, *, redirected: bool = False, error: bool = False,
                 reconstructed: bool = False, spliced: bool = False,
                 body_bytes: int = 0) -> float:
        """Total CPU charge for one served request.

        ``spliced`` qualifies a reconstruction as the link-template fast
        path, charged ``splice_cpu`` instead of ``reconstruct_cpu``.
        """
        if error:
            return self.error_cpu
        if redirected:
            return self.redirect_cpu
        cost = self.request_cpu + body_bytes * self.cpu_per_byte
        if reconstructed:
            cost += self.splice_cpu if spliced else self.reconstruct_cpu
        return cost


#: The default, paper-calibrated cost model.
PAPER_COSTS = CostModel()


class FaultyTransport:
    """Adapter between a :class:`repro.faults.FaultPlan` and virtual time.

    The simulator has no sockets to refuse or reset, so an injected fault
    becomes *when the sender observes failure*: refused/reset/truncated
    transfers fail after one link latency (the peer answered the attempt
    immediately), a blackholed peer burns the full request timeout (the
    partition swallows the packets), and a delay stretches the transfer.
    One consult per transfer in connect-then-exchange order, mirroring the
    real socket path, so a seed's schedule lines up across transports.
    """

    def __init__(self, plan: "FaultPlan", *, request_timeout: float,
                 link_latency: float) -> None:
        self.plan = plan
        self.request_timeout = request_timeout
        self.link_latency = link_latency

    def intercept(self, peer: str) -> Tuple[Optional[float], float]:
        """Consult the plan for one transfer toward *peer*.

        Returns ``(fail_after, extra_delay)``: ``fail_after=None`` lets
        the transfer proceed (``extra_delay`` added to its latency);
        otherwise the sender must observe failure after ``fail_after``
        virtual seconds.
        """
        event = self.plan.decide("connect", peer)
        if event is None:
            event = self.plan.decide("exchange", peer)
        if event is None:
            return None, 0.0
        if event.kind == "delay":
            return None, event.delay
        if event.kind == "corrupt":
            # Silent corruption: the transfer proceeds — the simulator
            # moves no real bytes, but consuming the event here keeps the
            # seeded schedule (and flip offsets) aligned with the socket
            # transports.
            return None, 0.0
        if event.kind == "blackhole":
            return self.request_timeout, 0.0
        return self.link_latency, 0.0

    # ------------------------------------------------------------------
    # Runtime partition control (membership/rediscovery chaos scenarios)
    # ------------------------------------------------------------------

    def partition(self, peer: str) -> None:
        """Blackhole every subsequent transfer toward *peer*.

        Note the plan is *this host's outbound* view: a bidirectional
        partition (the shape that exercises false-death rediscovery,
        since the victim must also stop gossiping back) needs
        ``partition`` called on both sides' transports.
        """
        self.plan.block(peer)

    def heal(self, peer: str) -> None:
        """Lift the partition toward *peer*; the rediscovery daemon's
        next re-probe then succeeds and triggers rejoin reconciliation."""
        self.plan.unblock(peer)
