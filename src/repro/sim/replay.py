"""Replay recorded access logs against a simulated cluster.

A :class:`ReplayClient` issues each :class:`~repro.datasets.logs.LogRecord`
at its recorded (scaled) time, always against the document's *home* URL —
the way a bookmark, a search-engine index, or a log recorded before any
migration addresses the site (paper section 4.4).  Migrated documents
therefore answer with a 301 which the replayer follows, so the fraction of
replay traffic measures the redirect overhead DCWS imposes on stale-URL
clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.datasets.logs import LogRecord
from repro.http.messages import Request, Response
from repro.http.urls import URL, join_url
from repro.sim.cluster import SimCluster

_MAX_REDIRECTS = 5


@dataclass
class ReplayStats:
    """Counters accumulated by one replay."""

    issued: int = 0
    succeeded: int = 0
    redirected: int = 0
    dropped: int = 0
    failed: int = 0
    statuses: List[int] = field(default_factory=list)


class ReplayClient:
    """Fires a trace's requests into a cluster at their recorded times."""

    def __init__(self, cluster: SimCluster, records: Sequence[LogRecord], *,
                 home_index: int = 0, time_scale: float = 1.0,
                 start_offset: float = 0.0) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.cluster = cluster
        self.records = list(records)
        self.home = cluster.locations[home_index]
        self.time_scale = time_scale
        self.start_offset = start_offset
        self.stats = ReplayStats()

    def start(self) -> None:
        """Schedule every record; call before ``cluster.run()``."""
        base = self.records[0].time if self.records else 0.0
        for record in self.records:
            when = self.start_offset + (record.time - base) * self.time_scale
            self.cluster.loop.schedule(
                self.cluster.loop.now + when,
                lambda r=record: self._issue(r))

    # ------------------------------------------------------------------

    def _issue(self, record: LogRecord, redirect_depth: int = 0,
               url: Optional[URL] = None) -> None:
        target = url if url is not None else \
            URL(self.home.host, self.home.port, record.path)
        request = Request(method="GET", target=target.request_target)
        request.headers.set("Host", target.authority)
        self.stats.issued += 1

        def received(response: Optional[Response]) -> None:
            if response is None:
                self.stats.failed += 1
                return
            self.stats.statuses.append(response.status)
            if response.status in (301, 302) and redirect_depth < _MAX_REDIRECTS:
                location = response.headers.get("Location")
                if location:
                    self.stats.redirected += 1
                    self._issue(record, redirect_depth + 1,
                                join_url(target, location))
                    return
            if response.status == 200:
                self.stats.succeeded += 1
            elif response.status == 503:
                self.stats.dropped += 1
            else:
                self.stats.failed += 1

        self.cluster.client_send(target, request, received)

    # ------------------------------------------------------------------

    @property
    def redirect_fraction(self) -> float:
        """Share of issued requests that needed at least one redirect."""
        if self.stats.issued == 0:
            return 0.0
        return self.stats.redirected / self.stats.issued


def attach_replay(cluster: SimCluster, records: Sequence[LogRecord], *,
                  home_index: int = 0, time_scale: float = 1.0,
                  start_offset: float = 0.0) -> ReplayClient:
    """Create a replayer and return it; pass ``start`` via ``extra_setup``::

        replayer = attach_replay(cluster, records)
        cluster.run(extra_setup=lambda c: replayer.start())
    """
    return ReplayClient(cluster, records, home_index=home_index,
                        time_scale=time_scale, start_offset=start_offset)
