"""Simulated server nodes.

:class:`QueuedServer` models the node: a bounded connection queue fed by
the front-end, a worker pool sharing one CPU, and a NIC egress link.  The
concrete subclasses plug in behaviour:

- :class:`SimServer` hosts a real :class:`~repro.server.engine.DCWSEngine`
  (the system under test);
- :class:`StaticServer` serves a fixed store with no DCWS logic — the
  building block for the round-robin-DNS and TCP-router baselines
  (:mod:`repro.baselines`).

Timing of one served request::

    arrival -> [queue] -> worker dequeues -> CPU reservation
            -> NIC reservation (response bytes + connection overhead)
            -> response arrives at requester after link latency

A worker is held from dequeue to the end of NIC transmission — and across
the whole server-to-server pull for lazy migration, exactly like the
blocking worker threads of the prototype.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.errors import DocumentNotFound
from repro.http.messages import Request, Response, error_response
from repro.http.status import StatusCode
from repro.server.engine import DCWSEngine, EngineReply, PullFromHome
from repro.server.filestore import DocumentStore, guess_content_type
from repro.sim.events import EventLoop
from repro.sim.network import BandwidthLink, CostModel, Serializer

RespondFn = Callable[[Optional[Response]], None]
SendFn = Callable[["QueuedServer", object, Request, RespondFn], None]


class QueuedServer:
    """Front-end queue + worker pool + CPU + NIC for one server node."""

    def __init__(self, name: str, loop: EventLoop, costs: CostModel, *,
                 workers: int, queue_length: int,
                 switch: Optional[BandwidthLink] = None,
                 cpu_scale: float = 1.0) -> None:
        self.name = name
        self.loop = loop
        self.costs = costs
        self.workers = workers
        self.queue_length = queue_length
        # Heterogeneity: CPU charges are multiplied by this factor (1.0 =
        # the calibrated Pentium-200; 2.0 = a machine half as fast).
        self.cpu_scale = cpu_scale
        self.cpu = Serializer(f"cpu:{name}")
        self.nic = BandwidthLink(costs.node_bandwidth, f"nic:{name}")
        self.switch = switch
        self.crashed = False
        self.busy_workers = 0
        self._queue: Deque[Tuple[Request, RespondFn]] = deque()
        # Counters surfaced to benches.
        self.arrivals = 0
        self.served = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # Arrival path (the front-end thread)
    # ------------------------------------------------------------------

    def deliver(self, request: Request, respond: RespondFn) -> None:
        """A connection reaches this node at the loop's current time."""
        if self.crashed:
            self.loop.schedule_after(self.costs.request_timeout,
                                     lambda: respond(None))
            return
        self.arrivals += 1
        if self.busy_workers < self.workers:
            self._begin(request, respond)
        elif len(self._queue) < self.queue_length:
            self._queue.append((request, respond))
        else:
            self._drop(request, respond)

    def _drop(self, request: Request, respond: RespondFn) -> None:
        """Queue overflow: graceful 503 from the front-end (section 5.2)."""
        self.dropped += 1
        self.on_drop(request)
        response = error_response(StatusCode.SERVICE_UNAVAILABLE,
                                  "connection queue full")
        __, cpu_end = self.cpu.reserve(self.loop.now,
                                       self.costs.error_cpu * self.cpu_scale)
        self._transmit(response, respond, earliest=cpu_end, hold_worker=False)

    # ------------------------------------------------------------------
    # Worker path
    # ------------------------------------------------------------------

    def _begin(self, request: Request, respond: RespondFn) -> None:
        self.busy_workers += 1
        self.handle(request, respond)

    def handle(self, request: Request, respond: RespondFn) -> None:
        """Subclass hook: compute and send the response.

        Implementations must end by calling :meth:`finish` exactly once
        per request (possibly asynchronously, after sub-requests).
        """
        raise NotImplementedError

    def finish(self, response: Response, respond: RespondFn, *,
               cpu_cost: float) -> None:
        """Charge CPU, transmit, and free the worker when the NIC is done."""
        __, cpu_end = self.cpu.reserve(self.loop.now,
                                       cpu_cost * self.cpu_scale)
        self._transmit(response, respond, earliest=cpu_end, hold_worker=True)
        self.served += 1

    def _transmit(self, response: Response, respond: RespondFn, *,
                  earliest: float, hold_worker: bool) -> None:
        nbytes = len(response.body) + self.costs.effective_connection_overhead()
        __, nic_end = self.nic.reserve_bytes(earliest, nbytes)
        arrival = nic_end + self.costs.link_latency
        if self.switch is not None:
            __, switch_end = self.switch.reserve_bytes(earliest, nbytes)
            arrival = max(arrival, switch_end + self.costs.link_latency)
        if hold_worker:
            self.loop.schedule(nic_end, self._release_worker)
        self.loop.schedule(arrival, lambda: respond(response))

    def _release_worker(self) -> None:
        self.busy_workers -= 1
        if self._queue and self.busy_workers < self.workers and not self.crashed:
            request, respond = self._queue.popleft()
            self._begin(request, respond)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Stop answering; queued connections get no response (timeout)."""
        self.crashed = True
        pending = list(self._queue)
        self._queue.clear()
        for __, respond in pending:
            self.loop.schedule_after(self.costs.request_timeout,
                                     lambda r=respond: r(None))

    def recover(self) -> None:
        self.crashed = False

    # Subclass hooks ----------------------------------------------------

    def on_drop(self, request: Request) -> None:
        """Called when the front-end sheds a connection."""


class SimServer(QueuedServer):
    """A DCWS server node: a real engine on a simulated node."""

    def __init__(self, engine: DCWSEngine, loop: EventLoop, costs: CostModel,
                 send: SendFn, *, switch: Optional[BandwidthLink] = None,
                 cpu_scale: float = 1.0) -> None:
        super().__init__(name=str(engine.location), loop=loop, costs=costs,
                         workers=engine.config.worker_threads,
                         queue_length=engine.config.socket_queue_length,
                         switch=switch, cpu_scale=cpu_scale)
        self.engine = engine
        self.send = send

    # ------------------------------------------------------------------

    def handle(self, request: Request, respond: RespondFn) -> None:
        result = self.engine.handle_request(request, self.loop.now)
        if isinstance(result, PullFromHome):
            # Lazy migration: the worker blocks on an HTTP session with the
            # home server (section 4.2, sub-condition 1).
            self.send(self, result.home, result.request,
                      lambda response: self._pull_done(result, response, respond))
            return
        self._reply(result, respond)

    def _pull_done(self, pull: PullFromHome, response: Optional[Response],
                   respond: RespondFn) -> None:
        reply = self.engine.complete_pull(pull, response, self.loop.now)
        self._reply(reply, respond)

    def _reply(self, reply: EngineReply, respond: RespondFn) -> None:
        status = reply.response.status
        cost = self.costs.cpu_cost(
            redirected=300 <= status < 400,
            error=status >= 400,
            reconstructed=reply.reconstructed,
            spliced=reply.spliced,
            body_bytes=len(reply.response.body))
        self.finish(reply.response, respond, cpu_cost=cost)

    def on_drop(self, request: Request) -> None:
        self.engine.metrics.record_drop(self.loop.now)

    # ------------------------------------------------------------------
    # Periodic machinery: the statistics/pinger threads
    # ------------------------------------------------------------------

    def run_tick(self) -> None:
        """Execute the engine's periodic work at the loop's current time."""
        if self.crashed:
            return
        for action in self.engine.tick(self.loop.now):
            self.send(self, action.peer, action.request,
                      lambda response, a=action: self.engine.complete_action(
                          a, response, self.loop.now))


class StaticServer(QueuedServer):
    """A plain static-file server: the unit of the baseline clusters.

    Serves documents from *store* verbatim; no migration, no redirects, no
    piggybacking.  Used by the round-robin DNS baseline (every node has a
    full replica, as with NCSA's AFS-shared cluster) and behind the TCP
    router baseline.
    """

    def __init__(self, name: str, store: DocumentStore, loop: EventLoop,
                 costs: CostModel, *, workers: int = 12,
                 queue_length: int = 100,
                 switch: Optional[BandwidthLink] = None) -> None:
        super().__init__(name=name, loop=loop, costs=costs, workers=workers,
                         queue_length=queue_length, switch=switch)
        self.store = store
        self.bytes_sent = 0

    def handle(self, request: Request, respond: RespondFn) -> None:
        path = request.path
        try:
            data = self.store.get(path)
        except DocumentNotFound:
            self.finish(error_response(StatusCode.NOT_FOUND, path), respond,
                        cpu_cost=self.costs.error_cpu)
            return
        response = Response(status=StatusCode.OK, body=data)
        response.headers.set("Content-Type", guess_content_type(path))
        response.headers.set("Content-Length", str(len(data)))
        self.bytes_sent += len(data)
        self.finish(response, respond,
                    cpu_cost=self.costs.cpu_cost(body_bytes=len(data)))
