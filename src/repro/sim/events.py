"""The discrete-event loop: a priority queue of timestamped callbacks.

Virtual time only advances when an event fires; a 30-minute experiment
costs exactly as much wall clock as its events do.  Events at equal
timestamps fire in scheduling order (a stable sequence number breaks
ties), which keeps runs deterministic for fixed seeds.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError


class EventLoop:
    """A minimal, deterministic discrete-event scheduler."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._sequence = 0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending(self) -> int:
        return len(self._queue)

    def schedule(self, when: float, callback: Callable[[], None]) -> None:
        """Arrange for *callback* to fire at virtual time *when*.

        Scheduling in the past is a programming error and raises
        :class:`repro.errors.SimulationError`.
        """
        if when < self._now:
            raise SimulationError(
                f"event scheduled in the past: {when} < now {self._now}")
        heapq.heappush(self._queue, (when, self._sequence, callback))
        self._sequence += 1

    def schedule_after(self, delay: float,
                       callback: Callable[[], None]) -> None:
        """Schedule *callback* *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.schedule(self._now + delay, callback)

    def run_until(self, end: float,
                  max_events: Optional[int] = None) -> int:
        """Fire events in timestamp order until *end* (inclusive).

        Returns the number of events processed.  ``max_events`` is a
        runaway guard for property tests.
        """
        fired = 0
        while self._queue and self._queue[0][0] <= end:
            when, __, callback = heapq.heappop(self._queue)
            self._now = when
            callback()
            fired += 1
            self._processed += 1
            if max_events is not None and fired >= max_events:
                break
        if self._now < end:
            self._now = end
        return fired

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the queue completely (bounded by *max_events*)."""
        fired = 0
        while self._queue:
            when, __, callback = heapq.heappop(self._queue)
            self._now = when
            callback()
            fired += 1
            self._processed += 1
            if fired >= max_events:
                raise SimulationError(
                    f"event loop exceeded {max_events} events — runaway?")
        return fired

    def every(self, interval: float, callback: Callable[[], None], *,
              end: float = float("inf"), start_offset: float = 0.0) -> None:
        """Fire *callback* every *interval* seconds until *end*.

        The callback receives no arguments; read the loop's ``now`` for
        the current time.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive: {interval}")

        first = self._now + (start_offset if start_offset > 0 else interval)

        def _tick_wrapper(when: float) -> None:
            callback()
            following = when + interval
            if following <= end:
                self.schedule(following, lambda: _tick_wrapper(following))

        if first <= end:
            self.schedule(first, lambda: _tick_wrapper(first))
