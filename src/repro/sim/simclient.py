"""The event-driven Algorithm 2 client for the simulator.

Behaviourally identical to :class:`repro.client.walker.RandomWalker` —
same cache semantics, link selection, redirect following and 503
exponential backoff — but written in continuation style so thousands of
concurrent clients run inside one event loop.

Each client models one benchmark *thread* of the paper: a main thread
navigating hyperlinks plus four helper threads fetching embedded images in
parallel.  ``CostModel.client_overhead`` charges the client workstation's
per-request work, which is what bounds a single client to roughly the
~45 requests/s the paper's client machines exhibited.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from repro.client.cache import ClientCache
from repro.client.walker import (
    MAX_STEPS,
    MIN_STEPS,
    ExponentialBackoff,
    WalkerStats,
    select_next_link,
)
from repro.core.naming import decode_migrated_path
from repro.errors import NamingError
from repro.http.cookies import build_cookie_header, parse_set_cookie
from repro.http.messages import Request, Response
from repro.http.urls import URL, join_url
from repro.sim.events import EventLoop
from repro.sim.network import CostModel, Serializer

# (links, images) of a fetched resource; resolved by the cluster's shared
# parse cache (real HTML parsing, memoized per distinct body).
ParsedLinks = Tuple[List[str], List[str]]
ParseFn = Callable[[str, bytes], ParsedLinks]
ClientSendFn = Callable[[URL, Request, Callable[[Optional[Response]], None]], None]

_MAX_REDIRECTS = 5


def _home_fallback(url: URL) -> Optional[URL]:
    """The home-server URL a migrated-form *url* encodes, if any.

    Pull-through naming means the home always holds the permanent copy,
    so a client that cannot reach a co-op can re-derive the home URL
    from the path alone — the same failover the real-socket client
    (:func:`repro.client.realclient.fetch_url`) performs.
    """
    try:
        home, original = decode_migrated_path(url.path)
    except NamingError:
        return None
    if home.host == url.host and home.port == url.port:
        return None
    return URL(home.host, home.port, original)


class SimClient:
    """One simulated benchmark client thread."""

    def __init__(self, index: int, loop: EventLoop, costs: CostModel, *,
                 send: ClientSendFn, parse: ParseFn,
                 entry_points: List[URL], seed: int,
                 min_steps: int = MIN_STEPS, max_steps: int = MAX_STEPS,
                 think_time: float = 0.0) -> None:
        if not entry_points:
            raise ValueError("client needs at least one entry-point URL")
        self.index = index
        self.loop = loop
        self.costs = costs
        self.send = send
        self.parse = parse
        self.entry_points = entry_points
        self.rng = random.Random(seed)
        self.min_steps = min_steps
        self.max_steps = max_steps
        # Mean user think time between page views (exponentially
        # distributed).  The paper's benchmark used zero think time and
        # flags that as future work (section 6); non-zero values model a
        # human reading each page before clicking on.
        self.think_time = think_time
        self.cache = ClientCache()
        self.backoff = ExponentialBackoff(base=costs.backoff_base,
                                          ceiling=costs.backoff_ceiling)
        self.stats = WalkerStats()
        # Completed-fetch latencies in virtual seconds (first issue to
        # terminal response, across redirects and 503 backoff retries) —
        # the availability/percentile raw material for the benches.
        self.latencies: List[float] = []
        # The client workstation's per-request work is serialized through
        # one CPU, shared by the main thread and the four image helpers —
        # this is what bounds one benchmark client to the paper's ~45
        # requests/s even on image-heavy pages.
        self._cpu = Serializer(f"client{index}-cpu")
        self._stopped = True
        self._steps_left = 0
        self._current: Optional[URL] = None
        # A simple cookie jar (one site per benchmark run, so no domain
        # scoping): lets clients traverse entry-gated sites (§3.1).
        self.cookies: dict = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, delay: float = 0.0) -> None:
        """Begin the infinite browse loop after *delay* seconds."""
        self._stopped = False
        self.loop.schedule_after(delay, self._begin_sequence)

    def stop(self) -> None:
        """Cease issuing new requests (in-flight ones complete harmlessly)."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Algorithm 2 outer loop
    # ------------------------------------------------------------------

    def _begin_sequence(self) -> None:
        if self._stopped:
            return
        self.cache.reset()
        self.stats.sequences += 1
        self._steps_left = self.rng.randint(self.min_steps, self.max_steps)
        entry = self.entry_points[self.rng.randrange(len(self.entry_points))]
        self._navigate(entry)

    def _navigate(self, url: URL) -> None:
        """One step: obtain the document, then its images, then follow on."""
        if self._stopped:
            return
        self._current = url
        cached = self.cache.lookup(str(url))
        if cached is not None:
            self.stats.cache_hits += 1
            self.stats.steps += 1
            __, links = cached
            # Images were fetched along with the page when it was cached.
            self._choose_next(links)
            return
        self._request(url, self._document_arrived)

    def _document_arrived(self, url: URL,
                          response: Optional[Response]) -> None:
        if self._stopped:
            return
        if response is None or response.status != 200:
            # Unreachable server or 404: the user gives up this sequence.
            if response is not None:
                self.stats.errors += 1
            self._begin_sequence()
            return
        self.stats.steps += 1
        content_type = response.headers.get("Content-Type", "") or ""
        links, images = self.parse(content_type, response.body)
        self.cache.store(str(url), len(response.body), links)
        pending = [raw for raw in images
                   if str(join_url(url, raw)) not in self.cache]
        if not pending:
            self._choose_next(links)
            return
        self._fetch_images(url, pending, links)

    # ------------------------------------------------------------------
    # Parallel image fetching (four helper threads)
    # ------------------------------------------------------------------

    def _fetch_images(self, base: URL, images: List[str],
                      links: List[str]) -> None:
        state = {"remaining": len(images), "queue": list(images)}

        def fetch_next() -> None:
            if self._stopped or not state["queue"]:
                return
            raw = state["queue"].pop(0)
            image_url = join_url(base, raw)
            if str(image_url) in self.cache:
                finish_one()
                fetch_next()
                return
            self._request(image_url,
                          lambda u, r: image_done(u, r))

        def image_done(image_url: URL, response: Optional[Response]) -> None:
            if self._stopped:
                return
            if response is not None and response.status == 200:
                self.cache.store(str(image_url), len(response.body), [])
            elif response is not None:
                self.stats.errors += 1
            finish_one()
            fetch_next()

        def finish_one() -> None:
            state["remaining"] -= 1
            if state["remaining"] == 0:
                # "wait until all the requested documents arrive" — done.
                self._choose_next(links)

        for __ in range(min(self.costs.image_helpers, len(images))):
            fetch_next()

    # ------------------------------------------------------------------

    def _choose_next(self, links: List[str]) -> None:
        if self._stopped:
            return
        self._steps_left -= 1
        raw_next = select_next_link(links, self.rng)
        if self._steps_left <= 0 or raw_next is None or self._current is None:
            self._after_thinking(self._begin_sequence)
            return
        target = join_url(self._current, raw_next)
        self._after_thinking(lambda: self._navigate(target))

    def _after_thinking(self, proceed: Callable[[], None]) -> None:
        """Run *proceed* after the user's (possibly zero) think time."""
        if self.think_time <= 0.0:
            proceed()
            return
        delay = self.rng.expovariate(1.0 / self.think_time)
        self.loop.schedule_after(delay, proceed)

    # ------------------------------------------------------------------
    # One fetch with redirects + backoff
    # ------------------------------------------------------------------

    def _request(self, url: URL,
                 on_done: Callable[[URL, Optional[Response]], None],
                 redirect_depth: int = 0, *,
                 _started: Optional[float] = None,
                 _fell_back: bool = False) -> None:
        """Issue one request after the client-side per-request overhead."""
        if _started is None:
            # Outermost call of this logical fetch: stamp its start and
            # record the total latency when the terminal response (or
            # failure) reaches the continuation — redirect hops and
            # backoff retries all count toward the same figure.
            _started = self.loop.now
            terminal = on_done

            def on_done(done_url: URL, response: Optional[Response],
                        _t0: float = _started,
                        _terminal=terminal) -> None:
                self.latencies.append(self.loop.now - _t0)
                _terminal(done_url, response)

        started = _started

        def issue() -> None:
            if self._stopped:
                return
            request = Request(method="GET", target=url.request_target)
            request.headers.set("Host", url.authority)
            if self.cookies:
                request.headers.set("Cookie",
                                    build_cookie_header(self.cookies))
            self.send(url, request, received)

        def received(response: Optional[Response]) -> None:
            if self._stopped:
                return
            self.stats.requests += 1
            if response is not None:
                for raw in response.headers.get_all("Set-Cookie"):
                    parsed = parse_set_cookie(raw)
                    if parsed is not None:
                        self.cookies[parsed[0]] = parsed[1]
            if response is None:
                # A dead co-op is not a dead document: retry once at the
                # home the migrated path encodes (replica failover).
                fallback = None if _fell_back else _home_fallback(url)
                if fallback is not None and redirect_depth < _MAX_REDIRECTS:
                    self.stats.replica_fallbacks += 1
                    self._request(fallback, on_done, redirect_depth + 1,
                                  _started=started, _fell_back=True)
                    return
                self.stats.errors += 1
                on_done(url, None)
                return
            self.stats.bytes_received += len(response.body)
            if response.status == 503:
                self.stats.drops += 1
                delay = self.backoff.on_drop()
                self.stats.backoff_time += delay
                self.loop.schedule_after(
                    delay, lambda: self._request(url, on_done, redirect_depth,
                                                 _started=started,
                                                 _fell_back=_fell_back))
                return
            self.backoff.on_success()
            if response.status in (301, 302) and redirect_depth < _MAX_REDIRECTS:
                location = response.headers.get("Location")
                if location:
                    self.stats.redirects += 1
                    target = join_url(url, location)
                    self._request(target, on_done, redirect_depth + 1,
                                  _started=started, _fell_back=_fell_back)
                    return
            on_done(url, response)

        __, ready = self._cpu.reserve(self.loop.now,
                                      self.costs.client_overhead)
        self.loop.schedule(ready, issue)
