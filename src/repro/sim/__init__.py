"""Discrete-event cluster simulator.

Substitutes for the paper's testbed (64 Pentium-200 workstations on
100 Mbps switched Ethernet) with a virtual-time model that hosts *real*
:class:`~repro.server.engine.DCWSEngine` instances and a faithful
Algorithm 2 client: every policy decision, hyperlink rewrite, piggybacked
header and 301/503 in a simulated run is produced by the same code the
real socket server runs — only time, queueing and byte transport are
modelled.

Model summary (see DESIGN.md for the calibration rationale):

- each server node has one CPU serializer (the prototype's 12 worker
  threads share a single-processor Pentium) and one NIC egress serializer
  (100 Mbps); the switch is a shared 2.4 Gbps aggregate;
- request service costs CPU (per-request parse/lookup, more for a dirty
  regeneration), then transmits the response through the NIC;
- the socket queue holds ``socket_queue_length`` connections; overflow is
  answered 503 by the front-end, and clients back off exponentially;
- clients walk hyperlinks per Algorithm 2 with a per-sequence cache and
  four parallel image helpers.
"""

from repro.sim.cluster import ClusterConfig, SimCluster, SimulationResult
from repro.sim.events import EventLoop
from repro.sim.network import CostModel, Serializer
from repro.sim.simclient import SimClient
from repro.sim.simserver import SimServer

__all__ = [
    "ClusterConfig",
    "CostModel",
    "EventLoop",
    "Serializer",
    "SimClient",
    "SimCluster",
    "SimServer",
    "SimulationResult",
]
