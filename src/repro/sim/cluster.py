"""Cluster orchestration: servers + clients + network + sampling.

:class:`SimCluster` assembles a complete experiment: DCWS server nodes
(the first hosts the data set; the rest start as empty co-ops, exactly the
paper's cold start), Algorithm 2 clients, the switched network, periodic
engine ticks, and a cluster-wide CPS/BPS sampler.  ``run()`` executes the
virtual-time experiment and returns a :class:`SimulationResult`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.client.walker import WalkerStats
from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.datasets.base import SiteContent
from repro.errors import SimulationError
from repro.html.links import extract_links
from repro.html.parser import parse_html
from repro.http.messages import Request, Response
from repro.http.urls import URL
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.server.stats import TimeSeries, sample_cluster
from repro.faults import FaultPlan
from repro.sim.events import EventLoop
from repro.sim.network import BandwidthLink, CostModel, FaultyTransport, PAPER_COSTS
from repro.sim.simclient import SimClient
from repro.sim.simserver import QueuedServer, SimServer


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of one simulated experiment."""

    servers: int = 4
    clients: int = 32
    duration: float = 60.0
    sample_interval: float = 10.0
    seed: int = 0
    server_config: ServerConfig = field(default_factory=ServerConfig)
    costs: CostModel = PAPER_COSTS
    client_ramp: float = 1.0       # stagger client starts over this window
    tick_period: Optional[float] = None
    host_prefix: str = "server"
    # Pre-balance the cluster before clients start: non-entry documents are
    # round-robin force-migrated across all servers, modelling a deployment
    # that has already completed its (rate-limited) warm-up.  Used by the
    # peak-load figures; Figure 8 runs cold (prewarm=False).
    prewarm: bool = False
    # Initial placement override: "cold" (all documents at home),
    # "balanced" (same as prewarm=True), or "skewed" (every movable
    # document force-migrated to a single co-op — an adversarial start
    # the policy must recover from via re-migration).  None defers to the
    # ``prewarm`` flag.  Paper future work §6: "the effects of initial
    # data distribution on the potential parallelism and scalability".
    initial_distribution: Optional[str] = None
    # Mean user think time between page views, seconds (0 reproduces the
    # paper's benchmark; the think-time ablation sweeps this).
    think_time: float = 0.0
    # Per-server CPU speed multipliers for heterogeneous clusters: server
    # i's CPU charges are multiplied by cpu_scales[i] (1.0 = a paper-spec
    # Pentium-200; 2.0 = half as fast).  None = homogeneous.
    cpu_scales: Optional[Sequence[float]] = None
    # Persistent-connection mode, mirroring the real server's keep-alive
    # front-end and pooled server-to-server channels: per-request
    # connection setup/teardown bytes drop to the per-exchange overhead
    # (CostModel.keepalive_overhead_bytes).  Shorthand for passing a
    # CostModel with keep_alive=True.
    keep_alive: bool = False
    # Deterministic fault injection on server-to-server transfers: the
    # same seeded FaultPlan the real transports consume, adapted to
    # virtual time by repro.sim.network.FaultyTransport.
    faults: Optional[FaultPlan] = None

    def effective_tick_period(self) -> float:
        if self.tick_period is not None:
            return self.tick_period
        return min(self.server_config.stats_interval,
                   self.server_config.pinger_interval) / 2.0


@dataclass
class SimulationResult:
    """Everything a bench needs from one run."""

    config: ClusterConfig
    series: TimeSeries
    client_stats: WalkerStats
    migrations: int
    revocations: int
    replications: int
    reconstructions: int
    redirects_served: int
    drops: int
    events_processed: int
    per_server: Dict[str, Dict[str, object]] = field(default_factory=dict)
    # Replication-group activity (replication_k >= 2 runs).
    repairs: int = 0
    replica_drops: int = 0
    # Client-observed request latencies (virtual seconds, issue to final
    # byte including redirects/retries), for percentile reporting.
    latencies: List[float] = field(default_factory=list)

    def latency_percentile(self, fraction: float) -> float:
        """The *fraction* percentile (0..1) of client latencies; 0.0
        when no latencies were recorded."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1,
                    max(0, int(fraction * len(ordered))))
        return ordered[index]

    @property
    def peak_cps(self) -> float:
        return self.series.peak_cps()

    @property
    def peak_bps(self) -> float:
        return self.series.peak_bps()

    def steady_cps(self, fraction: float = 0.5) -> float:
        return self.series.steady_state(fraction).mean_cps()

    def steady_bps(self, fraction: float = 0.5) -> float:
        return self.series.steady_state(fraction).mean_bps()


class SimCluster:
    """One virtual DCWS deployment plus its client population."""

    def __init__(self, sites: Union[SiteContent, Sequence[SiteContent]],
                 config: ClusterConfig) -> None:
        if isinstance(sites, SiteContent):
            sites = [sites]
        if not sites:
            raise SimulationError("cluster needs at least one site")
        if config.servers < 1:
            raise SimulationError("cluster needs at least one server")
        if len(sites) > config.servers:
            raise SimulationError("more sites than servers")
        if config.keep_alive and not config.costs.keep_alive:
            config = replace(config,
                             costs=replace(config.costs, keep_alive=True))
        self.sites = list(sites)
        self.config = config
        self.loop = EventLoop()
        self.switch = BandwidthLink(config.costs.switch_bandwidth, "switch")
        self.locations = [Location(f"{config.host_prefix}{i}", 80)
                          for i in range(config.servers)]
        self.fault_transport: Optional[FaultyTransport] = None
        if config.faults is not None:
            self.fault_transport = FaultyTransport(
                config.faults,
                request_timeout=config.costs.request_timeout,
                link_latency=config.costs.link_latency)
        self.servers: Dict[str, SimServer] = {}
        self._build_servers()
        self.entry_urls = self._entry_urls()
        self.clients: List[SimClient] = []
        self._build_clients()
        self._parse_cache: Dict[bytes, Tuple[List[str], List[str]]] = {}
        self._sampled = TimeSeries()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_servers(self) -> None:
        for index, location in enumerate(self.locations):
            if index < len(self.sites):
                store = MemoryStore(self.sites[index].documents)
                entry_points = self.sites[index].entry_points
            else:
                store = MemoryStore()
                entry_points = []
            engine = DCWSEngine(
                location, self.config.server_config, store,
                entry_points=entry_points,
                peers=[peer for peer in self.locations if peer != location])
            cpu_scale = 1.0
            if self.config.cpu_scales is not None:
                if len(self.config.cpu_scales) != self.config.servers:
                    raise SimulationError(
                        "cpu_scales must have one entry per server")
                cpu_scale = self.config.cpu_scales[index]
            server = SimServer(engine, self.loop, self.config.costs,
                               send=self._server_send, switch=self.switch,
                               cpu_scale=cpu_scale)
            self.servers[str(location)] = server

    def _entry_urls(self) -> List[URL]:
        urls: List[URL] = []
        for index, site in enumerate(self.sites):
            home = self.locations[index]
            urls.extend(URL(home.host, home.port, entry)
                        for entry in site.entry_points)
        return urls

    def _build_clients(self) -> None:
        for index in range(self.config.clients):
            client = SimClient(
                index, self.loop, self.config.costs,
                send=self._client_send, parse=self._parse,
                entry_points=self.entry_urls,
                seed=self.config.seed * 10_000 + index,
                think_time=self.config.think_time)
            self.clients.append(client)

    # ------------------------------------------------------------------
    # Network
    # ------------------------------------------------------------------

    def server_at(self, location: Location) -> Optional[SimServer]:
        return self.servers.get(str(location))

    def _server_send(self, source: QueuedServer, destination: Location,
                     request: Request,
                     on_response: Callable[[Optional[Response]], None]) -> None:
        """Server-to-server transfer (pulls, validations, pings)."""
        target = self.server_at(destination)
        if target is None or target.crashed:
            self.loop.schedule_after(self.config.costs.request_timeout,
                                     lambda: on_response(None))
            return
        extra_delay = 0.0
        if self.fault_transport is not None:
            fail_after, extra_delay = self.fault_transport.intercept(
                str(destination))
            if fail_after is not None:
                self.loop.schedule_after(fail_after,
                                         lambda: on_response(None))
                return
        __, send_end = source.nic.reserve_bytes(
            self.loop.now, self.config.costs.request_bytes)
        arrival = send_end + self.config.costs.link_latency + extra_delay
        self.loop.schedule(arrival,
                           lambda: target.deliver(request, on_response))

    def client_send(self, url: URL, request: Request,
                    on_response: Callable[[Optional[Response]], None]) -> None:
        """Public client-to-server send — for custom traffic sources such
        as the access-log replayer (:mod:`repro.sim.replay`)."""
        self._client_send(url, request, on_response)

    def _client_send(self, url: URL, request: Request,
                     on_response: Callable[[Optional[Response]], None]) -> None:
        """Client-to-server transfer (client NICs are not the bottleneck)."""
        target = self.servers.get(f"{url.host}:{url.port}")
        if target is None:
            self.loop.schedule_after(self.config.costs.request_timeout,
                                     lambda: on_response(None))
            return
        arrival = self.loop.now + self.config.costs.link_latency
        self.loop.schedule(arrival,
                           lambda: target.deliver(request, on_response))

    # ------------------------------------------------------------------
    # Shared parse service (memoized real HTML parsing)
    # ------------------------------------------------------------------

    def _parse(self, content_type: str, body: bytes) -> Tuple[List[str], List[str]]:
        if not content_type.startswith("text/html") or not body:
            return [], []
        cached = self._parse_cache.get(body)
        if cached is not None:
            return cached
        document = parse_html(body.decode("latin-1", "replace"))
        links: List[str] = []
        images: List[str] = []
        for link in extract_links(document):
            if link.embedded:
                images.append(link.value)
            elif link.tag in ("a", "area", "frame", "iframe"):
                links.append(link.value)
        result = (links, images)
        self._parse_cache[body] = result
        return result

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def crash_server(self, index: int) -> None:
        self.servers[str(self.locations[index])].crash()

    def recover_server(self, index: int) -> None:
        self.servers[str(self.locations[index])].recover()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, *, extra_setup: Optional[Callable[["SimCluster"], None]] = None
            ) -> SimulationResult:
        """Run the experiment for ``config.duration`` virtual seconds."""
        rng = random.Random(self.config.seed)
        for server in self.servers.values():
            server.engine.initialize(self.loop.now)
        distribution = self.config.initial_distribution or \
            ("balanced" if self.config.prewarm else "cold")
        if distribution == "balanced":
            self._prewarm()
        elif distribution == "skewed":
            self._prewarm(skew_to=1)
        elif distribution != "cold":
            raise SimulationError(
                f"unknown initial_distribution: {distribution!r}")
        tick_period = self.config.effective_tick_period()
        for offset, server in enumerate(self.servers.values()):
            jitter = (offset + 1) * tick_period / max(1, len(self.servers) + 1)
            self.loop.every(tick_period, server.run_tick,
                            end=self.config.duration, start_offset=jitter)
        ramp = max(self.config.client_ramp, 1e-9)
        for client in self.clients:
            client.start(delay=rng.uniform(0.0, ramp))
        self.loop.every(self.config.sample_interval, self._take_sample,
                        end=self.config.duration)
        if extra_setup is not None:
            extra_setup(self)
        self.loop.run_until(self.config.duration)
        for client in self.clients:
            client.stop()
        return self._result()

    def _prewarm(self, skew_to: Optional[int] = None) -> None:
        """Distribute each site's non-entry documents over the servers.

        Default: round-robin (the home keeps its 1/N share plus every
        entry point) — the state a long-running deployment converges to
        under saturation.  ``skew_to=i`` instead piles every movable
        document onto server *i* (the adversarial start of the
        initial-distribution ablation).  Migrated bytes still move lazily
        on first request, so a short organic warm-up remains.
        Single-location semantics are preserved: a hot document still
        lives on exactly one server, so hot-spot ceilings (SBLog, MAPUG)
        survive pre-warming.
        """
        for site_index in range(len(self.sites)):
            home = self.locations[site_index]
            engine = self.servers[str(home)].engine
            movable = [record.name for record in engine.graph.documents()
                       if not record.entry_point]
            movable.sort()
            targets = list(self.locations)
            for position, name in enumerate(movable):
                if skew_to is not None:
                    target = targets[skew_to % len(targets)]
                else:
                    target = targets[position % len(targets)]
                if target == home:
                    continue
                engine.policy.force_migrate(name, target, self.loop.now)
            # A long-running system has already rewritten its dirty
            # documents and its co-ops already hold their copies; complete
            # that state at t=0 so the run measures steady behaviour, not
            # an artificial regeneration/pull storm.
            engine.regenerate_dirty()
            for record in engine.graph.migrated_documents():
                coop_engine = self.servers[str(record.location)].engine
                data = engine.store.get(record.name)
                coop_engine.seed_hosted(home, record.name, data,
                                        record.version, self.loop.now)

    def _take_sample(self) -> None:
        engines = [server.engine for server in self.servers.values()]
        self._sampled.add(sample_cluster(self.loop.now, engines))

    def _result(self) -> SimulationResult:
        client_stats = WalkerStats()
        latencies: List[float] = []
        for client in self.clients:
            stats = client.stats
            client_stats.sequences += stats.sequences
            client_stats.steps += stats.steps
            client_stats.requests += stats.requests
            client_stats.bytes_received += stats.bytes_received
            client_stats.cache_hits += stats.cache_hits
            client_stats.drops += stats.drops
            client_stats.redirects += stats.redirects
            client_stats.errors += stats.errors
            client_stats.backoff_time += stats.backoff_time
            client_stats.replica_fallbacks += stats.replica_fallbacks
            latencies.extend(client.latencies)
        migrations = revocations = replications = 0
        reconstructions = redirects = drops = 0
        repairs = replica_drops = 0
        per_server: Dict[str, Dict[str, object]] = {}
        for key, server in self.servers.items():
            engine = server.engine
            migrations += engine.stats.migrations
            revocations += engine.stats.revocations
            replications += engine.stats.replications
            repairs += engine.stats.repairs
            replica_drops += engine.stats.replica_drops
            reconstructions += engine.stats.reconstructions
            redirects += engine.stats.responses_301
            drops += server.dropped
            per_server[key] = {
                "requests": engine.stats.requests,
                "served": server.served,
                "dropped": server.dropped,
                "migrated_away": len(engine.graph.migrated_documents()),
                "hosted": sum(1 for h in engine.hosted.values() if h.fetched),
                "pings": engine.stats.pings,
                "validations": engine.stats.validations,
                "redirects": engine.stats.responses_301,
                "cpu_utilization": server.cpu.utilization(self.loop.now),
                "nic_utilization": server.nic.utilization(self.loop.now),
            }
        return SimulationResult(
            config=self.config,
            series=self._sampled,
            client_stats=client_stats,
            migrations=migrations,
            revocations=revocations,
            replications=replications,
            reconstructions=reconstructions,
            redirects_served=redirects,
            drops=drops,
            events_processed=self.loop.events_processed,
            per_server=per_server,
            repairs=repairs,
            replica_drops=replica_drops,
            latencies=latencies,
        )
