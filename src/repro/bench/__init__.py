"""Benchmark harness: regenerate every table and figure of the paper.

- :mod:`repro.bench.harness` — scaled experiment runner (quick CI scale by
  default, ``REPRO_BENCH_SCALE=paper`` for full-fidelity runs);
- :mod:`repro.bench.figures` — one driver per experiment: Figure 6 (peak
  load vs clients), Figure 7 (scalability vs servers per data set),
  Figure 8 (cold-start growth), Table 2 (parameter tuning directions),
  section 5.3 overhead and CPS-vs-BPS analyses, plus the baseline and
  replication ablations;
- :mod:`repro.bench.reporting` — fixed-width table/series formatting.
"""

from repro.bench.harness import (
    PAPER_SCALE,
    QUICK_SCALE,
    ExperimentScale,
    current_scale,
    run_dcws,
)
from repro.bench.reporting import format_series, format_table

__all__ = [
    "ExperimentScale",
    "PAPER_SCALE",
    "QUICK_SCALE",
    "current_scale",
    "format_series",
    "format_table",
    "run_dcws",
]
