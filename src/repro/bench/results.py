"""Compile ``benchmarks/results/*.txt`` into one readable report.

Each bench writes its table/series to its own file; this module stitches
them into a single document (the order follows the paper's evaluation
section), used by ``python -m repro bench report`` style tooling and by
anyone wanting a one-file view of the latest run.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

#: Presentation order: the paper's artefacts first, ablations after.
REPORT_ORDER = (
    "table1",
    "figure6",
    "figure7",
    "figure8",
    "table2",
    "overhead",
    "cps_vs_bps",
    "ablation_baselines",
    "ablation_replication",
    "ablation_selection",
    "ablation_think_time",
    "ablation_bookmarks",
    "ablation_heterogeneity",
    "ablation_initial_distribution",
)


def collect_results(results_dir: str) -> Dict[str, str]:
    """Read every ``<name>.txt`` under *results_dir*."""
    collected: Dict[str, str] = {}
    if not os.path.isdir(results_dir):
        return collected
    for entry in sorted(os.listdir(results_dir)):
        if not entry.endswith(".txt"):
            continue
        path = os.path.join(results_dir, entry)
        try:
            with open(path) as handle:
                collected[entry[:-4]] = handle.read().strip()
        except OSError:
            continue
    return collected


def compile_report(results_dir: str, *,
                   title: str = "DCWS reproduction — latest results") -> str:
    """One document containing every available result, in paper order."""
    collected = collect_results(results_dir)
    lines: List[str] = [title, "=" * len(title), ""]
    if not collected:
        lines.append("(no results found — run `pytest benchmarks/ "
                     "--benchmark-only` first)")
        return "\n".join(lines)
    ordered = [name for name in REPORT_ORDER if name in collected]
    ordered += [name for name in sorted(collected) if name not in ordered]
    for name in ordered:
        lines.append(collected[name])
        lines.append("")
    lines.append(f"({len(ordered)} experiments)")
    return "\n".join(lines)


def write_report(results_dir: str, output_path: Optional[str] = None) -> str:
    """Compile and (optionally) save the report; returns its text."""
    report = compile_report(results_dir)
    if output_path:
        with open(output_path, "w") as handle:
            handle.write(report + "\n")
    return report
