"""Experiment drivers: one function per paper table/figure plus ablations.

Each driver runs the required sweep through the simulator and returns a
result object carrying the same rows/series the paper reports, a
``format()`` rendering for terminals, and shape-check helpers the pytest
benches assert on (who wins, by what factor, where crossovers fall).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.baselines.rr_dns import RoundRobinDNSCluster
from repro.baselines.tcprouter import TCPRouterCluster
from repro.bench.harness import (
    ExperimentScale,
    build_site,
    cluster_config,
    current_scale,
    run_dcws,
    saturating_clients,
    scaled_server_config,
)
from repro.bench.reporting import format_table, sparkline
from repro.core.config import ServerConfig
from repro.datasets.base import filler_text
from repro.html.parser import parse_html
from repro.html.rewriter import rewrite_html
from repro.server.stats import growth_profile
from repro.sim.cluster import SimCluster, SimulationResult

PAPER_DATASETS = ("mapug", "sblog", "lod", "sequoia")


# ======================================================================
# Figure 6: peak load — BPS and CPS vs number of concurrent clients
# ======================================================================

@dataclass
class Figure6Result:
    """CPS/BPS per (server count, client count) on the LOD data set."""

    dataset: str
    rows: List[Tuple[int, int, float, float]]  # servers, clients, cps, bps

    def series_for(self, servers: int) -> List[Tuple[int, float, float]]:
        return [(clients, cps, bps) for s, clients, cps, bps in self.rows
                if s == servers]

    def peak_cps(self, servers: int) -> float:
        return max((cps for s, __, cps, __ in self.rows if s == servers),
                   default=0.0)

    def peak_bps(self, servers: int) -> float:
        return max((bps for s, __, __, bps in self.rows if s == servers),
                   default=0.0)

    def format(self) -> str:
        return format_table(
            ("servers", "clients", "CPS", "BPS (MB/s)"),
            [(s, c, cps, bps / 1e6) for s, c, cps, bps in self.rows],
            title=f"Figure 6 — peak load, {self.dataset.upper()} data set")


def figure6(scale: Optional[ExperimentScale] = None, *,
            dataset: str = "lod",
            server_counts: Optional[Sequence[int]] = None,
            client_counts: Optional[Sequence[int]] = None) -> Figure6Result:
    """Sweep client population for several cluster sizes (paper Fig. 6).

    Expected shape: CPS/BPS rise roughly linearly with clients, flatten at
    a per-cluster-size peak, and the peak doubles when servers double.
    """
    scale = scale or current_scale()
    servers_sweep = tuple(server_counts or scale.server_counts)
    clients_sweep = tuple(client_counts or scale.client_counts)
    site = build_site(dataset)
    rows: List[Tuple[int, int, float, float]] = []
    for servers in servers_sweep:
        for clients in clients_sweep:
            result = run_dcws(site, servers=servers, clients=clients,
                              scale=scale, prewarm=True)
            rows.append((servers, clients,
                         result.steady_cps(), result.steady_bps()))
    return Figure6Result(dataset=dataset, rows=rows)


# ======================================================================
# Figure 7: scalability — peak BPS and CPS vs number of servers
# ======================================================================

@dataclass
class Figure7Result:
    """Peak CPS/BPS per (data set, server count)."""

    rows: List[Tuple[str, int, float, float]]  # dataset, servers, cps, bps

    def series_for(self, dataset: str) -> List[Tuple[int, float, float]]:
        return [(servers, cps, bps) for d, servers, cps, bps in self.rows
                if d == dataset]

    def scaling_ratio(self, dataset: str, low: int, high: int,
                      metric: str = "cps") -> float:
        """peak(high servers) / peak(low servers); 1.0 means no gain."""
        series = {servers: (cps, bps)
                  for __, servers, cps, bps in self.series_with_name(dataset)}
        index = 0 if metric == "cps" else 1
        low_value = series[low][index]
        if low_value <= 0:
            return float("inf")
        return series[high][index] / low_value

    def series_with_name(self, dataset: str):
        return [(d, servers, cps, bps) for d, servers, cps, bps in self.rows
                if d == dataset]

    def format(self) -> str:
        return format_table(
            ("dataset", "servers", "peak CPS", "peak BPS (MB/s)"),
            [(d, s, cps, bps / 1e6) for d, s, cps, bps in self.rows],
            title="Figure 7 — scalability across data sets")


def figure7(scale: Optional[ExperimentScale] = None, *,
            datasets: Sequence[str] = PAPER_DATASETS,
            server_counts: Optional[Sequence[int]] = None) -> Figure7Result:
    """Sweep cluster size for each data set (paper Fig. 7).

    Expected shape: LOD and Sequoia scale near-linearly; SBLog and MAPUG
    go clearly sub-linear at larger cluster sizes because their hot images
    saturate whichever co-op hosts them.
    """
    scale = scale or current_scale()
    servers_sweep = tuple(server_counts or scale.server_counts)
    rows: List[Tuple[str, int, float, float]] = []
    for dataset in datasets:
        site = build_site(dataset)
        for servers in servers_sweep:
            clients = saturating_clients(scale, servers)
            result = run_dcws(site, servers=servers, clients=clients,
                              scale=scale, prewarm=True)
            rows.append((dataset, servers,
                         result.steady_cps(), result.steady_bps()))
    return Figure7Result(rows=rows)


# ======================================================================
# Figure 8: time-exponential growth from a cold start
# ======================================================================

@dataclass
class Figure8Result:
    """CPS/BPS vs time from a cold start (1 home, empty co-ops)."""

    dataset: str
    servers: int
    times: List[float]
    cps: List[float]
    bps: List[float]
    migrations: int

    def cps_growth(self) -> List[float]:
        return growth_profile(self.cps)

    def is_accelerating(self, split: float = 0.5) -> bool:
        """True when the mean growth increment of the later part of the
        run exceeds the earlier part's — the "exponential" signature."""
        growth = self.cps_growth()
        if len(growth) < 4:
            return False
        pivot = int(len(growth) * split)
        early = growth[:pivot]
        late = growth[pivot:]
        if not early or not late:
            return False
        return (sum(late) / len(late)) > (sum(early) / len(early))

    def warmup_gain(self) -> float:
        """final CPS / initial CPS."""
        if not self.cps or self.cps[0] <= 0:
            return float("inf")
        return self.cps[-1] / self.cps[0]

    def format(self) -> str:
        lines = [f"Figure 8 — cold-start growth, {self.dataset.upper()}, "
                 f"{self.servers} servers ({self.migrations} migrations)"]
        lines.append("CPS  " + sparkline(self.cps))
        lines.append("BPS  " + sparkline(self.bps))
        rows = list(zip(self.times, self.cps,
                        (b / 1e6 for b in self.bps)))
        lines.append(format_table(("t (s)", "CPS", "BPS (MB/s)"), rows))
        return "\n".join(lines)


def figure8(scale: Optional[ExperimentScale] = None, *,
            dataset: str = "lod", servers: int = 8,
            clients: Optional[int] = None,
            warmup_compression: float = 3.0) -> Figure8Result:
    """Cold-start run (paper Fig. 8): all files on one home server,
    co-ops empty, performance sampled over time.

    The paper's warm-up spans 30 minutes at T_st = 10 s (≈180 migration
    opportunities).  ``warmup_compression`` shrinks the migration/
    consistency intervals a further factor below the scale's base
    compression so the same *number* of migration rounds fits in the
    scaled run — preserving the curve's shape, not its wall-clock span.
    """
    scale = scale or current_scale()
    site = build_site(dataset)
    client_count = clients if clients is not None else \
        saturating_clients(scale, servers)
    base = scaled_server_config(scale)
    compressed = base.scaled(1.0 / max(1.0, warmup_compression))
    result = run_dcws(site, servers=servers, clients=client_count,
                      scale=scale, prewarm=False,
                      server_config=compressed,
                      duration=scale.coldstart_duration)
    return Figure8Result(
        dataset=dataset, servers=servers,
        times=result.series.times(),
        cps=result.series.cps_series(),
        bps=result.series.bps_series(),
        migrations=result.migrations)


# ======================================================================
# Table 2: parameter-tuning trade-offs
# ======================================================================

@dataclass
class Table2Row:
    parameter: str
    low_value: float
    high_value: float
    metric: str
    low_result: float
    high_result: float
    expectation: str

    @property
    def matches_expectation(self) -> bool:
        """The paper predicts each metric's direction; check it."""
        if self.expectation == "higher_with_low":
            return self.low_result >= self.high_result
        return self.high_result >= self.low_result


@dataclass
class Table2Result:
    rows: List[Table2Row] = field(default_factory=list)

    def row(self, parameter: str) -> Table2Row:
        for row in self.rows:
            if row.parameter == parameter:
                return row
        raise KeyError(parameter)

    def format(self) -> str:
        return format_table(
            ("parameter", "low", "high", "metric", "@low", "@high", "as predicted"),
            [(r.parameter, r.low_value, r.high_value, r.metric,
              r.low_result, r.high_result, "yes" if r.matches_expectation else "NO")
             for r in self.rows],
            title="Table 2 — parameter tuning trade-offs")


def table2(scale: Optional[ExperimentScale] = None, *,
           dataset: str = "lod", servers: int = 4) -> Table2Result:
    """Measure each Table 2 trade-off with a low/high parameter pair.

    Every run is a cold start so migration/consistency machinery is fully
    exercised; metrics are overhead or responsiveness counters whose
    direction the paper predicts in Table 2.
    """
    scale = scale or current_scale()
    site = build_site(dataset)
    base = scaled_server_config(scale)
    clients = saturating_clients(scale, servers)
    duration = scale.duration * 2

    def run_with(config: ServerConfig) -> SimulationResult:
        return run_dcws(site, servers=servers, clients=clients, scale=scale,
                        prewarm=False, duration=duration,
                        server_config=config)

    result = Table2Result()

    # T_st: lower -> more migration/recalculation overhead (more
    # migrations in the same window); higher -> longer delay to balance.
    low, high = base.stats_interval * 0.5, base.stats_interval * 4
    r_low = run_with(replace(base, stats_interval=low))
    r_high = run_with(replace(base, stats_interval=high))
    result.rows.append(Table2Row(
        "T_st", low, high, "migrations",
        float(r_low.migrations), float(r_high.migrations),
        expectation="higher_with_low"))

    # T_pi: lower -> more overhead due to forced pinger requests.
    low, high = base.pinger_interval * 0.5, base.pinger_interval * 4
    r_low = run_with(replace(base, pinger_interval=low))
    r_high = run_with(replace(base, pinger_interval=high))
    pings_low = _total_pings(r_low)
    pings_high = _total_pings(r_high)
    result.rows.append(Table2Row(
        "T_pi", low, high, "forced pings",
        pings_low, pings_high, expectation="higher_with_low"))

    # T_val: lower -> more (re)validation transfers of unchanged documents.
    low, high = base.validation_interval * 0.25, base.validation_interval * 4
    r_low = run_with(replace(base, validation_interval=low))
    r_high = run_with(replace(base, validation_interval=high))
    result.rows.append(Table2Row(
        "T_val", low, high, "validation transfers",
        _total_validations(r_low), _total_validations(r_high),
        expectation="higher_with_low"))

    # T_home: lower -> more overhead for migration and redirection
    # (re-migrations happen sooner and more often).
    low, high = base.home_remigration_interval * 0.1, \
        base.home_remigration_interval * 10
    r_low = run_with(replace(base, home_remigration_interval=low,
                             imbalance_tolerance=1.05))
    r_high = run_with(replace(base, home_remigration_interval=high,
                              imbalance_tolerance=1.05))
    result.rows.append(Table2Row(
        "T_home", low, high, "migrations+redirects",
        float(r_low.migrations + r_low.redirects_served),
        float(r_high.migrations + r_high.redirects_served),
        expectation="higher_with_low"))

    # T_coop: lower -> shorter delay to balance load (more migrations
    # early, faster spread); higher -> less often migration.
    low, high = base.coop_migration_spacing * 0.25, \
        base.coop_migration_spacing * 4
    r_low = run_with(replace(base, coop_migration_spacing=low))
    r_high = run_with(replace(base, coop_migration_spacing=high))
    result.rows.append(Table2Row(
        "T_coop", low, high, "migrations",
        float(r_low.migrations), float(r_high.migrations),
        expectation="higher_with_low"))
    return result


def _total_pings(result: SimulationResult) -> float:
    return float(sum(int(info.get("pings", 0))
                     for info in result.per_server.values()))


def _total_validations(result: SimulationResult) -> float:
    return float(sum(int(info.get("validations", 0))
                     for info in result.per_server.values()))


# ======================================================================
# Section 5.3 — parsing/reconstruction overhead
# ======================================================================

@dataclass
class OverheadResult:
    """Measured parse/reconstruct costs plus in-run reconstruction rates."""

    mean_document_bytes: float
    parse_ms: float
    reconstruct_ms: float
    mean_reconstruction_rate: float   # documents per second (simulated run)
    peak_reconstruction_rate: float
    paper_parse_ms: float = 3.0
    paper_reconstruct_ms: float = 20.0

    def format(self) -> str:
        return format_table(
            ("quantity", "paper (1998 CPU)", "measured"),
            [("mean document size (KB)", 6.5, self.mean_document_bytes / 1024),
             ("parse time (ms/doc)", self.paper_parse_ms, self.parse_ms),
             ("reconstruct time (ms/doc)", self.paper_reconstruct_ms,
              self.reconstruct_ms),
             ("LOD reconstruction rate avg (doc/s)", 1.3,
              self.mean_reconstruction_rate),
             ("LOD reconstruction rate peak (doc/s)", 17.2,
              self.peak_reconstruction_rate)],
            title="Section 5.3 — parsing and reconstruction overhead")


def overhead(scale: Optional[ExperimentScale] = None, *,
             corpus_documents: int = 200,
             document_bytes: int = 6500) -> OverheadResult:
    """Time the real parser/rewriter on a 6.5 KB-average corpus and read
    reconstruction rates out of a cold-start LOD run (paper section 5.3)."""
    scale = scale or current_scale()
    import random as _random

    rng = _random.Random(7)
    corpus: List[str] = []
    for index in range(corpus_documents):
        links = "".join(
            f'<a href="/doc{(index + k) % corpus_documents}.html">x</a>'
            for k in range(10))
        body = filler_text(rng, document_bytes - 400)
        corpus.append(f"<html><head><title>d{index}</title></head>"
                      f"<body>{links}<p>{body}</p></body></html>")
    mean_bytes = sum(len(d) for d in corpus) / len(corpus)

    start = _time.perf_counter()
    for source in corpus:
        parse_html(source)
    parse_ms = (_time.perf_counter() - start) * 1000.0 / len(corpus)

    start = _time.perf_counter()
    for source in corpus:
        rewrite_html(source, lambda value: value + "?v=2"
                     if value.startswith("/doc") else None)
    reconstruct_ms = (_time.perf_counter() - start) * 1000.0 / len(corpus)

    site = build_site("lod")
    result = run_dcws(site, servers=4,
                      clients=saturating_clients(scale, 4),
                      scale=scale, prewarm=False,
                      duration=scale.duration * 2)
    rates = [s.reconstructions_per_second for s in result.series.samples]
    mean_rate = (sum(rates) / len(rates)) if rates else 0.0
    peak_rate = max(rates, default=0.0)
    return OverheadResult(
        mean_document_bytes=mean_bytes,
        parse_ms=parse_ms,
        reconstruct_ms=reconstruct_ms,
        mean_reconstruction_rate=mean_rate,
        peak_reconstruction_rate=peak_rate)


# ======================================================================
# Section 5.3 — CPS vs BPS ordering across data sets
# ======================================================================

@dataclass
class CpsVsBpsResult:
    rows: List[Tuple[str, float, float, float]]  # dataset, cps, bps, bytes/conn

    def bps_order(self) -> List[str]:
        return [d for d, __, bps, __ in
                sorted(self.rows, key=lambda r: -r[2])]

    def cps_order(self) -> List[str]:
        return [d for d, cps, __, __ in
                sorted(self.rows, key=lambda r: -r[1])]

    def format(self) -> str:
        return format_table(
            ("dataset", "CPS", "BPS (MB/s)", "bytes/conn"),
            [(d, cps, bps / 1e6, bpc) for d, cps, bps, bpc in self.rows],
            title="Section 5.3 — CPS vs BPS across data sets")


def cps_vs_bps(scale: Optional[ExperimentScale] = None, *,
               servers: int = 4,
               datasets: Sequence[str] = PAPER_DATASETS) -> CpsVsBpsResult:
    """Peak CPS and BPS for every data set at one cluster size.

    Expected shape (section 5.3): BPS ranks by mean document size
    (Sequoia > SBLog > MAPUG > LOD) and CPS ranks in the reverse order.
    """
    scale = scale or current_scale()
    rows: List[Tuple[str, float, float, float]] = []
    for dataset in datasets:
        site = build_site(dataset)
        result = run_dcws(site, servers=servers,
                          clients=saturating_clients(scale, servers),
                          scale=scale, prewarm=True)
        cps = result.steady_cps()
        bps = result.steady_bps()
        rows.append((dataset, cps, bps, (bps / cps) if cps > 0 else 0.0))
    return CpsVsBpsResult(rows=rows)


# ======================================================================
# Ablations
# ======================================================================

@dataclass
class BaselineComparison:
    rows: List[Tuple[str, str, int, float, float, float]]
    # (dataset, system, servers, cps, bps, storage MB)

    def steady_cps_of(self, dataset: str, system: str, servers: int) -> float:
        for d, s, n, cps, __, __ in self.rows:
            if (d, s, n) == (dataset, system, servers):
                return cps
        raise KeyError((dataset, system, servers))

    def format(self) -> str:
        return format_table(
            ("dataset", "system", "servers", "CPS", "BPS (MB/s)", "storage (MB)"),
            [(d, s, n, cps, bps / 1e6, storage / 1e6)
             for d, s, n, cps, bps, storage in self.rows],
            title="Ablation — DCWS vs round-robin DNS vs TCP router")


def ablation_baselines(scale: Optional[ExperimentScale] = None, *,
                       datasets: Sequence[str] = ("lod",),
                       server_counts: Sequence[int] = (2, 8)) -> BaselineComparison:
    """DCWS against the related-work architectures of section 2."""
    scale = scale or current_scale()
    rows: List[Tuple[str, str, int, float, float, float]] = []
    for dataset in datasets:
        site = build_site(dataset)
        for servers in server_counts:
            clients = saturating_clients(scale, servers)
            dcws = run_dcws(site, servers=servers, clients=clients,
                            scale=scale, prewarm=True)
            rows.append((dataset, "dcws", servers, dcws.steady_cps(),
                         dcws.steady_bps(),
                         float(site.stats.total_bytes)))
            config = cluster_config(scale, servers=servers, clients=clients)
            rr = RoundRobinDNSCluster(site, config).run()
            rows.append((dataset, "rr-dns", servers, rr.steady_cps(),
                         rr.steady_bps(), float(rr.storage_bytes)))
            router = TCPRouterCluster(site, config).run()
            rows.append((dataset, "tcp-router", servers, router.steady_cps(),
                         router.steady_bps(), float(router.storage_bytes)))
    return BaselineComparison(rows=rows)


@dataclass
class ReplicationAblation:
    dataset: str
    servers: int
    cps_without: float
    cps_with: float
    replications: int

    @property
    def gain(self) -> float:
        if self.cps_without <= 0:
            return float("inf")
        return self.cps_with / self.cps_without

    def format(self) -> str:
        return format_table(
            ("variant", "CPS"),
            [("single location (prototype)", self.cps_without),
             (f"replication x3 ({self.replications} replications)",
              self.cps_with)],
            title=f"Ablation — hot-spot replication, {self.dataset.upper()},"
                  f" {self.servers} servers")


def ablation_replication(scale: Optional[ExperimentScale] = None, *,
                         dataset: str = "sblog",
                         servers: int = 8) -> ReplicationAblation:
    """The paper's future-work fix (section 6): replicate hot documents.

    Expected shape: on the hot-spot data set, allowing replicas raises the
    ceiling the single hot co-op imposed.
    """
    scale = scale or current_scale()
    site = build_site(dataset)
    clients = saturating_clients(scale, servers)
    base = scaled_server_config(scale)
    # Long enough for replica links to propagate: referring documents
    # hosted on co-ops only pick up rewritten links at their next
    # validation, so the run must span several validation intervals.
    duration = max(scale.duration * 2, base.validation_interval * 3)
    without = run_dcws(site, servers=servers, clients=clients, scale=scale,
                       prewarm=True, server_config=base, duration=duration)
    with_replicas = run_dcws(
        site, servers=servers, clients=clients, scale=scale, prewarm=True,
        duration=duration,
        server_config=replace(base, max_replicas=4,
                              imbalance_tolerance=1.05))
    return ReplicationAblation(
        dataset=dataset, servers=servers,
        cps_without=without.steady_cps(),
        cps_with=with_replicas.steady_cps(),
        replications=with_replicas.replications)


@dataclass
class KillHolderBench:
    """Availability and tail latency when a replica holder is killed.

    Two variants of the same kill-one-holder experiment: the revoke/
    re-home baseline (``replication_k=1``, the pre-replication-groups
    behaviour) versus replication groups with autonomous repair
    (``replication_k=2``).  Availability is the fraction of client
    requests that did not end in a transport failure or error status.
    """

    dataset: str
    servers: int
    crash_at: float
    rows: List[Tuple[str, float, float, int, int, int, int]]
    # (variant, availability, p99 latency, errors, repairs,
    #  replica_drops, revocations)

    def row(self, variant: str) -> Tuple[str, float, float, int, int, int, int]:
        for entry in self.rows:
            if entry[0] == variant:
                return entry
        raise KeyError(variant)

    def availability(self, variant: str) -> float:
        return self.row(variant)[1]

    def p99(self, variant: str) -> float:
        return self.row(variant)[2]

    def format(self) -> str:
        return format_table(
            ("variant", "availability", "p99 (s)", "errors", "repairs",
             "replica drops", "revocations"),
            self.rows,
            title=f"Bench — kill one holder, {self.dataset.upper()},"
                  f" {self.servers} servers, crash at t={self.crash_at:.1f}s")


def bench_kill_holder(scale: Optional[ExperimentScale] = None, *,
                      dataset: str = "sblog", servers: int = 6,
                      crash_fraction: float = 0.4) -> KillHolderBench:
    """Kill the busiest co-op mid-run under a Zipf flash crowd.

    Expected shape: with replication groups (k=2) the surviving copy
    keeps the hot documents reachable while the repair daemon restores
    the group, so availability stays strictly above the revoke/re-home
    baseline, whose clients burn timeouts against the dead holder until
    the pinger declares it and every document is yanked back home.
    """
    scale = scale or current_scale()
    site = build_site(dataset)
    clients = saturating_clients(scale, servers)
    base = scaled_server_config(scale)
    # Long enough that detection (ping_failure_limit pings) and at least
    # one repair round both land well inside the post-crash window.
    duration = max(scale.duration * 2, base.pinger_interval * 10)
    crash_at = duration * crash_fraction

    def kill_busiest(cluster: SimCluster) -> None:
        def kill() -> None:
            busiest = max(
                range(1, cluster.config.servers),
                key=lambda i: cluster.servers[
                    str(cluster.locations[i])].served)
            cluster.crash_server(busiest)
        cluster.loop.schedule(crash_at, kill)

    variants = (
        ("baseline", base),
        ("replicated", replace(base, replication_k=2, max_replicas=4,
                               max_replications_per_interval=32)),
    )
    rows: List[Tuple[str, float, float, int, int, int, int]] = []
    for variant, server_config in variants:
        config = cluster_config(scale, servers=servers, clients=clients,
                                prewarm=True, duration=duration,
                                server_config=server_config)
        result = SimCluster(site, config).run(extra_setup=kill_busiest)
        requests = max(1, result.client_stats.requests)
        availability = 1.0 - result.client_stats.errors / requests
        rows.append((variant, availability,
                     result.latency_percentile(0.99),
                     result.client_stats.errors, result.repairs,
                     result.replica_drops, result.revocations))
    return KillHolderBench(dataset=dataset, servers=servers,
                           crash_at=crash_at, rows=rows)


@dataclass
class SelectionAblation:
    rows: List[Tuple[str, float, int, int]]
    # (policy, steady cps, migrations, reconstructions)

    def row(self, policy: str) -> Tuple[str, float, int, int]:
        for entry in self.rows:
            if entry[0] == policy:
                return entry
        raise KeyError(policy)

    def format(self) -> str:
        return format_table(
            ("policy", "CPS", "migrations", "reconstructions"),
            self.rows,
            title="Ablation — Algorithm 1 selection policy")


@dataclass
class ThinkTimeAblation:
    rows: List[Tuple[float, float, float]]  # think time, cps, cps/client

    def format(self) -> str:
        return format_table(
            ("think time (s)", "CPS", "CPS per client"),
            self.rows,
            title="Ablation — user think time (paper future work §6)")


def ablation_think_time(scale: Optional[ExperimentScale] = None, *,
                        dataset: str = "lod", servers: int = 4,
                        think_times: Sequence[float] = (0.0, 2.0, 8.0)
                        ) -> ThinkTimeAblation:
    """Effect of user think time on delivered load.

    The paper's benchmark used zero think time (maximum pressure per
    client).  With think time, each client demands less, so the same
    cluster supports far more concurrent users at the same CPS — the
    "more realistic situations" of section 6.
    """
    scale = scale or current_scale()
    from repro.bench.harness import cluster_config

    site = build_site(dataset)
    clients = saturating_clients(scale, servers)
    rows: List[Tuple[float, float, float]] = []
    for think in think_times:
        config = replace(cluster_config(scale, servers=servers,
                                        clients=clients, prewarm=True),
                         think_time=think)
        result = SimCluster(site, config).run()
        cps = result.steady_cps()
        rows.append((think, cps, cps / clients))
    return ThinkTimeAblation(rows=rows)


@dataclass
class BookmarkAblation:
    """Stale-URL (bookmark/search-engine/log-replay) traffic cost."""

    replay_requests: int
    replay_redirected: int
    replay_succeeded: int
    walker_cps: float

    @property
    def redirect_fraction(self) -> float:
        if self.replay_requests == 0:
            return 0.0
        return self.replay_redirected / self.replay_requests

    def format(self) -> str:
        return format_table(
            ("quantity", "value"),
            [("replayed stale-URL requests", self.replay_requests),
             ("  -> answered via 301 redirect", self.replay_redirected),
             ("  -> ultimately served 200", self.replay_succeeded),
             ("redirect fraction", self.redirect_fraction),
             ("concurrent walker CPS (unaffected)", self.walker_cps)],
            title="Ablation — bookmark/log-replay traffic (sections 4.4, 6)")


def ablation_bookmarks(scale: Optional[ExperimentScale] = None, *,
                       dataset: str = "lod",
                       servers: int = 4) -> BookmarkAblation:
    """Replay a synthesized access log (pre-migration URLs) against a
    warmed cluster while normal walkers browse.

    Shape claim (section 4.4): stale-URL requests for migrated documents
    are answered with cheap 301s and still succeed after one extra
    connection; the redirect fraction approximates the migrated share of
    the replayed document population.
    """
    scale = scale or current_scale()
    from repro.bench.harness import cluster_config
    from repro.datasets.logs import generate_access_log
    from repro.sim.replay import attach_replay

    site = build_site(dataset)
    records = generate_access_log(site, duration=scale.duration * 0.8,
                                  sequences_per_second=3.0, seed=5)
    config = cluster_config(scale, servers=servers,
                            clients=saturating_clients(scale, servers) // 2,
                            prewarm=True)
    cluster = SimCluster(site, config)
    replayer = attach_replay(cluster, records, time_scale=1.0,
                             start_offset=1.0)
    result = cluster.run(extra_setup=lambda c: replayer.start())
    return BookmarkAblation(
        replay_requests=replayer.stats.issued,
        replay_redirected=replayer.stats.redirected,
        replay_succeeded=replayer.stats.succeeded,
        walker_cps=result.steady_cps())


@dataclass
class HeterogeneityAblation:
    rows: List[Tuple[str, str, float, float]]
    # (cluster kind, system, cps, drops/s-ish)

    def cps_of(self, kind: str, system: str) -> float:
        for k, s, cps, __ in self.rows:
            if (k, s) == (kind, system):
                return cps
        raise KeyError((kind, system))

    def format(self) -> str:
        return format_table(
            ("cluster", "system", "CPS", "drops"),
            self.rows,
            title="Ablation — heterogeneous servers (section 2 motivation)")


def ablation_heterogeneity(scale: Optional[ExperimentScale] = None, *,
                           dataset: str = "lod",
                           servers: int = 4) -> HeterogeneityAblation:
    """DCWS vs round-robin DNS on homogeneous vs heterogeneous clusters.

    Related work (section 2) notes that heterogeneous servers break plain
    round-robin scheduling.  Here half the servers are 2x slower: blind
    RR-DNS keeps sending them an equal share (drops rise), while DCWS's
    load-table feedback steers documents toward the fast machines.
    """
    scale = scale or current_scale()
    from repro.bench.harness import cluster_config
    from repro.baselines.rr_dns import RoundRobinDNSCluster

    site = build_site(dataset)
    clients = saturating_clients(scale, servers)
    hetero_scales = tuple(2.0 if i % 2 else 1.0 for i in range(servers))
    base = scaled_server_config(scale)
    # Long enough for re-migration (T_home) to pull documents back off
    # the overloaded slow machines.
    duration = max(scale.duration * 2, base.home_remigration_interval * 2.5)
    rows: List[Tuple[str, str, float, float]] = []
    for kind, scales in (("homogeneous", None), ("heterogeneous",
                                                 hetero_scales)):
        config = replace(cluster_config(scale, servers=servers,
                                        clients=clients, prewarm=True,
                                        duration=duration),
                         cpu_scales=scales)
        dcws = SimCluster(site, config).run()
        rows.append((kind, "dcws", dcws.steady_cps(), float(dcws.drops)))
        # Extension: drop-pressure-aware load metric (overloaded slow
        # machines advertise their drops as load).
        dp_config = replace(config, server_config=replace(
            base, drop_pressure_weight=25.0))
        dcws_dp = SimCluster(site, dp_config).run()
        rows.append((kind, "dcws+droppressure", dcws_dp.steady_cps(),
                     float(dcws_dp.drops)))
        rr = RoundRobinDNSCluster(site, config, dns_ttl=10.0)
        if scales is not None:
            for index, server in enumerate(rr.servers):
                server.cpu_scale = scales[index]
        rr_result = rr.run()
        rows.append((kind, "rr-dns", rr_result.steady_cps(),
                     float(rr_result.drops)))
    return HeterogeneityAblation(rows=rows)


@dataclass
class InitialDistributionAblation:
    rows: List[Tuple[str, float, float, float]]
    # (distribution, early cps, steady cps, final cps)

    def row(self, distribution: str) -> Tuple[str, float, float, float]:
        for entry in self.rows:
            if entry[0] == distribution:
                return entry
        raise KeyError(distribution)

    def format(self) -> str:
        return format_table(
            ("initial distribution", "early CPS", "steady CPS", "final CPS"),
            self.rows,
            title="Ablation — initial data distribution (future work §6)")


def ablation_initial_distribution(scale: Optional[ExperimentScale] = None, *,
                                  dataset: str = "lod", servers: int = 4
                                  ) -> InitialDistributionAblation:
    """Effect of the starting placement on parallelism (future work §6).

    Three starts on the same cluster: *balanced* (round-robin — the
    converged state), *cold* (everything at home) and *skewed*
    (everything piled on a single co-op).  Shape claims: balanced is the
    ceiling; both degenerate starts begin far below it and climb as the
    (rate-limited) migration machinery redistributes documents.
    """
    scale = scale or current_scale()
    from repro.bench.harness import cluster_config

    site = build_site(dataset)
    clients = saturating_clients(scale, servers)
    base = scaled_server_config(scale)
    duration = max(scale.duration * 3, base.home_remigration_interval * 2.0)
    rows: List[Tuple[str, float, float, float]] = []
    for distribution in ("balanced", "cold", "skewed"):
        config = replace(cluster_config(scale, servers=servers,
                                        clients=clients, duration=duration),
                         initial_distribution=distribution)
        result = SimCluster(site, config).run()
        cps = result.series.cps_series()
        early = sum(cps[:3]) / max(1, len(cps[:3]))
        rows.append((distribution, early, result.steady_cps(), cps[-1]))
    return InitialDistributionAblation(rows=rows)


def ablation_selection(scale: Optional[ExperimentScale] = None, *,
                       dataset: str = "mapug",
                       servers: int = 4) -> SelectionAblation:
    """Algorithm 1 (steps 4-5) vs hottest-first vs random selection.

    The locality heuristics should achieve comparable balance with fewer
    referrer regenerations (less hyperlink-update churn).
    """
    scale = scale or current_scale()
    site = build_site(dataset)
    clients = saturating_clients(scale, servers)
    base = scaled_server_config(scale)
    rows: List[Tuple[str, float, int, int]] = []
    for policy in ("paper", "hottest", "random"):
        result = run_dcws(site, servers=servers, clients=clients, scale=scale,
                          prewarm=False, duration=scale.duration * 2,
                          server_config=replace(base, selection_policy=policy))
        rows.append((policy, result.steady_cps(), result.migrations,
                     result.reconstructions))
    return SelectionAblation(rows=rows)
