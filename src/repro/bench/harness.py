"""Scaled experiment runner.

The paper's runs used 16 server and 25 client workstations for 30 minutes
per point; pure-Python simulation cannot afford that per CI run, so every
experiment runs at an :class:`ExperimentScale`:

- ``QUICK_SCALE`` (default) — Table 1 intervals compressed 0.3×, short
  virtual durations, smaller client populations.  Shapes (linearity,
  crossovers, orderings) are preserved; absolute numbers are smaller.
- ``PAPER_SCALE`` — uncompressed intervals and paper-sized populations;
  hours of wall clock.  Select with ``REPRO_BENCH_SCALE=paper``.

All experiment drivers in :mod:`repro.bench.figures` take a scale argument
and default to :func:`current_scale`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.core.config import ServerConfig
from repro.datasets import DATASET_BUILDERS
from repro.datasets.base import SiteContent
from repro.sim.cluster import ClusterConfig, SimCluster, SimulationResult
from repro.sim.network import CostModel, PAPER_COSTS

_SCALE_ENV = "REPRO_BENCH_SCALE"


@dataclass(frozen=True)
class ExperimentScale:
    """How aggressively an experiment is shrunk relative to the paper."""

    name: str
    time_factor: float          # multiplies every Table 1 interval
    duration: float             # virtual seconds per run
    sample_interval: float
    clients_per_server: int     # saturating client population
    server_counts: Sequence[int]   # sweep used by Figures 6 and 7
    client_counts: Sequence[int]   # sweep used by Figure 6
    coldstart_duration: float   # Figure 8 virtual duration
    seed: int = 1


QUICK_SCALE = ExperimentScale(
    name="quick",
    time_factor=0.3,
    duration=40.0,
    sample_interval=5.0,
    clients_per_server=24,
    server_counts=(2, 4, 8),
    client_counts=(16, 48, 96, 144, 192),
    coldstart_duration=240.0,
)

FULL_SCALE = ExperimentScale(
    name="full",
    time_factor=0.5,
    duration=120.0,
    sample_interval=10.0,
    clients_per_server=24,
    server_counts=(1, 2, 4, 8, 16),
    client_counts=(16, 48, 96, 176, 272, 368),
    coldstart_duration=600.0,
)

PAPER_SCALE = ExperimentScale(
    name="paper",
    time_factor=1.0,
    duration=600.0,
    sample_interval=10.0,
    clients_per_server=24,
    server_counts=(1, 2, 4, 8, 16),
    client_counts=(16, 48, 96, 176, 272, 368),
    coldstart_duration=1800.0,
)

_SCALES = {s.name: s for s in (QUICK_SCALE, FULL_SCALE, PAPER_SCALE)}


def current_scale() -> ExperimentScale:
    """The scale selected by ``REPRO_BENCH_SCALE`` (default ``quick``)."""
    name = os.environ.get(_SCALE_ENV, "quick").strip().lower()
    return _SCALES.get(name, QUICK_SCALE)


def scaled_server_config(scale: ExperimentScale,
                         base: Optional[ServerConfig] = None) -> ServerConfig:
    """Table 1 parameters compressed by the scale's time factor."""
    config = base if base is not None else ServerConfig()
    if scale.time_factor == 1.0:
        return config
    return config.scaled(scale.time_factor)


def scaled_costs(scale: ExperimentScale,
                 base: CostModel = PAPER_COSTS) -> CostModel:
    """Client backoff delays compressed alongside the Table 1 intervals,
    so compressed runs keep the paper's backoff-to-interval ratios."""
    if scale.time_factor == 1.0:
        return base
    return replace(base,
                   backoff_base=base.backoff_base * scale.time_factor,
                   backoff_ceiling=base.backoff_ceiling * scale.time_factor)


def build_site(dataset: str, seed: int = 0) -> SiteContent:
    """Build one of the paper's data sets by name."""
    try:
        builder = DATASET_BUILDERS[dataset]
    except KeyError:
        raise KeyError(f"unknown dataset {dataset!r}; "
                       f"choose from {sorted(DATASET_BUILDERS)}") from None
    return builder(seed=seed)


def run_dcws(site: SiteContent, *, servers: int, clients: int,
             scale: ExperimentScale,
             prewarm: bool = True,
             duration: Optional[float] = None,
             server_config: Optional[ServerConfig] = None,
             costs: Optional[CostModel] = None,
             seed: Optional[int] = None) -> SimulationResult:
    """Run one DCWS experiment and return its result.

    When *server_config* is omitted, Table 1 defaults compressed by the
    scale's time factor are used; an explicit *server_config* is taken as
    final (callers build variants from :func:`scaled_server_config`).
    """
    config = ClusterConfig(
        servers=servers,
        clients=clients,
        duration=duration if duration is not None else scale.duration,
        sample_interval=scale.sample_interval,
        seed=seed if seed is not None else scale.seed,
        server_config=(server_config if server_config is not None
                       else scaled_server_config(scale)),
        costs=costs if costs is not None else scaled_costs(scale),
        prewarm=prewarm,
    )
    return SimCluster(site, config).run()


def cluster_config(scale: ExperimentScale, *, servers: int, clients: int,
                   prewarm: bool = True,
                   duration: Optional[float] = None,
                   server_config: Optional[ServerConfig] = None,
                   costs: Optional[CostModel] = None) -> ClusterConfig:
    """Build a :class:`ClusterConfig` for callers that drive the cluster
    themselves (failure-injection tests, baselines)."""
    return ClusterConfig(
        servers=servers,
        clients=clients,
        duration=duration if duration is not None else scale.duration,
        sample_interval=scale.sample_interval,
        seed=scale.seed,
        server_config=(server_config if server_config is not None
                       else scaled_server_config(scale)),
        costs=costs if costs is not None else scaled_costs(scale),
        prewarm=prewarm,
    )


def saturating_clients(scale: ExperimentScale, servers: int) -> int:
    """A client population that drives *servers* past their knee."""
    return scale.clients_per_server * servers


def with_duration(scale: ExperimentScale, duration: float) -> ExperimentScale:
    """A copy of *scale* with a different per-run duration."""
    return replace(scale, duration=duration)
