"""Plain-text reporting: fixed-width tables and time-series strips.

Benches print the same rows/series the paper reports; these helpers keep
that output readable in a terminal and in captured pytest logs.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell >= 1000:
            return f"{cell:,.0f}"
        if cell >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3g}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                 title: str = "") -> str:
    """Render an aligned fixed-width table."""
    rendered: List[List[str]] = [[_render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in rendered:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(label: str, times: Sequence[float],
                  values: Sequence[float], *, unit: str = "") -> str:
    """Render a (time, value) series as two aligned rows."""
    time_cells = [f"{t:.0f}" for t in times]
    value_cells = [_render(v) for v in values]
    widths = [max(len(a), len(b)) for a, b in zip(time_cells, value_cells)]
    header = f"{label}{f' ({unit})' if unit else ''}"
    time_row = "t:  " + "  ".join(c.rjust(w) for c, w in zip(time_cells, widths))
    value_row = "v:  " + "  ".join(c.rjust(w) for c, w in zip(value_cells, widths))
    return "\n".join([header, time_row, value_row])


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode sketch of a series' shape."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    low = min(values)
    high = max(values)
    span = (high - low) or 1.0
    return "".join(blocks[int((v - low) / span * (len(blocks) - 1))]
                   for v in values)
