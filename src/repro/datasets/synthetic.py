"""Generic synthetic site generator.

Not one of the paper's corpora — a parameterized random site for property
tests, examples, and ablation benches: choose the number of pages and
images, mean fan-out, image sharing skew (how concentrated image
references are, i.e. how strong the hot spot), and page sizes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.datasets.base import SiteContent, make_image, make_page


def build_synthetic_site(*, pages: int = 50, images: int = 20,
                         fanout: int = 5, images_per_page: int = 3,
                         image_skew: float = 0.0,
                         page_bytes: int = 2000, image_bytes: int = 2000,
                         entry_count: int = 1,
                         seed: int = 0,
                         name: str = "synthetic") -> SiteContent:
    """Build a random site.

    ``image_skew`` in [0, 1]: 0 picks images uniformly; 1 makes every page
    reference image 0 (a maximal hot spot).  Pages form a connected random
    graph: each page links its successor (a ring, guaranteeing every page
    is reachable from any entry) plus ``fanout - 1`` random others.
    """
    if pages < 1:
        raise ValueError("need at least one page")
    if not (0.0 <= image_skew <= 1.0):
        raise ValueError("image_skew must be within [0, 1]")
    rng = random.Random(seed)
    documents: Dict[str, bytes] = {}

    image_paths = [f"/img/i{k:03d}.gif" for k in range(images)]
    for index, path in enumerate(image_paths):
        documents[path] = make_image(image_bytes, seed=seed * 5000 + index)

    page_paths = [f"/page{k:03d}.html" for k in range(pages)]
    for index, path in enumerate(page_paths):
        nav: List[Tuple[str, str]] = [(page_paths[(index + 1) % pages], "next")]
        for __ in range(max(0, fanout - 1)):
            nav.append((page_paths[rng.randrange(pages)], "related"))
        chosen: List[str] = []
        for __ in range(min(images_per_page, images)):
            if images == 0:
                break
            if rng.random() < image_skew:
                chosen.append(image_paths[0])
            else:
                chosen.append(image_paths[rng.randrange(images)])
        documents[path] = make_page(f"Page {index}", nav_links=nav,
                                    images=chosen, body_bytes=page_bytes,
                                    rng=rng)

    entries = page_paths[:max(1, min(entry_count, pages))]
    return SiteContent(name=name, documents=documents,
                       entry_points=list(entries),
                       description="synthetic random site")
