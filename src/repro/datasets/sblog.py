"""SBLog web-statistics report (paper section 5.2, data set 2).

Published statistics: 402 documents, 57,531 links, 8,468 KB aggregate.
"The statistics report contains overview index files that describe
activity by date, IP address, and directory, as well as a large number of
files which describe in-depth details for individual files on the web
site.  The data set is entirely text, except for one JPEG image, which is
used to display bar graphs.  This JPEG image file is extremely popular."

The bar-graph JPEG is repeated once per histogram bar on every detail
page, so almost every page references it — the canonical hot spot that
caps DCWS scalability without replication (Figure 7 discussion).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.datasets.base import SiteContent, make_image, make_page

DETAIL_COUNT = 390
BARS_PER_PAGE = 135
BAR_IMAGE = "/img/bar.jpg"
OVERVIEWS = ("/by_date.html", "/by_ip.html", "/by_dir.html")
WEEKLY_COUNT = 7


def build_sblog(seed: int = 0) -> SiteContent:
    """Generate the SBLog statistics report deterministically for *seed*."""
    rng = random.Random(seed)
    documents: Dict[str, bytes] = {}

    documents[BAR_IMAGE] = make_image(6144, seed=seed * 1000 + 7, kind="jpeg")

    detail_paths = [f"/detail/file_{i:04d}.html" for i in range(DETAIL_COUNT)]
    for position, path in enumerate(detail_paths):
        nav: List[Tuple[str, str]] = [(o, o.strip("/")) for o in OVERVIEWS]
        nav.append(("/index.html", "report home"))
        if position + 1 < len(detail_paths):
            nav.append((detail_paths[position + 1], "next file"))
        if position > 0:
            nav.append((detail_paths[position - 1], "previous file"))
        bars = [BAR_IMAGE] * (BARS_PER_PAGE + rng.randint(-15, 15))
        documents[path] = make_page(
            f"Usage detail for file {position}", nav_links=nav,
            images=bars, body_bytes=14500, rng=rng)

    weekly_paths = [f"/weekly/w{i}.html" for i in range(WEEKLY_COUNT)]
    for index, path in enumerate(weekly_paths):
        sample = rng.sample(detail_paths, 12)
        nav = [(p, "detail") for p in sample] + [("/index.html", "home")]
        documents[path] = make_page(
            f"Week {index} summary", nav_links=nav,
            images=[BAR_IMAGE] * 40, body_bytes=6000, rng=rng)

    for overview in OVERVIEWS:
        nav = [(p, "detail") for p in detail_paths]
        nav.append(("/index.html", "home"))
        documents[overview] = make_page(
            f"Overview {overview}", nav_links=nav,
            images=[BAR_IMAGE] * 20, body_bytes=3000, rng=rng)

    entry_nav = [(o, o.strip("/")) for o in OVERVIEWS]
    entry_nav.extend((p, "weekly") for p in weekly_paths)
    documents["/index.html"] = make_page(
        "SBLog Web Statistics", nav_links=entry_nav,
        images=[BAR_IMAGE], body_bytes=2000, rng=rng)

    return SiteContent(
        name="sblog",
        documents=documents,
        entry_points=["/index.html"],
        description="web-statistics report; one extremely popular JPEG",
    )
