"""MAPUG mailing-list archive (paper section 5.2, data set 1).

Published statistics: 1,534 documents, 28,998 links, 5,918 KB aggregate.
"The data set is mostly text, each with 4-6 bit-mapped images, which are
buttons for links to the next, previous, next_thread, previous_thread, and
several index pages.  The bit-mapped buttons have a high request rate and
are among the first pages migrated by the server."

Generated structure:

- ``/msg/mNNNN.html`` — 1,497 archived messages in threads of six, each
  carrying six navigation button images (the shared hot spots), six
  navigation hyperlinks, and links to its thread siblings;
- ``/index/dNN.html`` — 30 by-date index pages of ~50 messages each;
- ``/threads.html`` — a thread index;
- ``/buttons/*.gif`` — the six hot button images;
- ``/index.html`` — the well-known entry point.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.datasets.base import SiteContent, make_image, make_page

MESSAGE_COUNT = 1497
THREAD_SIZE = 6
MESSAGES_PER_INDEX = 50

BUTTONS = ("next", "prev", "nextthread", "prevthread", "index", "home")


def build_mapug(seed: int = 0) -> SiteContent:
    """Generate the MAPUG archive deterministically for *seed*."""
    rng = random.Random(seed)
    documents: Dict[str, bytes] = {}

    button_paths = [f"/buttons/{name}.gif" for name in BUTTONS]
    for index, path in enumerate(button_paths):
        documents[path] = make_image(rng.randint(900, 1200),
                                     seed=seed * 1000 + index, kind="gif")

    message_paths = [f"/msg/m{i:04d}.html" for i in range(MESSAGE_COUNT)]
    index_paths = [f"/index/d{i:02d}.html"
                   for i in range((MESSAGE_COUNT + MESSAGES_PER_INDEX - 1)
                                  // MESSAGES_PER_INDEX)]

    for position, path in enumerate(message_paths):
        documents[path] = _message_page(rng, position, message_paths,
                                        index_paths, button_paths)

    for page_number, path in enumerate(index_paths):
        start = page_number * MESSAGES_PER_INDEX
        listed = message_paths[start:start + MESSAGES_PER_INDEX]
        nav: List[Tuple[str, str]] = [(m, f"message {m}") for m in listed]
        nav.append(("/index.html", "archive home"))
        if page_number + 1 < len(index_paths):
            nav.append((index_paths[page_number + 1], "next page"))
        documents[path] = make_page(f"MAPUG by date, page {page_number}",
                                    nav_links=nav, body_bytes=600, rng=rng)

    thread_nav = [(message_paths[t], f"thread {t // THREAD_SIZE}")
                  for t in range(0, MESSAGE_COUNT, THREAD_SIZE)]
    documents["/threads.html"] = make_page(
        "MAPUG by thread", nav_links=thread_nav, body_bytes=800, rng=rng)

    entry_nav = [(p, f"dates page {i}") for i, p in enumerate(index_paths)]
    entry_nav.append(("/threads.html", "by thread"))
    documents["/index.html"] = make_page(
        "MAPUG Mailing List Archive", nav_links=entry_nav,
        body_bytes=1500, rng=rng)

    return SiteContent(
        name="mapug",
        documents=documents,
        entry_points=["/index.html"],
        description="mailing-list archive; hot shared button images",
    )


def _message_page(rng: random.Random, position: int,
                  message_paths: List[str], index_paths: List[str],
                  button_paths: List[str]) -> bytes:
    thread_start = (position // THREAD_SIZE) * THREAD_SIZE
    thread = message_paths[thread_start:thread_start + THREAD_SIZE]
    nav: List[Tuple[str, str]] = []
    if position + 1 < len(message_paths):
        nav.append((message_paths[position + 1], "next"))
    if position > 0:
        nav.append((message_paths[position - 1], "previous"))
    next_thread = thread_start + THREAD_SIZE
    if next_thread < len(message_paths):
        nav.append((message_paths[next_thread], "next thread"))
    prev_thread = thread_start - THREAD_SIZE
    if prev_thread >= 0:
        nav.append((message_paths[prev_thread], "previous thread"))
    nav.append((index_paths[position // MESSAGES_PER_INDEX], "date index"))
    nav.append(("/threads.html", "thread index"))
    for sibling in thread:
        if sibling != message_paths[position]:
            nav.append((sibling, "in this thread"))
    return make_page(f"MAPUG message {position}", nav_links=nav,
                     images=button_paths, body_bytes=2700, rng=rng)
