"""Shared dataset machinery: site content, HTML builders, statistics.

A :class:`SiteContent` is everything a home server needs: a mapping of
document paths to bytes plus the site's well-known entry points.  The
builders here produce period-plausible HTML 3.2 so the tokenizer, parser
and rewriter are exercised on realistic markup.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.html.links import extract_links
from repro.html.parser import parse_html

_WORDS = (
    "archive digital library server document request balance migrate "
    "network cluster thread socket image benchmark client latency graph "
    "hyperlink response protocol system analysis storage workstation data"
).split()


@dataclass
class DatasetStats:
    """Summary statistics matching the paper's Table-style description."""

    documents: int
    html_documents: int
    images: int
    links: int            # reference occurrences across all HTML documents
    total_bytes: int

    @property
    def total_kbytes(self) -> float:
        return self.total_bytes / 1024.0

    @property
    def mean_document_bytes(self) -> float:
        if self.documents == 0:
            return 0.0
        return self.total_bytes / self.documents


@dataclass
class SiteContent:
    """One web site's complete content, ready to seed a home server."""

    name: str
    documents: Dict[str, bytes]
    entry_points: List[str]
    description: str = ""
    _stats: DatasetStats = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        for entry in self.entry_points:
            if entry not in self.documents:
                raise ValueError(f"entry point not in documents: {entry!r}")

    @property
    def stats(self) -> DatasetStats:
        if self._stats is None:
            self._stats = corpus_stats(self.documents)
        return self._stats


def corpus_stats(documents: Dict[str, bytes]) -> DatasetStats:
    """Parse every HTML document and count reference occurrences."""
    html_count = 0
    image_count = 0
    link_count = 0
    for name, data in documents.items():
        if name.endswith((".html", ".htm")):
            html_count += 1
            link_count += len(extract_links(parse_html(data.decode("latin-1"))))
        elif name.endswith((".gif", ".jpg", ".jpeg", ".png")):
            image_count += 1
    return DatasetStats(
        documents=len(documents),
        html_documents=html_count,
        images=image_count,
        links=link_count,
        total_bytes=sum(len(d) for d in documents.values()),
    )


# ----------------------------------------------------------------------
# HTML and image fabrication
# ----------------------------------------------------------------------

def filler_text(rng: random.Random, nbytes: int) -> str:
    """Deterministic prose of roughly *nbytes* characters."""
    parts: List[str] = []
    length = 0
    while length < nbytes:
        word = _WORDS[rng.randrange(len(_WORDS))]
        parts.append(word)
        length += len(word) + 1
    return " ".join(parts)


def make_page(title: str, *,
              nav_links: Sequence[Tuple[str, str]] = (),
              images: Sequence[str] = (),
              body_bytes: int = 2000,
              rng: random.Random) -> bytes:
    """Build an HTML 3.2-style page.

    ``nav_links`` are ``(href, anchor text)`` pairs; ``images`` are ``src``
    values (repetition allowed — a usage graph repeats its bar image).
    ``body_bytes`` sizes the filler prose.
    """
    lines: List[str] = [
        "<html>",
        f"<head><title>{title}</title></head>",
        "<body>",
        f"<h1>{title}</h1>",
    ]
    for src in images:
        lines.append(f'<img src="{src}" alt="">')
    lines.append(f"<p>{filler_text(rng, body_bytes)}</p>")
    if nav_links:
        lines.append("<ul>")
        for href, text in nav_links:
            lines.append(f'<li><a href="{href}">{text}</a>')
        lines.append("</ul>")
    lines.append("</body></html>")
    return "\n".join(lines).encode("latin-1")


def make_frame_template(title: str, frame_srcs: Sequence[str]) -> bytes:
    """A small frameset entry page (section 3.1: frame templates are
    well-known and tiny; internal frame pages migrate)."""
    rows = ",".join(["*"] * len(frame_srcs))
    lines = [f"<html><head><title>{title}</title></head>",
             f'<frameset rows="{rows}">']
    for src in frame_srcs:
        lines.append(f'<frame src="{src}">')
    lines.append("</frameset></html>")
    return "\n".join(lines).encode("latin-1")


_GIF_HEADER = b"GIF89a"
_JPEG_HEADER = b"\xff\xd8\xff\xe0\x00\x10JFIF\x00"


def make_image(nbytes: int, seed: int, kind: str = "gif") -> bytes:
    """Deterministic pseudo-image bytes with a plausible header."""
    header = _GIF_HEADER if kind == "gif" else _JPEG_HEADER
    body_len = max(0, nbytes - len(header))
    return header + random.Random(seed).randbytes(body_len)


def spread_sizes(rng: random.Random, count: int, low: int, high: int) -> List[int]:
    """*count* sizes uniform in [low, high], deterministic."""
    return [rng.randint(low, high) for __ in range(count)]


def bimodal_sizes(rng: random.Random, count: int, mode_a: int, mode_b: int,
                  jitter: float = 0.2) -> List[int]:
    """Half around *mode_a*, half around *mode_b* (LOD's thumbnail mix)."""
    sizes: List[int] = []
    for index in range(count):
        mode = mode_a if index % 2 == 0 else mode_b
        delta = int(mode * jitter)
        sizes.append(rng.randint(mode - delta, mode + delta))
    return sizes


def chunk(items: Sequence[str], size: int) -> Iterable[Sequence[str]]:
    """Fixed-size chunks of *items* (last one may be short)."""
    for start in range(0, len(items), size):
        yield items[start:start + size]
