"""Access-log synthesis and parsing (Common Log Format).

The paper notes (section 6) that its evaluation did not use actual access
logs.  This module closes that gap in both directions:

- :func:`generate_access_log` synthesizes a CLF trace by random walks
  over a site's real hyperlink graph (Poisson sequence arrivals, the same
  navigation behaviour as Algorithm 2), so the trace is *consistent with
  the site's topology*;
- :func:`parse_clf` ingests real-world CLF lines, so genuine 1990s server
  logs can drive the simulator's replay client
  (:class:`repro.sim.replay.ReplayClient`).

Replayed requests use the *original* (home-server) URLs regardless of any
migrations — exactly the bookmark/search-engine traffic of paper section
4.4 whose cost is the 301 redirect.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.datasets.base import SiteContent
from repro.html.links import extract_links
from repro.html.parser import parse_html
from repro.http.urls import URL, join_url, strip_fragment


@dataclass(frozen=True)
class LogRecord:
    """One access-log line's useful fields."""

    time: float          # seconds from trace start
    client: str          # client identifier (IP-ish)
    path: str            # absolute request path
    status: int = 200
    size: int = 0

    def to_clf(self, host_base: str = "example.org") -> str:
        """Render as a Common Log Format line (fixed fake date)."""
        return (f"{self.client} - - [01/Aug/1998:12:{int(self.time) // 60 % 60:02d}:"
                f"{int(self.time) % 60:02d} -0700] "
                f'"GET {self.path} HTTP/1.0" {self.status} {self.size}')


_CLF_PATTERN = re.compile(
    r'^(?P<client>\S+) \S+ \S+ \[(?P<date>[^\]]+)\] '
    r'"(?P<method>\S+) (?P<path>\S+)[^"]*" (?P<status>\d{3}) (?P<size>\S+)')


def parse_clf(lines: Sequence[str]) -> List[LogRecord]:
    """Parse CLF lines into records; times are synthesized in order
    (one request per 50 ms) because CLF timestamps are second-granular."""
    records: List[LogRecord] = []
    for index, line in enumerate(lines):
        match = _CLF_PATTERN.match(line.strip())
        if match is None:
            continue
        size_text = match.group("size")
        records.append(LogRecord(
            time=index * 0.05,
            client=match.group("client"),
            path=match.group("path"),
            status=int(match.group("status")),
            size=0 if size_text == "-" else int(size_text)))
    return records


def site_link_graph(site: SiteContent) -> Dict[str, List[str]]:
    """name -> outgoing same-site document names, via real parsing."""
    graph: Dict[str, List[str]] = {}
    base_host = "loggen"
    for name, data in site.documents.items():
        if not name.endswith((".html", ".htm")):
            graph[name] = []
            continue
        document = parse_html(data.decode("latin-1", "replace"))
        targets: List[str] = []
        base = URL(base_host, 80, name)
        for link in extract_links(document):
            raw = strip_fragment(link.value).strip()
            if not raw:
                continue
            try:
                resolved = join_url(base, raw)
            except Exception:
                continue
            if resolved.host == base_host and resolved.path in site.documents:
                targets.append(resolved.path)
        graph[name] = targets
    return graph


def generate_access_log(site: SiteContent, *,
                        duration: float = 300.0,
                        sequences_per_second: float = 2.0,
                        seed: int = 0,
                        max_steps: int = 25) -> List[LogRecord]:
    """Synthesize a topology-consistent access trace.

    Browse sequences arrive as a Poisson process; each walks the site's
    real hyperlink graph from a random entry point, logging the document
    and (once per sequence, cache-style) its embedded images.  Returns
    records sorted by time.
    """
    rng = random.Random(seed)
    graph = site_link_graph(site)
    image_refs = _image_references(site)
    records: List[LogRecord] = []
    now = 0.0
    client_counter = 0
    while True:
        now += rng.expovariate(sequences_per_second)
        if now >= duration:
            break
        client_counter += 1
        client = f"10.0.{client_counter // 256 % 256}.{client_counter % 256}"
        current = site.entry_points[rng.randrange(len(site.entry_points))]
        seen: set = set()
        steps = rng.randint(1, max_steps)
        step_time = now
        for __ in range(steps):
            if current not in seen:
                seen.add(current)
                records.append(LogRecord(time=step_time, client=client,
                                         path=current,
                                         size=len(site.documents[current])))
                for image in image_refs.get(current, ()):
                    if image not in seen:
                        seen.add(image)
                        records.append(LogRecord(
                            time=step_time + 0.05, client=client, path=image,
                            size=len(site.documents[image])))
            targets = graph.get(current, [])
            if not targets:
                break
            current = targets[rng.randrange(len(targets))]
            step_time += rng.uniform(0.5, 3.0)
    records.sort(key=lambda r: r.time)
    return records


def _image_references(site: SiteContent) -> Dict[str, List[str]]:
    """name -> distinct embedded images present in the site."""
    images: Dict[str, List[str]] = {}
    base_host = "loggen"
    for name, data in site.documents.items():
        if not name.endswith((".html", ".htm")):
            continue
        document = parse_html(data.decode("latin-1", "replace"))
        base = URL(base_host, 80, name)
        found: List[str] = []
        for link in extract_links(document):
            if not link.embedded:
                continue
            try:
                resolved = join_url(base, strip_fragment(link.value).strip())
            except Exception:
                continue
            if resolved.host == base_host and resolved.path in site.documents \
                    and resolved.path not in found:
                found.append(resolved.path)
        images[name] = found
    return images


def trace_statistics(records: Sequence[LogRecord]) -> Tuple[int, int, float]:
    """(requests, distinct clients, duration) of a trace."""
    if not records:
        return 0, 0, 0.0
    clients = {record.client for record in records}
    return len(records), len(clients), records[-1].time - records[0].time
