"""LOD role-playing adventure guide (paper section 5.2, data set 3).

Published statistics: 349 documents (240 of them images), 1,433 links,
750 KB aggregate.  "About a half dozen pages consist of large tables of
characters or data items with about 50 thumbnail images in each page.
Images follow a bimodal distribution with approximately half of the images
averaging 1.5 Kbytes and the remainder averaging 3.5 Kbytes."

This data set develops no hot spot — thumbnails are spread across many
table pages — which is why the paper uses it to demonstrate close-to-
linear scalability (Figure 6).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.datasets.base import SiteContent, bimodal_sizes, make_image, make_page

IMAGE_COUNT = 240
TABLE_COUNT = 6
THUMBS_PER_TABLE = 50
CATEGORY_COUNT = 12
CHARACTER_COUNT = 90


def build_lod(seed: int = 0) -> SiteContent:
    """Generate the LOD guide deterministically for *seed*."""
    rng = random.Random(seed)
    documents: Dict[str, bytes] = {}

    image_paths = [f"/img/item{i:03d}.gif" for i in range(IMAGE_COUNT)]
    sizes = bimodal_sizes(rng, IMAGE_COUNT, mode_a=1536, mode_b=3584)
    for index, (path, size) in enumerate(zip(image_paths, sizes)):
        documents[path] = make_image(size, seed=seed * 2000 + index, kind="gif")

    table_paths = [f"/tables/t{i}.html" for i in range(TABLE_COUNT)]
    for index, path in enumerate(table_paths):
        thumbs = [image_paths[(index * THUMBS_PER_TABLE + k) % IMAGE_COUNT]
                  for k in range(THUMBS_PER_TABLE)]
        nav: List[Tuple[str, str]] = [("/index.html", "guide home")]
        nav.append((table_paths[(index + 1) % TABLE_COUNT], "next table"))
        documents[path] = make_page(f"Item table {index}", nav_links=nav,
                                    images=thumbs, body_bytes=700, rng=rng)

    character_paths = [f"/chars/c{i:03d}.html" for i in range(CHARACTER_COUNT)]
    category_paths = [f"/cats/g{i:02d}.html" for i in range(CATEGORY_COUNT)]

    for index, path in enumerate(character_paths):
        portraits = [image_paths[(index * 3 + k) % IMAGE_COUNT]
                     for k in range(3)]
        nav = [(category_paths[index % CATEGORY_COUNT], "category"),
               ("/index.html", "guide home")]
        for offset in (1, 3, 7, 11, 17):
            nav.append((character_paths[(index + offset) % CHARACTER_COUNT],
                        "related character"))
        nav.append((table_paths[index % TABLE_COUNT], "item table"))
        documents[path] = make_page(f"Character {index}", nav_links=nav,
                                    images=portraits, body_bytes=500, rng=rng)

    per_category = CHARACTER_COUNT // CATEGORY_COUNT
    for index, path in enumerate(category_paths):
        members = character_paths[index * per_category:(index + 1) * per_category]
        nav = [(m, "character") for m in members]
        nav.append(("/index.html", "guide home"))
        documents[path] = make_page(f"Category {index}", nav_links=nav,
                                    body_bytes=500, rng=rng)

    entry_nav = [(p, "item table") for p in table_paths]
    entry_nav.extend((p, "category") for p in category_paths)
    documents["/index.html"] = make_page(
        "LOD Role-Playing Adventure Guide", nav_links=entry_nav,
        body_bytes=900, rng=rng)

    return SiteContent(
        name="lod",
        documents=documents,
        entry_points=["/index.html"],
        description="graphical game guide; bimodal thumbnails, no hot spot",
    )
