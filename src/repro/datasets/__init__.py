"""Dataset generators reproducing the paper's four corpora (section 5.2).

The authors' data sets are no longer retrievable (the 1998 URLs are dead),
so each module generates a synthetic corpus with the *published statistics*
— document counts, link counts, aggregate sizes, image-size distributions,
and crucially the link *topology* that drives the paper's results (the hot
shared button images of MAPUG, SBLog's single wildly popular JPEG, LOD's
thumbnail tables that develop no hot spot, Sequoia's huge image files).

All generators are deterministic for a given seed and emit real HTML that
the DCWS parser/rewriter processes verbatim.

==========  ==========  ========  ===========  =========================
data set    documents   links     total bytes  character
==========  ==========  ========  ===========  =========================
MAPUG       1,534       28,998    5,918 KB     text + hot nav buttons
SBLog       402         57,531    8,468 KB     text + one hot JPEG
LOD         349         1,433     750 KB       240 images, no hot spot
Sequoia     131         130       ~170 MB      130 images of 1–2.8 MB
==========  ==========  ========  ===========  =========================
"""

from repro.datasets.base import DatasetStats, SiteContent, corpus_stats
from repro.datasets.lod import build_lod
from repro.datasets.mapug import build_mapug
from repro.datasets.sblog import build_sblog
from repro.datasets.sequoia import build_sequoia
from repro.datasets.synthetic import build_synthetic_site

DATASET_BUILDERS = {
    "mapug": build_mapug,
    "sblog": build_sblog,
    "lod": build_lod,
    "sequoia": build_sequoia,
}

__all__ = [
    "DATASET_BUILDERS",
    "DatasetStats",
    "SiteContent",
    "build_lod",
    "build_mapug",
    "build_sblog",
    "build_sequoia",
    "build_synthetic_site",
    "corpus_stats",
]
