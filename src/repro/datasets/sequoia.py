"""Sequoia 2000 storage-benchmark rasters (paper section 5.2, data set 4).

"The raster data for Sequoia 2000 storage benchmark contains 130 AVHRR
image files from NOAA satellite.  The images are compressed and in the
1-2.8 Mbytes range.  We created an HTML front-end page to the Sequoia
raster data set that includes a hyperlink to each image file."

The original rasters are not redistributable here, so deterministic
pseudo-random bytes of the published sizes stand in; only sizes matter to
the evaluation (BPS dominates, CPS is low, scaling is near-linear because
the 130 large files spread evenly).

``scale`` shrinks every image by that factor to keep memory and wall-clock
reasonable in continuous-integration runs; EXPERIMENTS.md records results
at the default scale.  ``scale=1.0`` reproduces the full ~250 MB corpus.
The default 1/4 keeps rasters large enough (~250-700 KB) that serving
them — not the front page — remains each sequence's dominant cost, which
is the regime the paper's Sequoia results live in.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.datasets.base import SiteContent, make_image, make_page

IMAGE_COUNT = 130
MIN_BYTES = 1_000_000
MAX_BYTES = 2_800_000
DEFAULT_SCALE = 1.0 / 4.0


def build_sequoia(seed: int = 0, scale: float = DEFAULT_SCALE) -> SiteContent:
    """Generate the Sequoia raster site; image sizes are ``paper × scale``."""
    if not (0.0 < scale <= 1.0):
        raise ValueError(f"scale must be in (0, 1]: {scale}")
    rng = random.Random(seed)
    documents: Dict[str, bytes] = {}

    image_paths = [f"/raster/avhrr_{i:03d}.jpg" for i in range(IMAGE_COUNT)]
    for index, path in enumerate(image_paths):
        full_size = rng.randint(MIN_BYTES, MAX_BYTES)
        documents[path] = make_image(max(1024, int(full_size * scale)),
                                     seed=seed * 3000 + index, kind="jpeg")

    nav: List[Tuple[str, str]] = [(p, f"AVHRR raster {i}")
                                  for i, p in enumerate(image_paths)]
    documents["/index.html"] = make_page(
        "Sequoia 2000 raster archive", nav_links=nav,
        body_bytes=1200, rng=rng)

    return SiteContent(
        name="sequoia",
        documents=documents,
        entry_points=["/index.html"],
        description=f"130 large satellite rasters (scale={scale:g})",
    )
