#!/usr/bin/env python
"""A geographically distributed federation archiving satellite imagery.

The paper's closing example (section 6): "the DCWS system can be used to
integrate a group of independent servers to build a federated web server
in order to archive large-scale images and scientific data being produced
and stored in geographically dispersed locations."

This example serves the Sequoia 2000 raster archive from a 4-server
federation with wide-area link latency (25 ms one way instead of the
LAN's 0.5 ms) and shows that BPS-based balancing (section 5.3 recommends
BPS for large-file workloads) spreads the multi-megabyte rasters across
continents while the front page stays home.

Run:  python examples/geo_federation.py
"""

from dataclasses import replace

from repro.core.config import ServerConfig
from repro.core.metrics import LoadMetricKind
from repro.datasets import build_sequoia
from repro.sim.cluster import ClusterConfig, SimCluster
from repro.sim.network import PAPER_COSTS


def main() -> None:
    site = build_sequoia(seed=3)
    print(f"archive: {site.stats.images} rasters, "
          f"{site.stats.total_bytes / 1e6:.0f} MB total "
          f"(scaled from the paper's ~250 MB)")

    wan_costs = replace(PAPER_COSTS, link_latency=0.025)  # intercontinental
    # Deep time compression so the (rate-limited) spread of all 130
    # rasters fits the demo: one migration per T_st, one per co-op per
    # T_coop, exactly as in the paper, just on a faster clock.
    config = ClusterConfig(
        servers=4, clients=64, duration=150.0, sample_interval=10.0,
        seed=5,
        server_config=replace(ServerConfig().scaled(0.05),
                              load_metric=LoadMetricKind.BPS,
                              migration_hit_threshold=1.0),
        costs=wan_costs)
    cluster = SimCluster(site, config)
    result = cluster.run()

    print(f"\nmigrations: {result.migrations} "
          f"(balancing metric: bytes per second)")
    print("per-server share of the archive:")
    home = cluster.servers["server0:80"].engine
    for name, info in result.per_server.items():
        print(f"  {name}: hosting {info['hosted']} rasters, "
              f"nic={info['nic_utilization']:.0%}, "
              f"served={info['served']}")
    assert home.graph.get("/index.html").location == home.location
    print("front page stays on its home server: yes")

    steady = result.series.steady_state()
    print(f"\nsteady aggregate throughput: {steady.mean_bps() / 1e6:.1f} MB/s "
          f"({steady.mean_cps():.0f} connections/s)")
    print("Large rasters dominate bytes: CPS is low and BPS is the "
          "honest load metric, exactly as section 5.3 argues.")


if __name__ == "__main__":
    main()
