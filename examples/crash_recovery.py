#!/usr/bin/env python
"""Watch DCWS survive a co-op crash (simulated).

Paper section 4.5, case 3: the pinger notices a co-op has stopped
answering; after several failed probes the peer is declared dead and
every document migrated to it is recalled to the home server — old URLs
keep working because the home still holds the permanent copies.

This demo crashes one of three servers mid-run, prints the home server's
event log around the incident, and shows the cluster still serving.

Run:  python examples/crash_recovery.py
"""

from repro.core.config import ServerConfig
from repro.datasets.synthetic import build_synthetic_site
from repro.sim.cluster import ClusterConfig, SimCluster

CRASH_AT = 25.0
RECOVER_AT = 70.0


def main() -> None:
    site = build_synthetic_site(pages=40, images=12, fanout=4, seed=8)
    config = ClusterConfig(
        servers=3, clients=32, duration=100.0, sample_interval=5.0,
        seed=13, prewarm=True,
        server_config=ServerConfig().scaled(0.15))
    cluster = SimCluster(site, config)

    def schedule_incident(c):
        c.loop.schedule(CRASH_AT, lambda: c.crash_server(1))
        c.loop.schedule(RECOVER_AT, lambda: c.recover_server(1))

    print(f"3 servers, 32 clients; server1 crashes at t={CRASH_AT:.0f}s "
          f"and recovers at t={RECOVER_AT:.0f}s\n")
    result = cluster.run(extra_setup=schedule_incident)

    home = cluster.servers["server0:80"].engine
    print("home server's event log during the incident:")
    for event in home.log.events(since=CRASH_AT - 1):
        if event.kind in ("ping", "peer_dead", "revoke", "migrate",
                          "remigrate"):
            print("  " + event.render())
            if event.kind == "migrate" and event.time > RECOVER_AT + 10:
                break

    print("\naggregate CPS across the incident:")
    for sample in result.series.samples:
        marker = ""
        if abs(sample.time - CRASH_AT) < 2.5:
            marker = "  <- crash"
        elif abs(sample.time - RECOVER_AT) < 2.5:
            marker = "  <- recovery"
        print(f"  t={sample.time:5.0f}s  {sample.cps:7.0f} CPS{marker}")

    print(f"\ndocuments revoked from the dead co-op: {result.revocations}")
    print(f"clients saw {result.client_stats.errors} timed-out requests "
          f"and kept browsing ({result.client_stats.sequences} sequences).")
    alive = [r.location for r in home.graph.migrated_documents()]
    print(f"documents re-migrated onto the survivors/recovered peer: "
          f"{len(alive)}")


if __name__ == "__main__":
    main()
