#!/usr/bin/env python
"""Two departmental web servers helping each other (simulated).

The paper's second deployment scenario (section 1): "two or more
departmental web server machines which work independently in the usual
operational mode can become a distributed cooperative web server; since
the relative load may be different ... any of the lightly loaded servers
can be a co-op server for any of the heavily loaded servers."

Here the CS department's site is under deadline-week load while the Math
site idles: DCWS migrates hot CS documents onto the Math machine, which
keeps serving its own site as home the whole time.

Run:  python examples/departmental_coop.py
"""

from repro.core.config import ServerConfig
from repro.datasets.synthetic import build_synthetic_site
from repro.sim.cluster import ClusterConfig, SimCluster


def main() -> None:
    cs_site = build_synthetic_site(pages=60, images=20, fanout=5,
                                   seed=1, name="cs-department")
    math_site = build_synthetic_site(pages=30, images=10, fanout=4,
                                     seed=2, name="math-department")

    config = ClusterConfig(
        servers=2, clients=40, duration=120.0, sample_interval=10.0,
        seed=11, server_config=ServerConfig().scaled(0.2))
    cluster = SimCluster([cs_site, math_site], config)

    # Skew the client population: deadline week on the CS site.  9 in 10
    # clients browse CS pages; entry URLs are per-site, so restrict each
    # client's entry list accordingly.
    cs_entries = [u for u in cluster.entry_urls if u.host == "server0"]
    math_entries = [u for u in cluster.entry_urls if u.host == "server1"]
    for index, client in enumerate(cluster.clients):
        client.entry_points = math_entries if index % 10 == 0 else cs_entries

    result = cluster.run()

    cs_engine = cluster.servers["server0:80"].engine
    math_engine = cluster.servers["server1:80"].engine
    migrated = [r.name for r in cs_engine.graph.migrated_documents()]
    print(f"CS documents migrated onto the Math server: {len(migrated)}")
    print(f"  e.g. {migrated[:5]}")
    assert all(r.location == math_engine.location
               for r in cs_engine.graph.migrated_documents())
    print(f"Math documents migrated away: "
          f"{len(math_engine.graph.migrated_documents())} "
          f"(the lightly loaded server keeps its own site)")

    print("\nload balance (requests served):")
    for name, info in result.per_server.items():
        print(f"  {name}: served={info['served']} "
              f"cpu={info['cpu_utilization']:.0%} "
              f"hosting {info['hosted']} foreign documents")

    final = result.series.samples[-1]
    print(f"\nfinal imbalance (max/mean per-server CPS): "
          f"{final.imbalance:.2f}  (1.00 = perfect)")
    print(f"aggregate CPS at the end: {final.cps:.0f}")


if __name__ == "__main__":
    main()
