#!/usr/bin/env python
"""Quickstart: two real DCWS servers on localhost.

Starts a *home* server holding a small site and an empty *co-op* server,
both as real multithreaded socket servers (the paper's prototype,
section 5.1).  A burst of client traffic overloads the home server; the
migration policy picks a hot document, rewrites the hyperlinks pointing
at it, and the co-op starts serving it after a lazy pull — all over
plain HTTP, observable with any browser.

Run:  python examples/quickstart.py
"""

import socket
import time

from repro.client.realclient import fetch_url
from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.urls import URL
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.server.threaded import ThreadedDCWSServer

SITE = {
    "/index.html": (b'<html><head><title>Quickstart</title></head><body>'
                    b'<h1>Welcome</h1><a href="hot.html">the hot page</a> '
                    b'<a href="about.html">about</a>'
                    b'<img src="logo.gif"></body></html>'),
    "/hot.html": b'<html><body>Everyone wants this page. '
                 b'<a href="/index.html">home</a></body></html>',
    "/about.html": b"<html><body>A quiet page.</body></html>",
    "/logo.gif": b"GIF89a" + b"\x00" * 400,
}


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def main() -> None:
    home_loc = Location("127.0.0.1", free_port())
    coop_loc = Location("127.0.0.1", free_port())
    # Compressed intervals so the demo balances within seconds.
    config = ServerConfig(stats_interval=0.5, pinger_interval=1.0,
                          validation_interval=5.0,
                          migration_hit_threshold=1.0)
    home = ThreadedDCWSServer(DCWSEngine(
        home_loc, config, MemoryStore(SITE),
        entry_points=["/index.html"], peers=[coop_loc]), tick_period=0.1)
    coop = ThreadedDCWSServer(DCWSEngine(
        coop_loc, config, MemoryStore(), peers=[home_loc]), tick_period=0.1)

    with home, coop:
        print(f"home server:  http://{home_loc}")
        print(f"co-op server: http://{coop_loc}")
        print("\n-- hammering /hot.html to overload the home server --")
        deadline = time.time() + 10.0
        while time.time() < deadline:
            fetch_url(URL("127.0.0.1", home.port, "/hot.html"))
            fetch_url(URL("127.0.0.1", home.port, "/logo.gif"))
            with home._lock:
                if home.engine.graph.migrated_documents():
                    break

        with home._lock:
            migrated = [(r.name, str(r.location))
                        for r in home.engine.graph.migrated_documents()]
        print(f"migrated documents: {migrated or 'none (try again)'}")

        print("\n-- the home server now redirects old URLs (HTTP 301) --")
        moved_path = migrated[0][0] if migrated else "/hot.html"
        outcome = fetch_url(URL("127.0.0.1", home.port, moved_path))
        print(f"GET {moved_path} -> status {outcome.status}, "
              f"followed a redirect: {outcome.redirected}")

        print("\n-- and the entry page's hyperlinks were rewritten --")
        index = fetch_url(URL("127.0.0.1", home.port, "/index.html"))
        for link in index.links:
            print(f"  <a href={link!r}>")

        with coop._lock:
            hosted = [key for key, h in coop.engine.hosted.items() if h.fetched]
        print(f"\nco-op now hosts: {hosted}")
        print("\nDone: the co-op serves the hot page; the home serves the "
              "entry point and redirects stale URLs.")


if __name__ == "__main__":
    main()
