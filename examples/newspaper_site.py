#!/usr/bin/env python
"""A newspaper-style site surviving a traffic spike (simulated).

The paper's motivating scenario (section 1): a site like
www.washingtonpost.com publishes one well-known entry point; articles and
images behind it can migrate.  This example builds a front-page +
articles site, hits it with a growing crowd of Algorithm 2 readers on a
4-server DCWS deployment, and prints how the cluster absorbs the spike
while the entry point stays on its home server.

Run:  python examples/newspaper_site.py
"""

from repro.bench.reporting import format_table, sparkline
from repro.core.config import ServerConfig
from repro.datasets.base import SiteContent, make_image, make_page
from repro.sim.cluster import ClusterConfig, SimCluster

import random


def build_newspaper(seed: int = 0) -> SiteContent:
    """Front page -> section pages -> articles with photos."""
    rng = random.Random(seed)
    documents = {}
    photo_paths = [f"/photos/p{k:03d}.jpg" for k in range(60)]
    for index, path in enumerate(photo_paths):
        documents[path] = make_image(rng.randint(4000, 12000),
                                     seed=index, kind="jpeg")
    article_paths = [f"/articles/a{k:03d}.html" for k in range(120)]
    sections = [f"/sections/s{k}.html" for k in range(6)]
    for index, path in enumerate(article_paths):
        nav = [("/index.html", "front page"),
               (sections[index % len(sections)], "section"),
               (article_paths[(index + 1) % len(article_paths)], "next story")]
        photos = [photo_paths[(index * 2 + k) % len(photo_paths)]
                  for k in range(2)]
        documents[path] = make_page(f"Story {index}", nav_links=nav,
                                    images=photos, body_bytes=3000, rng=rng)
    for index, path in enumerate(sections):
        stories = article_paths[index::len(sections)]
        nav = [(s, "story") for s in stories] + [("/index.html", "front")]
        documents[path] = make_page(f"Section {index}", nav_links=nav,
                                    body_bytes=1200, rng=rng)
    headlines = [(a, "headline") for a in article_paths[:10]]
    documents["/index.html"] = make_page(
        "The Daily Packet", nav_links=headlines + [(s, "section")
                                                   for s in sections],
        body_bytes=2000, rng=rng)
    return SiteContent(name="newspaper", documents=documents,
                       entry_points=["/index.html"])


def main() -> None:
    site = build_newspaper()
    print(f"site: {site.stats.documents} documents, "
          f"{site.stats.total_kbytes:.0f} KB, "
          f"entry point {site.entry_points[0]}")

    config = ClusterConfig(
        servers=4, clients=96, duration=120.0, sample_interval=10.0,
        seed=7, server_config=ServerConfig().scaled(0.2))
    cluster = SimCluster(site, config)
    result = cluster.run()

    cps = result.series.cps_series()
    print("\naggregate CPS over time (cold start, migrations compounding):")
    print("  " + sparkline(cps))
    rows = list(zip(result.series.times(), cps))
    print(format_table(("t (s)", "CPS"), rows))
    print(f"\nmigrations: {result.migrations}, "
          f"redirects served: {result.redirects_served}, "
          f"requests dropped: {result.drops}")

    home = cluster.servers["server0:80"].engine
    assert home.graph.get("/index.html").location == home.location
    print("entry point still on its home server: yes")
    print("\nper-server load (requests served):")
    for name, info in result.per_server.items():
        print(f"  {name}: served={info['served']} "
              f"hosted_migrated_docs={info['hosted']} "
              f"cpu={info['cpu_utilization']:.0%}")


if __name__ == "__main__":
    main()
