#!/usr/bin/env python
"""Watch the Figure 8 warm-up happen: cold start to balanced cluster.

One home server holds the whole LOD data set; seven co-ops start empty.
Every ten (virtual) seconds the script samples aggregate CPS/BPS, and at
the end prints the growth profile — the "seemingly exponential" curve of
paper Figure 8, produced by the compounding effect of each migration.

Run:  python examples/coldstart_timeseries.py
"""

from repro.bench.reporting import format_table, sparkline
from repro.core.config import ServerConfig
from repro.datasets import build_lod
from repro.server.stats import growth_profile
from repro.sim.cluster import ClusterConfig, SimCluster


def main() -> None:
    site = build_lod()
    # Time factor 0.1 fits the paper's ~180 migration rounds (30 min at
    # T_st = 10 s) into a 240 s virtual run, preserving the curve's shape.
    config = ClusterConfig(
        servers=8, clients=160, duration=240.0, sample_interval=10.0,
        seed=2, server_config=ServerConfig().scaled(0.1))
    print("cold start: 1 home server with all files, 7 empty co-ops, "
          "160 clients browsing\n")
    cluster = SimCluster(site, config)
    result = cluster.run()

    cps = result.series.cps_series()
    bps = [b / 1e6 for b in result.series.bps_series()]
    print("CPS  " + sparkline(cps))
    print("BPS  " + sparkline(bps))
    print()
    print(format_table(("t (s)", "CPS", "BPS (MB/s)"),
                       zip(result.series.times(), cps, bps)))

    growth = growth_profile(cps)
    early = sum(growth[:len(growth) // 2]) / max(1, len(growth) // 2)
    late = sum(growth[len(growth) // 2:]) / max(1, len(growth) -
                                                len(growth) // 2)
    print(f"\nmean CPS growth, first half:  {early:+.1f} per sample")
    print(f"mean CPS growth, second half: {late:+.1f} per sample")
    print(f"accelerating (exponential-like): {late > early}")
    print(f"migrations performed: {result.migrations} "
          f"(rate-limited to one per home per T_st, "
          f"one per co-op per T_coop)")


if __name__ == "__main__":
    main()
