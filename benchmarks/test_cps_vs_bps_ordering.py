"""Section 5.3 — CPS vs BPS across data sets.

Paper shape: aggregate BPS ranks the data sets by mean document size
(Sequoia > SBLog > MAPUG > LOD) while CPS ranks them in the reverse
order — small files maximize connections, large files maximize bytes.
"""

import pytest

from repro.bench.figures import cps_vs_bps


@pytest.fixture(scope="module")
def result(scale):
    return cps_vs_bps(scale)


def _column(result, dataset, index):
    for row in result.rows:
        if row[0] == dataset:
            return row[index]
    raise KeyError(dataset)


def test_cps_vs_bps_regenerate(benchmark, result, report):
    benchmark.pedantic(lambda: None, rounds=1)
    report("cps_vs_bps", result.format())


def test_cps_order_is_reverse_size_order(result):
    # LOD (smallest docs) wins CPS; Sequoia (largest) loses it.
    assert result.cps_order() == ["lod", "mapug", "sblog", "sequoia"]


def test_sequoia_has_highest_bps(result):
    assert result.bps_order()[0] == "sequoia"


def test_sblog_bps_beats_small_file_datasets(result):
    sblog = _column(result, "sblog", 2)
    assert sblog > _column(result, "lod", 2)
    assert sblog > _column(result, "mapug", 2)


def test_bytes_per_connection_ranks_by_document_size(result):
    per_connection = {row[0]: row[3] for row in result.rows}
    assert per_connection["sequoia"] > per_connection["sblog"] > \
        per_connection["mapug"] > per_connection["lod"]
