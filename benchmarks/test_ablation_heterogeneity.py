"""Ablation — heterogeneous server speeds (motivated by section 2).

Half the servers run at half speed.  Findings this bench reproduces and
extends:

- plain DCWS *degrades* under heterogeneity: its CPS load metric reads a
  slow machine's low throughput as idleness, steers documents there, and
  the machine sheds load (an honest limitation — the paper defers
  heterogeneous environments to future work, section 6);
- the drop-pressure extension (advertising dropped connections as load)
  recovers most of the loss, beating plain DCWS on the same hardware.
"""

import pytest

from repro.bench.figures import ablation_heterogeneity


@pytest.fixture(scope="module")
def result(scale):
    return ablation_heterogeneity(scale)


def test_heterogeneity_regenerate(benchmark, result, report):
    benchmark.pedantic(lambda: None, rounds=1)
    report("ablation_heterogeneity", result.format())


def test_heterogeneity_hurts_plain_dcws(result):
    homo = result.cps_of("homogeneous", "dcws")
    hetero = result.cps_of("heterogeneous", "dcws")
    assert hetero < homo


def test_drop_pressure_recovers(result):
    plain = result.cps_of("heterogeneous", "dcws")
    with_dp = result.cps_of("heterogeneous", "dcws+droppressure")
    assert with_dp > plain


def test_drop_pressure_harmless_when_homogeneous(result):
    plain = result.cps_of("homogeneous", "dcws")
    with_dp = result.cps_of("homogeneous", "dcws+droppressure")
    assert with_dp > plain * 0.85
