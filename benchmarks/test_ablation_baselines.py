"""Ablation — DCWS vs the related-work architectures (paper section 2).

Expected shapes:

- the central TCP router caps aggregate throughput at the router's own
  capacity no matter how many backends exist (the bottleneck the paper's
  introduction calls out);
- round-robin DNS matches DCWS throughput on a hot-spot-free data set but
  pays N-fold storage (full replication), DCWS stores each document once.
"""

import pytest

from repro.bench.figures import ablation_baselines


@pytest.fixture(scope="module")
def result(scale):
    return ablation_baselines(scale, datasets=("lod",), server_counts=(2, 8))


def test_baselines_regenerate(benchmark, result, report):
    benchmark.pedantic(lambda: None, rounds=1)
    report("ablation_baselines", result.format())


def test_dcws_scales_past_router(result):
    dcws_8 = result.steady_cps_of("lod", "dcws", 8)
    router_8 = result.steady_cps_of("lod", "tcp-router", 8)
    assert dcws_8 > router_8 * 1.3, (
        f"DCWS {dcws_8:.0f} vs router {router_8:.0f}")


def test_router_gains_little_from_servers(result):
    router_2 = result.steady_cps_of("lod", "tcp-router", 2)
    router_8 = result.steady_cps_of("lod", "tcp-router", 8)
    dcws_gain = result.steady_cps_of("lod", "dcws", 8) / \
        result.steady_cps_of("lod", "dcws", 2)
    router_gain = router_8 / router_2
    assert router_gain < dcws_gain


def test_dcws_storage_is_one_copy(result):
    storage = {(system, servers): value
               for __, system, servers, __, __, value in result.rows}
    assert storage[("dcws", 8)] == storage[("dcws", 2)]
    assert storage[("rr-dns", 8)] == pytest.approx(
        4 * storage[("rr-dns", 2)], rel=0.01)
    assert storage[("rr-dns", 8)] == pytest.approx(
        8 * storage[("dcws", 8)], rel=0.01)


def test_rr_dns_competitive_without_hot_spots(result):
    # On LOD both spread load; RR-DNS should be within 2x of DCWS.
    rr = result.steady_cps_of("lod", "rr-dns", 8)
    dcws = result.steady_cps_of("lod", "dcws", 8)
    assert rr > dcws * 0.5
