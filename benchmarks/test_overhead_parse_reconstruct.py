"""Section 5.3 — overhead for parsing and reconstruction.

Paper numbers (200 MHz Pentium): ~3 ms to parse a 6.5 KB document,
~20 ms to reconstruct it; LOD reconstruction rates of 1.3 docs/s average
and 17.2 docs/s peak, i.e. regeneration "did not impose a significant
performance penalty".  These are true microbenchmarks of the real parser
and rewriter (modern hardware is faster in absolute terms; the claim that
survives is reconstruct/parse >> 1 and a negligible share of CPU).
"""

import random

import pytest

from repro.bench.figures import overhead
from repro.datasets.base import filler_text
from repro.html.parser import parse_html
from repro.html.rewriter import rewrite_html


def build_document(document_bytes=6500, links=10, seed=7):
    rng = random.Random(seed)
    anchors = "".join(f'<a href="/doc{k}.html">link {k}</a>'
                      for k in range(links))
    body = filler_text(rng, document_bytes - 60 * links)
    return (f"<html><head><title>bench</title></head>"
            f"<body>{anchors}<p>{body}</p></body></html>")


def test_parse_speed(benchmark):
    source = build_document()
    tree = benchmark(parse_html, source)
    assert tree.find_all("a")


def test_reconstruct_speed(benchmark):
    source = build_document()
    output = benchmark(rewrite_html, source,
                       lambda v: v + "?moved" if v.startswith("/doc") else None)
    assert "?moved" in output


@pytest.fixture(scope="module")
def result(scale):
    return overhead(scale)


def test_overhead_report(benchmark, result, report):
    benchmark.pedantic(lambda: None, rounds=1)
    report("overhead", result.format())


def test_reconstruct_costs_more_than_parse(result):
    assert result.reconstruct_ms > result.parse_ms


def test_corpus_matches_paper_size(result):
    assert result.mean_document_bytes == pytest.approx(6500, rel=0.15)


def test_reconstruction_rate_is_modest(result):
    # Paper: 1.3 avg / 17.2 peak docs/s on LOD.  Shape claim: the peak
    # regeneration load is a small fraction of a server's capacity
    # (17.2 docs/s * 20 ms = ~34 % of one CPU at worst, average ~3 %).
    assert result.mean_reconstruction_rate < result.peak_reconstruction_rate
    assert result.mean_reconstruction_rate * 0.020 < 0.25
