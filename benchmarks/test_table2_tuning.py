"""Table 2 — parameter tuning trade-offs.

The paper predicts, for each Table 1 interval, which overhead grows when
the interval shrinks (more migrations/pings/validations/redirections) and
which responsiveness suffers when it grows.  Each row here runs a low/high
pair of cold-start experiments and checks the predicted direction.
"""

import pytest

from repro.bench.figures import table2


@pytest.fixture(scope="module")
def result(scale):
    return table2(scale)


def test_table2_regenerate(benchmark, result, report):
    benchmark.pedantic(lambda: None, rounds=1)
    report("table2", result.format())


def test_lower_Tst_means_more_migration_overhead(result):
    row = result.row("T_st")
    assert row.low_result >= row.high_result


def test_lower_Tpi_means_more_forced_pings(result):
    row = result.row("T_pi")
    assert row.low_result >= row.high_result


def test_lower_Tval_means_more_validation_transfers(result):
    row = result.row("T_val")
    assert row.low_result >= row.high_result


def test_lower_Thome_means_more_migration_and_redirection(result):
    row = result.row("T_home")
    assert row.low_result >= row.high_result


def test_lower_Tcoop_means_faster_balancing(result):
    row = result.row("T_coop")
    assert row.low_result >= row.high_result
