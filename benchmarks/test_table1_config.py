"""Table 1 — server parameter settings.

Regenerates the paper's Table 1 from :class:`ServerConfig` defaults and
asserts every published value.  The timed section measures configuration
construction + validation (the only code Table 1 exercises).
"""

from repro.bench.reporting import format_table
from repro.core.config import ServerConfig

PAPER_TABLE_1 = [
    ("Number of front-end threads (N_fe)", "front_end_threads", 1),
    ("Number of pinger threads (N_pi)", "pinger_threads", 1),
    ("Number of worker threads (N_wk)", "worker_threads", 12),
    ("Socket queue length (L_sq)", "socket_queue_length", 100),
    ("Statistics re-calculation interval (T_st)", "stats_interval", 10.0),
    ("Pinger thread activation interval (T_pi)", "pinger_interval", 20.0),
    ("Co-op document validation interval (T_val)", "validation_interval",
     120.0),
    ("Home document re-migration interval (T_home)",
     "home_remigration_interval", 300.0),
    ("Min time between migrations to same co-op (T_coop)",
     "coop_migration_spacing", 60.0),
]


def test_table1_defaults_match_paper(benchmark, report):
    config = benchmark(ServerConfig)
    rows = []
    for description, field, expected in PAPER_TABLE_1:
        actual = getattr(config, field)
        assert actual == expected, f"{field}: {actual} != paper {expected}"
        rows.append((description, expected))
    report("table1", format_table(
        ("Description", "Parameter value"), rows,
        title="Table 1 — setting of server parameters"))
