"""Figure 6 — peak load: BPS and CPS vs number of concurrent clients.

Paper shape (LOD data set): both measures rise roughly linearly with the
client population, then flatten at a stable peak once the cluster
saturates (excess requests are dropped); doubling the number of servers
roughly doubles the peak.
"""

import pytest

from repro.bench.figures import figure6


@pytest.fixture(scope="module")
def result(scale):
    return figure6(scale)


def test_figure6_regenerate(benchmark, result, report):
    benchmark.pedantic(lambda: None, rounds=1)  # sweep ran once in fixture
    report("figure6", result.format())


def test_cps_rises_with_clients_before_saturation(result, scale):
    smallest = min(s for s, *_ in result.rows)
    series = result.series_for(smallest)
    # CPS at the lightest load is well below the peak.
    first_cps = series[0][1]
    assert first_cps < result.peak_cps(smallest) * 0.8


def test_cps_stabilizes_at_peak(result, scale):
    """Beyond saturation the curve flattens instead of collapsing."""
    largest = max(s for s, *_ in result.rows)
    series = result.series_for(largest)
    cps_values = [cps for __, cps, __ in series]
    peak = max(cps_values)
    # The heaviest client count still delivers at least 60 % of peak.
    assert cps_values[-1] >= 0.6 * peak


def test_peak_doubles_with_servers(result, scale):
    counts = sorted({s for s, *_ in result.rows})
    for low, high in zip(counts, counts[1:]):
        ratio_servers = high / low
        ratio_peak = result.peak_cps(high) / result.peak_cps(low)
        # Paper: "whenever the number of servers was doubled up, the peak
        # performance was improved proportionally" (LOD has no hot spot).
        assert ratio_peak >= 0.70 * ratio_servers, (
            f"{low}->{high} servers: peak ratio {ratio_peak:.2f}")


def test_bps_tracks_cps(result):
    for servers, clients, cps, bps in result.rows:
        if cps > 0:
            bytes_per_connection = bps / cps
            assert 1000 < bytes_per_connection < 10000  # LOD ~2.6 KB/conn
