"""Shared fixtures for the paper-reproduction benchmarks.

Every bench writes its formatted table/series to
``benchmarks/results/<name>.txt`` (so results survive the run and feed
EXPERIMENTS.md) and also prints it, visible with ``pytest -s``.
"""

import os

import pytest

from repro.bench.harness import current_scale

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def scale():
    """The experiment scale selected by REPRO_BENCH_SCALE."""
    return current_scale()


@pytest.fixture(scope="session")
def report():
    """report(name, text): persist and print a bench's output."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _report(name: str, text: str) -> None:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _report
