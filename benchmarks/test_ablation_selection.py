"""Ablation — Algorithm 1's selection heuristics (steps 4-5).

Compares the paper's selection (minimal remote LinkFrom, then minimal
LinkTo) against "hottest-first" and "random" on a cold start.  The
locality heuristics exist to reduce hyperlink-update churn: fewer referrer
regenerations for comparable balancing throughput.
"""

import pytest

from repro.bench.figures import ablation_selection


@pytest.fixture(scope="module")
def result(scale):
    return ablation_selection(scale, dataset="mapug", servers=4)


def test_selection_regenerate(benchmark, result, report):
    benchmark.pedantic(lambda: None, rounds=1)
    report("ablation_selection", result.format())


def test_all_policies_balance(result):
    for policy, cps, migrations, __ in result.rows:
        assert cps > 0
        assert migrations > 0, f"{policy} never migrated"


def test_paper_policy_competitive_throughput(result):
    by_policy = {row[0]: row[1] for row in result.rows}
    best = max(by_policy.values())
    assert by_policy["paper"] >= 0.7 * best


def test_paper_policy_not_more_churn_than_random(result):
    churn = {row[0]: row[3] / max(1, row[2]) for row in result.rows}
    # Reconstructions per migration: Algorithm 1 should not be the worst.
    assert churn["paper"] <= max(churn.values()) * 1.001
