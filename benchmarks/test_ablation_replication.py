"""Replication benches: hot-spot ceiling and kill-one-holder availability.

Two experiments share this file:

1. The original ablation (paper future work, section 6): "the only way
   to get around this problem is to adopt replication of hot spots".
   Enabling the replication extension on the hot-spot data set (SBLog)
   must lift the single-co-op ceiling the prototype hits in Figure 7.

2. The replication-groups subsystem under failure: a Zipf flash crowd
   runs against a prewarmed cluster and the busiest co-op is killed
   mid-run.  Replication groups with autonomous repair (k=2) must beat
   the revoke/re-home baseline on availability — strictly — and must
   finish with zero revocations (no 302 storm: every document the dead
   co-op held had a surviving copy to promote).

Unlike the pytest-benchmark microbenches, this file needs only pytest,
so it doubles as the CI smoke for the replication subsystem.  Numbers
land in ``benchmarks/results/`` and the machine-readable
``BENCH_replication.json`` at the repo root.
"""

import json
import os

import pytest

from repro.bench.figures import ablation_replication, bench_kill_holder

BENCH_JSON = os.path.join(os.path.dirname(__file__), "..",
                          "BENCH_replication.json")


@pytest.fixture(scope="module")
def result(scale):
    return ablation_replication(scale, dataset="sblog", servers=8)


@pytest.fixture(scope="module")
def kill_result(scale):
    return bench_kill_holder(scale, dataset="sblog", servers=4)


# ----------------------------------------------------------------------
# Ablation — hot-spot replication lifts the single-co-op ceiling
# ----------------------------------------------------------------------

def test_replication_regenerate(result, report):
    report("ablation_replication", result.format())


def test_replication_happened(result):
    assert result.replications > 0


def test_replication_raises_hot_spot_ceiling(result):
    assert result.gain > 1.05, (
        f"replication gain only {result.gain:.2f}x "
        f"({result.cps_without:.0f} -> {result.cps_with:.0f} CPS)")


# ----------------------------------------------------------------------
# Bench — kill one holder: availability and tail latency under repair
# ----------------------------------------------------------------------

def test_kill_holder_report(kill_result, report):
    report("bench_kill_holder", kill_result.format())
    baseline = kill_result.row("baseline")
    replicated = kill_result.row("replicated")
    data = {
        "dataset": kill_result.dataset,
        "servers": kill_result.servers,
        "crash_at": round(kill_result.crash_at, 1),
        "availability": {
            "baseline": round(baseline[1], 4),
            "replicated": round(replicated[1], 4),
        },
        "p99_latency": {
            "baseline": round(baseline[2], 3),
            "replicated": round(replicated[2], 3),
        },
        "errors": {"baseline": baseline[3], "replicated": replicated[3]},
        "repairs": replicated[4],
        "replica_drops": replicated[5],
        "revocations": {
            "baseline": baseline[6], "replicated": replicated[6],
        },
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_kill_holder_availability_beats_baseline(kill_result):
    baseline = kill_result.availability("baseline")
    replicated = kill_result.availability("replicated")
    assert replicated > baseline, (
        f"replication availability {replicated:.4f} did not beat the "
        f"revoke/re-home baseline {baseline:.4f}")


def test_kill_holder_repairs_ran_without_revocation_storm(kill_result):
    replicated = kill_result.row("replicated")
    assert replicated[4] > 0, "no repairs ran in the replicated variant"
    assert replicated[5] > 0, "holder death produced no replica_drop"
    assert replicated[6] == 0, (
        f"replicated variant revoked {replicated[6]} documents — the "
        f"dead holder's documents should all have had surviving copies")


def test_kill_holder_tail_latency(kill_result):
    assert kill_result.p99("replicated") <= kill_result.p99("baseline"), (
        f"p99 {kill_result.p99('replicated'):.2f}s worse than baseline "
        f"{kill_result.p99('baseline'):.2f}s")
