"""Ablation — hot-spot replication (the paper's future work, section 6).

The paper conjectures "the only way to get around this problem is to
adopt replication of hot spots".  This bench enables the replication
extension on the hot-spot data set (SBLog) and verifies it lifts the
single-co-op ceiling the prototype hits in Figure 7.
"""

import pytest

from repro.bench.figures import ablation_replication


@pytest.fixture(scope="module")
def result(scale):
    return ablation_replication(scale, dataset="sblog", servers=8)


def test_replication_regenerate(benchmark, result, report):
    benchmark.pedantic(lambda: None, rounds=1)
    report("ablation_replication", result.format())


def test_replication_happened(result):
    assert result.replications > 0


def test_replication_raises_hot_spot_ceiling(result):
    assert result.gain > 1.05, (
        f"replication gain only {result.gain:.2f}x "
        f"({result.cps_without:.0f} -> {result.cps_with:.0f} CPS)")
