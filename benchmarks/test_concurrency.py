"""Concurrent keep-alive capacity: event loop vs thread-per-connection.

The thread-per-connection front end pins one worker for every open
keep-alive connection, so its concurrency ceiling is the worker count —
idle-but-open clients starve everyone behind them in the accept queue.
The event-loop front end holds an open connection for the cost of a
selector registration, so one thread sustains them all.

Two measurements back the claim:

1. **Sustained concurrency** — N keep-alive clients connect to each
   front end (same engine config, same ``worker_threads``) and each
   tries to complete ``ROUNDS`` request/response exchanges within a
   fixed window.  A connection counts as *sustained* when every round
   completed.  The acceptance bar is aio >= 4x threaded.
2. **Correctness equivalence** — a full BFS crawl plus a seeded
   RandomWalker run against both front ends must produce identical
   (status, size, links, images) for every path: the event loop may not
   change a single answer, only how many clients get one.

Numbers land in ``benchmarks/results/concurrency.txt`` and the
machine-readable ``BENCH_concurrency.json`` at the repo root.
"""

import json
import os
import select
import socket
import time

from repro.client.realclient import fetch_url
from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.urls import URL
from repro.server.aio import AsyncDCWSServer
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.server.threaded import ThreadedDCWSServer

WORKERS = 8
CONNECTIONS = 64
ROUNDS = 2
WINDOW = 3.0
BENCH_JSON = os.path.join(os.path.dirname(__file__), "..",
                          "BENCH_concurrency.json")

SITE = {
    "/index.html": (b'<html><a href="d.html">D</a><a href="e.html">E</a>'
                    b'<img src="i.gif"></html>'),
    "/d.html": b'<html><a href="e.html">E</a><a href="index.html">up</a></html>',
    "/e.html": b"<html>leaf</html>",
    "/i.gif": b"GIF89a" + b"x" * 500,
}

REQUEST = b"GET /e.html HTTP/1.1\r\nHost: bench\r\n\r\n"


def record_json(**fields) -> None:
    """Merge *fields* into the repo-root benchmark record."""
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            data = json.load(handle)
    data.update(fields)
    with open(BENCH_JSON, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def make_server(server_cls, *, keep_alive_timeout=30.0):
    """One server, no peers, periodic machinery effectively off.

    ``keep_alive_timeout`` is deliberately long: a threaded worker holds
    its connection for the whole keep-alive window, which is exactly the
    pinning behaviour this bench quantifies.
    """
    config = ServerConfig(worker_threads=WORKERS,
                          stats_interval=60.0, pinger_interval=60.0,
                          validation_interval=60.0,
                          migration_hit_threshold=1e9,
                          keep_alive_timeout=keep_alive_timeout)
    engine = DCWSEngine(Location("127.0.0.1", free_port()), config,
                        MemoryStore(SITE), entry_points=["/index.html"])
    return server_cls(engine, tick_period=0.25)


# ----------------------------------------------------------------------
# Measurement 1: sustained keep-alive concurrency
# ----------------------------------------------------------------------

class _Client:
    """One keep-alive client: send, await full response, repeat."""

    __slots__ = ("sock", "buffer", "rounds_done", "awaiting")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.buffer = bytearray()
        self.rounds_done = 0
        self.awaiting = False

    def response_complete(self) -> bool:
        head_end = self.buffer.find(b"\r\n\r\n")
        if head_end < 0:
            return False
        head = bytes(self.buffer[:head_end]).lower()
        marker = b"content-length:"
        start = head.find(marker)
        length = int(head[start + len(marker):].split(b"\r\n")[0]) \
            if start >= 0 else 0
        if len(self.buffer) < head_end + 4 + length:
            return False
        del self.buffer[:head_end + 4 + length]
        return True


def sustained_connections(port: int, connections: int, window: float) -> int:
    """How many of *connections* complete ROUNDS exchanges in *window*?"""
    clients = []
    try:
        for __ in range(connections):
            sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
            sock.setblocking(False)
            client = _Client(sock)
            try:
                sock.send(REQUEST)
                client.awaiting = True
            except OSError:
                pass
            clients.append(client)
        deadline = time.monotonic() + window
        pending = {c.sock: c for c in clients if c.awaiting}
        while pending and time.monotonic() < deadline:
            readable, __, __ = select.select(list(pending), [], [], 0.05)
            for sock in readable:
                client = pending[sock]
                try:
                    chunk = sock.recv(65536)
                except OSError:
                    chunk = b""
                if not chunk:
                    del pending[sock]
                    continue
                client.buffer += chunk
                while client.response_complete():
                    client.rounds_done += 1
                    if client.rounds_done >= ROUNDS:
                        del pending[sock]
                        break
                    try:
                        sock.send(REQUEST)
                    except OSError:
                        del pending[sock]
                        break
        return sum(1 for c in clients if c.rounds_done >= ROUNDS)
    finally:
        for client in clients:
            try:
                client.sock.close()
            except OSError:
                pass


# ----------------------------------------------------------------------
# Measurement 2: request-correctness equivalence
# ----------------------------------------------------------------------

def crawl(port: int):
    """BFS the whole site; map path -> observable response facts."""
    seen = {}
    frontier = ["/index.html"]
    while frontier:
        path = frontier.pop(0)
        if path in seen:
            continue
        outcome = fetch_url(URL("127.0.0.1", port, path))
        seen[path] = (outcome.status, outcome.size,
                      tuple(outcome.links), tuple(outcome.images))
        for link in list(outcome.links) + list(outcome.images):
            target = "/" + link.lstrip("/")
            if target not in seen:
                frontier.append(target)
    return seen


def walker_trace(port: int, seed: int = 11):
    """A seeded RandomWalker's observable fetch sequence."""
    from repro.client.walker import RandomWalker

    trace = []

    def fetch(url, **kwargs):
        outcome = fetch_url(url)
        trace.append((url.path, outcome.status, outcome.size))
        return outcome

    walker = RandomWalker([f"http://127.0.0.1:{port}/index.html"], fetch,
                          seed=seed, sleep=lambda __: None)
    walker.run(sequences=3)
    return trace


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------

def test_event_loop_sustains_4x_keep_alive_concurrency(report):
    sustained = {}
    crawls = {}
    traces = {}
    for name, server_cls in (("threaded", ThreadedDCWSServer),
                             ("aio", AsyncDCWSServer)):
        server = make_server(server_cls)
        server.start()
        try:
            assert server.wait_ready()
            crawls[name] = crawl(server.port)
            traces[name] = walker_trace(server.port)
            sustained[name] = sustained_connections(
                server.port, CONNECTIONS, WINDOW)
        finally:
            server.stop()

    divergences = [path for path in sorted(set(crawls["threaded"])
                                           | set(crawls["aio"]))
                   if crawls["threaded"].get(path) != crawls["aio"].get(path)]
    if traces["threaded"] != traces["aio"]:
        divergences.append("<walker-trace>")

    ratio = sustained["aio"] / max(sustained["threaded"], 1)
    lines = [
        "concurrent keep-alive capacity "
        f"({CONNECTIONS} clients, {WORKERS} workers, "
        f"{ROUNDS} rounds in {WINDOW:g}s)",
        f"  threaded sustained : {sustained['threaded']:4d}",
        f"  aio sustained      : {sustained['aio']:4d}",
        f"  ratio              : {ratio:.1f}x",
        f"  paths compared     : {len(crawls['aio'])}",
        f"  walker fetches     : {len(traces['aio'])}",
        f"  divergences        : {len(divergences)}",
    ]
    report("concurrency", "\n".join(lines))
    record_json(workers=WORKERS, connections_attempted=CONNECTIONS,
                rounds=ROUNDS, window_seconds=WINDOW,
                threaded_sustained=sustained["threaded"],
                aio_sustained=sustained["aio"],
                ratio=round(ratio, 2),
                paths_compared=len(crawls["aio"]),
                walker_fetches=len(traces["aio"]),
                walker_divergences=len(divergences))

    assert not divergences, f"front ends disagreed on: {divergences}"
    assert sustained["aio"] >= CONNECTIONS * 0.9, \
        "event loop failed to sustain nearly every connection"
    assert ratio >= 4.0, (
        f"aio sustained only {sustained['aio']} vs threaded "
        f"{sustained['threaded']} — below the 4x bar")


# ----------------------------------------------------------------------
# Measurement 3: multi-process scale-out (SO_REUSEPORT workers)
# ----------------------------------------------------------------------

def closed_loop_rps(port: int, connections: int, window: float) -> float:
    """Aggregate cached-hit RPS: closed-loop keep-alive clients re-send
    the moment a response completes; responses counted over *window*."""
    clients = []
    completed = 0
    try:
        for __ in range(connections):
            sock = socket.create_connection(("127.0.0.1", port),
                                            timeout=5.0)
            sock.setblocking(False)
            client = _Client(sock)
            try:
                sock.send(REQUEST)
            except OSError:
                pass
            clients.append(client)
        start = time.monotonic()
        deadline = start + window
        live = {c.sock: c for c in clients}
        while live and time.monotonic() < deadline:
            readable, __, __ = select.select(list(live), [], [], 0.05)
            for sock in readable:
                client = live[sock]
                try:
                    chunk = sock.recv(65536)
                except OSError:
                    chunk = b""
                if not chunk:
                    del live[sock]
                    continue
                client.buffer += chunk
                while client.response_complete():
                    completed += 1
                    try:
                        sock.send(REQUEST)
                    except OSError:
                        del live[sock]
                        break
        elapsed = time.monotonic() - start
        return completed / max(elapsed, 1e-6)
    finally:
        for client in clients:
            try:
                client.sock.close()
            except OSError:
                pass


def test_multiproc_worker_sweep(report, scale):
    """Cached-hit RPS at 1, 2, and 4 worker processes.

    The honest caveat is recorded with the numbers: on a single-core
    container (``os.cpu_count() == 1``) four event loops time-slice one
    CPU, so the >= 2.5x scaling bar is only *enforced* when at least 4
    cores exist (``scaling_gate``: "full").  On fewer cores the gate
    degrades to "no collapse": multi-worker throughput must stay within
    2x of single-worker (IPC + scheduling overhead bounded), and
    ``scaling_ok`` reports that weaker check.
    """
    from repro.server.multiproc import WorkerSupervisor, choose_mode

    mode = choose_mode()
    if mode is None:
        import pytest
        pytest.skip("no multi-process accept mode on this platform")

    window = 1.0 if scale.name == "quick" else 3.0
    connections = 16

    def factory(index, location):
        config = ServerConfig(stats_interval=60.0, pinger_interval=60.0,
                              validation_interval=60.0,
                              migration_hit_threshold=1e9,
                              keep_alive_timeout=30.0)
        return DCWSEngine(location, config, MemoryStore(SITE),
                          entry_points=["/index.html"])

    rps = {}
    for workers in (1, 2, 4):
        with WorkerSupervisor(factory, workers, port=0, mode=mode) as sup:
            # Warm every worker's byte/response caches before timing.
            for __ in range(workers * 3):
                fetch_url(URL("127.0.0.1", sup.port, "/e.html"),
                          timeout=2.0)
            rps[workers] = closed_loop_rps(sup.port, connections, window)

    cpu_count = os.cpu_count() or 1
    ratio_4v1 = rps[4] / max(rps[1], 1e-6)
    if cpu_count >= 4:
        scaling_gate = "full"
        scaling_ok = ratio_4v1 >= 2.5
    else:
        # One core: parallel speedup is physically impossible; assert
        # the multi-process plumbing does not collapse throughput.
        scaling_gate = "single-core-no-collapse"
        scaling_ok = rps[4] >= rps[1] * 0.5
    lines = [
        f"multi-process cached-hit throughput ({mode}, "
        f"{connections} clients, {window:g}s window, "
        f"{cpu_count} cpu cores)",
        *(f"  {w} worker(s) : {rps[w]:9.0f} rps" for w in (1, 2, 4)),
        f"  4v1 ratio   : {ratio_4v1:.2f}x",
        f"  gate        : {scaling_gate} -> "
        f"{'ok' if scaling_ok else 'FAIL'}",
    ]
    report("concurrency_multiproc", "\n".join(lines))
    record_json(multiproc={
        "mode": mode,
        "cpu_count": cpu_count,
        "connections": connections,
        "window_seconds": window,
        "rps": {str(w): round(rps[w], 1) for w in (1, 2, 4)},
        "ratio_4v1": round(ratio_4v1, 3),
        "scaling_gate": scaling_gate,
        "scaling_ok": scaling_ok,
    })
    assert scaling_ok, (
        f"multi-process scaling gate failed ({scaling_gate}): "
        f"rps={rps}, ratio={ratio_4v1:.2f}")
