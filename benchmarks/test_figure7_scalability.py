"""Figure 7 — scalability and hot spots across the four data sets.

Paper shape: LOD and Sequoia scale close to linearly with the number of
servers; SBLog and MAPUG are substantially sub-linear because their few
hot images saturate whichever co-op hosts them (e.g. SBLog gained only
~5-7 % going from 8 to 16 servers).
"""

import pytest

from repro.bench.figures import figure7


@pytest.fixture(scope="module")
def result(scale):
    return figure7(scale)


def _endpoints(scale):
    counts = sorted(scale.server_counts)
    return counts[0], counts[-1]


def test_figure7_regenerate(benchmark, result, report):
    benchmark.pedantic(lambda: None, rounds=1)
    report("figure7", result.format())


def test_lod_scales_near_linearly(result, scale):
    low, high = _endpoints(scale)
    ratio = result.scaling_ratio("lod", low, high)
    assert ratio >= 0.75 * (high / low), f"LOD ratio {ratio:.2f}"


def test_sequoia_scales_near_linearly(result, scale):
    low, high = _endpoints(scale)
    ratio = result.scaling_ratio("sequoia", low, high, metric="bps")
    assert ratio >= 0.70 * (high / low), f"Sequoia BPS ratio {ratio:.2f}"


def test_sblog_sub_linear(result, scale):
    low, high = _endpoints(scale)
    ratio = result.scaling_ratio("sblog", low, high)
    assert ratio <= 0.80 * (high / low), f"SBLog ratio {ratio:.2f}"


def test_mapug_sub_linear(result, scale):
    low, high = _endpoints(scale)
    ratio = result.scaling_ratio("mapug", low, high)
    assert ratio <= 0.85 * (high / low), f"MAPUG ratio {ratio:.2f}"


def test_hot_spot_datasets_scale_worse_than_lod(result, scale):
    low, high = _endpoints(scale)
    lod = result.scaling_ratio("lod", low, high)
    assert result.scaling_ratio("sblog", low, high) < lod
    assert result.scaling_ratio("mapug", low, high) < lod
