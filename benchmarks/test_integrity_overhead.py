"""Background-scrub overhead on the cached serve path.

Integrity is only acceptable if it is cheap where it matters: the scrub
daemon re-hashes a budgeted batch of documents per round *inside the
engine tick*, so an over-eager schedule would steal lock time from the
serve path.  This bench drives a real :class:`ThreadedDCWSServer` on
loopback with a pooled keep-alive client over a fully warm response
cache — the fast path where every request is a cached zero-copy send —
and compares:

- ``scrub_off`` — ``scrub_interval=0`` (the integrity daemon disabled);
- ``scrub_on``  — an aggressive 50 ms scrub interval at the default
  per-round budget, i.e. strictly more scrubbing than the production
  default (30 s) would ever do during the same window.

Each mode runs three times; the medians are compared.  Acceptance:
scrubbing costs at most 5% of cached-serve throughput.  The bench also
asserts the zero-copy contract: every cached 200 carried an
``X-DCWS-Digest`` stamped from the document record — no body was read
or re-hashed to produce it.  Numbers land in
``benchmarks/results/integrity_overhead.txt`` and the machine-readable
``BENCH_integrity.json`` at the repo root.
"""

import json
import os
import socket
import statistics
import time

from repro.client.pool import ConnectionPool
from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.content import DIGEST_HEADER, digest_matches
from repro.http.messages import Request
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.server.threaded import ThreadedDCWSServer

BENCH_JSON = os.path.join(os.path.dirname(__file__), "..",
                          "BENCH_integrity.json")

WARMUP = 30
RUNS = 3
DOC = b"<html>" + b"x" * 4096 + b"</html>"
SITE = {f"/doc{i}.html": DOC for i in range(48)}
TARGETS = [f"/doc{i}.html" for i in range(8)]


def operations(scale) -> int:
    return 600 if scale.name == "quick" else 2000


def record_json(**fields) -> None:
    """Merge *fields* into the repo-root benchmark record."""
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            data = json.load(handle)
    data.update(fields)
    with open(BENCH_JSON, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def run_mode(scrub_interval: float, ops: int):
    """(requests/s, engine) for one scrub schedule over the workload."""
    config = ServerConfig(stats_interval=60.0, pinger_interval=60.0,
                          validation_interval=60.0,
                          migration_hit_threshold=1e9,
                          scrub_interval=scrub_interval)
    loc = Location("127.0.0.1", free_port())
    engine = DCWSEngine(loc, config, MemoryStore(dict(SITE)))
    server = ThreadedDCWSServer(engine, tick_period=0.05)
    server.start()
    digest_stamped = 0
    try:
        with ConnectionPool(timeout=10.0) as pool:
            requests = [Request(method="GET", target=t) for t in TARGETS]
            for index in range(WARMUP):
                pool.fetch(loc, requests[index % len(requests)])
            start = time.perf_counter()
            for index in range(ops):
                response = pool.fetch(loc, requests[index % len(requests)])
                assert response.status == 200
                claimed = response.headers.get(DIGEST_HEADER, "")
                if claimed:
                    digest_stamped += 1
                    if index % 100 == 0:  # spot-verify, off the hot loop
                        assert digest_matches(response.body, claimed)
            elapsed = time.perf_counter() - start
    finally:
        server.stop()
    # The zero-copy contract: the digest header came along on every
    # cached send (it is stamped from the record, never re-hashed).
    assert digest_stamped == ops, (digest_stamped, ops)
    return ops / elapsed, engine


def test_integrity_scrub_overhead(report, scale):
    ops = operations(scale)
    rates = {"scrub_off": [], "scrub_on": []}
    scrub_rounds = scrub_checked = 0
    for __ in range(RUNS):
        rate, __engine = run_mode(0.0, ops)
        rates["scrub_off"].append(rate)
        rate, engine = run_mode(0.05, ops)
        rates["scrub_on"].append(rate)
        scrub_rounds += engine.integrity.counters.scrub_rounds
        scrub_checked += engine.integrity.counters.scrub_checked
    # The scrubber must actually have run while we measured it.
    assert scrub_rounds > 0 and scrub_checked > 0

    median_off = statistics.median(rates["scrub_off"])
    median_on = statistics.median(rates["scrub_on"])
    relative = median_on / median_off
    lines = [
        f"Scrub overhead on the cached serve path, {ops} requests x "
        f"{RUNS} runs, {len(SITE)} x {len(DOC)}-byte documents",
        f"  {'mode':<10} {'median req/s':>14}",
        f"  {'scrub off':<10} {median_off:>14.1f}",
        f"  {'scrub on':<10} {median_on:>14.1f}   "
        f"({relative:.2%} of scrub-off; "
        f"{scrub_rounds} rounds, {scrub_checked} docs re-hashed)",
    ]
    report("integrity_overhead", "\n".join(lines))

    record_json(
        operations=ops,
        runs=RUNS,
        documents=len(SITE),
        document_bytes=len(DOC),
        rps={"scrub_off": round(median_off, 1),
             "scrub_on": round(median_on, 1)},
        relative_to_scrub_off=round(relative, 4),
        scrub_rounds=scrub_rounds,
        scrub_checked=scrub_checked,
        digest_header_on_cached_sends=True,
    )

    # The gate: scrubbing at the default budget costs at most 5% of
    # cached-serve throughput.
    assert relative >= 0.95, (
        f"scrub overhead too high: {relative:.2%} of scrub-off "
        f"throughput (rates {rates})")
