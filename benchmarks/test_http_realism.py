"""Serve-path HTTP realism: what validators + gzip buy on the wire, and
what tiered shedding preserves under overload.

Measurement 1 — **bytes on wire**.  The same site is crawled ``ROUNDS``
times by two clients: a naive one (no validator cache, no
``Accept-Encoding``) that re-downloads every identity body, and a
realistic one that revalidates with ``If-None-Match`` and accepts gzip,
the way every browser has behaved since HTTP/1.1.  The realistic client
must move dramatically fewer bytes for the same crawl (DistCache's
argument: keep the skewed head of load in the cheapest tier — here,
304s and pre-compressed variants served straight off the response
cache).

Measurement 2 — **cached vs regenerate RPS under overload**.  With the
connection-pressure signal forced past ``shed_pressure``, the server
must keep answering cached documents at full speed while refusing the
expensive tier (dirty-document regeneration) with 503; with shedding
disabled the same dirty requests are regenerated inline, which is the
slow path the policy protects.

Numbers land in ``benchmarks/results/http_realism.txt`` and the
machine-readable ``BENCH_http.json`` at the repo root.
"""

import json
import os
import re
import socket
import time

from repro.client.cache import ValidatorCache
from repro.client.realclient import fetch_url
from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.urls import URL
from repro.server.aio import AsyncDCWSServer
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore

ROUNDS = 5
SHED_REQUESTS = 50
BENCH_JSON = os.path.join(os.path.dirname(__file__), "..",
                          "BENCH_http.json")

# A small site whose pages are big enough for gzip to matter (the
# paper's Sequoia imagery is the motivating payload; repetitive HTML
# stands in for it deterministically).
PARAGRAPH = b"<p>sequoia quadrant imagery tile metadata row</p>"
SITE = {"/index.html": (b"<html>"
                        + b'<a href="p0.html">0</a><a href="p1.html">1</a>'
                        + b'<a href="p2.html">2</a><a href="p3.html">3</a>'
                        + PARAGRAPH * 40 + b"</html>")}
for index in range(4):
    SITE[f"/p{index}.html"] = (b"<html>" + PARAGRAPH * (60 + 10 * index)
                               + b"</html>")


def record_json(**fields) -> None:
    """Merge *fields* into the repo-root benchmark record."""
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            data = json.load(handle)
    data.update(fields)
    with open(BENCH_JSON, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def make_server(**config_kwargs) -> AsyncDCWSServer:
    config = ServerConfig(stats_interval=60.0, pinger_interval=60.0,
                          validation_interval=60.0,
                          migration_hit_threshold=1e9, **config_kwargs)
    engine = DCWSEngine(Location("127.0.0.1", free_port()), config,
                        MemoryStore(dict(SITE)),
                        entry_points=["/index.html"])
    return AsyncDCWSServer(engine, tick_period=0.25)


# ----------------------------------------------------------------------
# Measurement 1: bytes on wire, naive vs realistic client
# ----------------------------------------------------------------------

def crawl_bytes(port: int, *, realistic: bool):
    """ROUNDS crawls of every path; returns wire/entity byte totals."""
    validators = ValidatorCache() if realistic else None
    wire = entity = revalidated = fetches = 0
    for __ in range(ROUNDS):
        for path in sorted(SITE):
            outcome = fetch_url(URL("127.0.0.1", port, path),
                                validators=validators,
                                accept_gzip=realistic)
            assert outcome.ok, f"{path} -> {outcome.status}"
            assert outcome.size == len(SITE[path])
            fetches += 1
            wire += outcome.wire_size if outcome.wire_size is not None \
                else outcome.size
            entity += outcome.size
            revalidated += outcome.not_modified
    return {"wire": wire, "entity": entity, "not_modified": revalidated,
            "fetches": fetches}


# ----------------------------------------------------------------------
# Measurement 2: cached vs regenerate RPS once pressure crosses the bar
# ----------------------------------------------------------------------

def keep_alive_statuses(port: int, path: str, count: int,
                        dirty_hook=None):
    """One keep-alive connection, *count* serial exchanges; returns the
    status list and the elapsed wall time."""
    request = (f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n"
               .encode("ascii"))
    statuses = []
    with socket.create_connection(("127.0.0.1", port), timeout=5.0) as sock:
        start = time.monotonic()
        for __ in range(count):
            if dirty_hook is not None:
                dirty_hook()
            sock.sendall(request)
            buffer = b""
            while b"\r\n\r\n" not in buffer:
                buffer += sock.recv(65536)
            head, __, body = buffer.partition(b"\r\n\r\n")
            match = re.search(rb"content-length:\s*(\d+)", head.lower())
            needed = int(match.group(1)) if match else 0
            while len(body) < needed:
                body += sock.recv(65536)
            statuses.append(int(head.split(b" ", 2)[1]))
        elapsed = time.monotonic() - start
    return statuses, elapsed


def shedding_measurements():
    # One live connection out of max_connections=2 is pressure 0.5,
    # exactly the shed threshold: the overload tier engages while the
    # bench's single client still gets answers.
    results = {}
    for mode, shedding in (("shedding", True), ("regenerate", False)):
        server = make_server(max_connections=2, shed_pressure=0.5,
                             tiered_shedding=shedding)
        server.start()
        try:
            assert server.wait_ready()

            def dirty():
                with server._lock:
                    server.engine.update_document("/p1.html",
                                                  SITE["/p1.html"])

            cached, cached_time = keep_alive_statuses(
                server.port, "/p0.html", SHED_REQUESTS)
            dirty()
            expensive, expensive_time = keep_alive_statuses(
                server.port, "/p1.html", SHED_REQUESTS,
                dirty_hook=dirty if not shedding else None)
            results[mode] = {
                "cached_statuses": cached,
                "cached_rps": SHED_REQUESTS / max(cached_time, 1e-9),
                "expensive_statuses": expensive,
                "expensive_rps": SHED_REQUESTS / max(expensive_time, 1e-9),
                "shed": server.engine.stats.regenerations_shed,
            }
        finally:
            server.stop()
    return results


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------

def test_validators_and_gzip_cut_bytes_on_wire(report):
    server = make_server()
    server.start()
    try:
        assert server.wait_ready()
        naive = crawl_bytes(server.port, realistic=False)
        realistic = crawl_bytes(server.port, realistic=True)
    finally:
        server.stop()

    shed = shedding_measurements()

    reduction = 1.0 - realistic["wire"] / naive["wire"]
    rate_304 = realistic["not_modified"] / realistic["fetches"]
    lines = [
        f"serve-path realism ({len(SITE)} paths x {ROUNDS} rounds)",
        f"  naive bytes on wire     : {naive['wire']:8d}",
        f"  realistic bytes on wire : {realistic['wire']:8d}"
        f"  ({reduction:.0%} less)",
        f"  304 revalidations       : {realistic['not_modified']}"
        f"/{realistic['fetches']}  ({rate_304:.0%})",
        f"  cached RPS under overload    : "
        f"{shed['shedding']['cached_rps']:8.0f}",
        f"  regenerate RPS (no shedding) : "
        f"{shed['regenerate']['expensive_rps']:8.0f}",
        f"  dirty requests shed          : {shed['shedding']['shed']}",
    ]
    report("http_realism", "\n".join(lines))
    record_json(paths=len(SITE), rounds=ROUNDS,
                bytes_identity=naive["wire"],
                bytes_realistic=realistic["wire"],
                bytes_reduction=round(reduction, 4),
                rate_304=round(rate_304, 4),
                fetches=realistic["fetches"],
                shed_requests=SHED_REQUESTS,
                cached_rps_under_shedding=round(
                    shed["shedding"]["cached_rps"], 1),
                regenerate_rps=round(
                    shed["regenerate"]["expensive_rps"], 1),
                dirty_requests_shed=shed["shedding"]["shed"])

    # The naive client downloads every identity byte every round.
    assert naive["wire"] == naive["entity"]
    # Validators + gzip: after the first round everything revalidates,
    # so at minimum (ROUNDS-1)/ROUNDS of the fetches are 304s.
    assert rate_304 >= (ROUNDS - 1) / ROUNDS - 1e-9
    assert reduction >= 0.5, (
        f"realistic client still moved {realistic['wire']} of "
        f"{naive['wire']} bytes — only {reduction:.0%} saved")
    # Under overload the cached tier keeps answering 200s...
    assert shed["shedding"]["cached_statuses"].count(200) == SHED_REQUESTS
    # ...while every dirty-regeneration request is refused with 503.
    assert shed["shedding"]["expensive_statuses"].count(503) == \
        SHED_REQUESTS
    assert shed["shedding"]["shed"] == SHED_REQUESTS
    # With shedding off, the same requests regenerate inline and succeed.
    assert shed["regenerate"]["expensive_statuses"].count(200) == \
        SHED_REQUESTS
