"""Ablation — initial data distribution (paper future work, section 6).

Same cluster, three starting placements: *balanced* round-robin (the
converged state), *cold* (everything at home, Figure 8's start), and
*skewed* (everything piled onto one co-op).  Shape claims: balanced is
the throughput ceiling; both degenerate starts begin at roughly
single-server capacity and climb as the rate-limited migration machinery
redistributes documents — initial distribution matters exactly as the
paper conjectures.
"""

import pytest

from repro.bench.figures import ablation_initial_distribution


@pytest.fixture(scope="module")
def result(scale):
    return ablation_initial_distribution(scale)


def test_initial_distribution_regenerate(benchmark, result, report):
    benchmark.pedantic(lambda: None, rounds=1)
    report("ablation_initial_distribution", result.format())


def test_balanced_is_the_ceiling(result):
    balanced = result.row("balanced")[2]
    assert balanced > result.row("cold")[2]
    assert balanced > result.row("skewed")[2]


def test_degenerate_starts_near_single_server_capacity(result):
    balanced = result.row("balanced")[1]
    for distribution in ("cold", "skewed"):
        early = result.row(distribution)[1]
        assert early < balanced * 0.5


def test_recovery_in_progress(result):
    # Both degenerate starts improve from their early window to the end.
    for distribution in ("cold", "skewed"):
        __, early, __, final = result.row(distribution)
        assert final > early
