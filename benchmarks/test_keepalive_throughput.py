"""Localhost throughput: persistent connections vs one-shot fetches.

Measures requests/second against a real ThreadedDCWSServer on loopback
two ways: a fresh TCP connection per request (the pre-keep-alive socket
path) and a pooled persistent channel (the server-to-server path).  The
persistent path must win — it skips a connect/teardown per request —
and the pool's open counter must stay far below the request count.
"""

import socket
import time

from repro.client.pool import ConnectionPool
from repro.client.realclient import http_fetch
from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.messages import Request
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.server.threaded import ThreadedDCWSServer

REQUESTS = 300
DOC = b"<html>" + b"x" * 2048 + b"</html>"


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def test_keepalive_beats_one_shot(report):
    loc = Location("127.0.0.1", free_port())
    config = ServerConfig(stats_interval=60.0, pinger_interval=60.0)
    engine = DCWSEngine(loc, config, MemoryStore({"/doc.html": DOC}))
    peer = Location("127.0.0.1", loc.port)

    with ThreadedDCWSServer(engine) as server:
        assert server.wait_ready()

        def fetch_once():
            request = Request(method="GET", target="/doc.html")
            return http_fetch(peer, request, timeout=10.0)

        # Warm-up so neither mode pays first-request costs.
        for __ in range(10):
            assert fetch_once().status == 200

        start = time.perf_counter()
        for __ in range(REQUESTS):
            assert fetch_once().status == 200
        oneshot_elapsed = time.perf_counter() - start

        with ConnectionPool(timeout=10.0) as pool:
            request = Request(method="GET", target="/doc.html")
            for __ in range(10):
                assert pool.fetch(peer, request).status == 200
            start = time.perf_counter()
            for __ in range(REQUESTS):
                assert pool.fetch(peer, request).status == 200
            pooled_elapsed = time.perf_counter() - start
            opens, reuses = pool.opens, pool.reuses

    oneshot_rps = REQUESTS / oneshot_elapsed
    pooled_rps = REQUESTS / pooled_elapsed
    report("keepalive_throughput", "\n".join([
        f"localhost throughput, {REQUESTS} GETs of a {len(DOC)}-byte document",
        f"  one-shot (connection per request): {oneshot_rps:9.1f} req/s",
        f"  pooled keep-alive channel:         {pooled_rps:9.1f} req/s",
        f"  speedup: {pooled_rps / oneshot_rps:.2f}x   "
        f"pool opens={opens} reuses={reuses}",
    ]))

    assert pooled_rps > oneshot_rps
    assert opens < REQUESTS // 10
