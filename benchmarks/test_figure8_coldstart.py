"""Figure 8 — time-exponential performance growth from a cold start.

Paper shape: with all files on one home server and empty co-ops,
aggregate CPS/BPS improve slowly at first, then accelerate as migrations
compound ("performance improved rapidly at a seemingly exponential rate"),
because each migration raises the destination co-op's utilization *and*
the remaining documents' per-document hit rates.
"""

import pytest

from repro.bench.figures import figure8


@pytest.fixture(scope="module")
def result(scale):
    return figure8(scale, servers=4)


def test_figure8_regenerate(benchmark, result, report):
    benchmark.pedantic(lambda: None, rounds=1)
    report("figure8", result.format())


def test_growth_is_substantial(result):
    # The warmed system clearly outperforms the cold one.
    assert result.warmup_gain() >= 1.5, (
        f"warm-up gain only {result.warmup_gain():.2f}x")


def test_growth_accelerates(result):
    # "Exponential" signature: later increments beat earlier increments.
    assert result.is_accelerating(), (
        f"growth profile {result.cps_growth()} is not accelerating")


def test_migrations_drive_growth(result):
    assert result.migrations > 5


def test_bps_grows_with_cps(result):
    assert result.bps[-1] > result.bps[0]
