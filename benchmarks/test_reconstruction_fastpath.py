"""Hot-path serving: splice reconstruction and the response cache.

Two measurements back the serve-path optimisations:

1. Regenerating a dirty ~6.5 KB document via the link-template splice
   must be at least 5x faster than the tokenize -> parse -> rewrite ->
   serialize pipeline it replaces (the paper's ~20 ms cost, section 5.3).
2. Serving a hot document through a real ThreadedDCWSServer must not get
   slower with the rendered-response cache on; with a disk-backed store
   the cached path skips the store read and response assembly entirely.

Numbers land in ``benchmarks/results/reconstruction_fastpath.txt`` and in
the machine-readable ``BENCH_reconstruction.json`` at the repo root.

Unlike the pytest-benchmark microbenches, this file needs only pytest, so
CI runs it as a smoke test with tiny parameters.
"""

import json
import os
import random
import socket
import time

from repro.client.pool import ConnectionPool
from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.datasets.base import filler_text
from repro.html.parser import parse_html
from repro.html.rewriter import rewrite_html
from repro.html.template import build_link_template
from repro.http.messages import Request
from repro.server.engine import DCWSEngine
from repro.server.filestore import DiskStore
from repro.server.threaded import ThreadedDCWSServer

DOCUMENT_BYTES = 6500
LINKS = 10
SPLICE_ROUNDS = 200
REQUESTS = 200
BENCH_JSON = os.path.join(os.path.dirname(__file__), "..",
                          "BENCH_reconstruction.json")


def record_json(**fields) -> None:
    """Merge *fields* into the repo-root benchmark record."""
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            data = json.load(handle)
    data.update(fields)
    with open(BENCH_JSON, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def build_document(document_bytes=DOCUMENT_BYTES, links=LINKS, seed=7):
    rng = random.Random(seed)
    anchors = "".join(f'<a href="/doc{k}.html">link {k}</a>'
                      for k in range(links))
    body = filler_text(rng, document_bytes - 60 * links)
    return (f"<html><head><title>bench</title></head>"
            f"<body>{anchors}<p>{body}</p></body></html>")


def best_of(runs, fn):
    best = float("inf")
    for __ in range(runs):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def test_splice_beats_full_parse(report):
    source = build_document()
    rewrite = lambda v: v + "?moved" if v.startswith("/doc") else None
    template = build_link_template(parse_html(source))

    # Sanity first: the fast path is byte-identical to the slow one.
    assert template.splice(rewrite)[0] == rewrite_html(source, rewrite)

    def full_parse():
        for __ in range(SPLICE_ROUNDS):
            rewrite_html(source, rewrite)

    def splice():
        # What the engine does per regeneration: recompute replacements
        # against current graph state, then splice.
        for __ in range(SPLICE_ROUNDS):
            template.splice_all(template.compute_replacements(rewrite))

    full_elapsed = best_of(3, full_parse)
    splice_elapsed = best_of(3, splice)
    speedup = full_elapsed / splice_elapsed
    full_us = full_elapsed / SPLICE_ROUNDS * 1e6
    splice_us = splice_elapsed / SPLICE_ROUNDS * 1e6

    report("reconstruction_fastpath_splice", "\n".join([
        f"dirty-document regeneration, {DOCUMENT_BYTES}-byte document, "
        f"{LINKS} links, {SPLICE_ROUNDS} rounds (best of 3)",
        f"  full parse pipeline:   {full_us:9.1f} us/doc",
        f"  link-template splice:  {splice_us:9.1f} us/doc",
        f"  speedup: {speedup:.1f}x",
    ]))
    record_json(document_bytes=DOCUMENT_BYTES, links=LINKS,
                full_parse_us=round(full_us, 2),
                splice_us=round(splice_us, 2),
                splice_speedup=round(speedup, 2))
    assert speedup >= 5.0


def serve_throughput(config, tmp_path, label):
    docroot = tmp_path / label
    docroot.mkdir()
    (docroot / "doc.html").write_bytes(build_document().encode("latin-1"))
    loc = Location("127.0.0.1", free_port())
    engine = DCWSEngine(loc, config, DiskStore(str(docroot)))
    with ThreadedDCWSServer(engine) as server:
        assert server.wait_ready()
        with ConnectionPool(timeout=10.0) as pool:
            request = Request(method="GET", target="/doc.html")
            for __ in range(10):
                assert pool.fetch(loc, request).status == 200
            start = time.perf_counter()
            for __ in range(REQUESTS):
                assert pool.fetch(loc, request).status == 200
            elapsed = time.perf_counter() - start
        hits = engine.response_cache.stats.hits
    return REQUESTS / elapsed, hits


def test_response_cache_serve_throughput(report, tmp_path):
    base = dict(stats_interval=60.0, pinger_interval=60.0)
    uncached_rps, __ = serve_throughput(
        ServerConfig(response_cache_entries=0, byte_cache_bytes=0, **base),
        tmp_path, "uncached")
    cached_rps, hits = serve_throughput(
        ServerConfig(**base), tmp_path, "cached")
    gain = cached_rps / uncached_rps

    report("reconstruction_fastpath_cache", "\n".join([
        f"hot-document serve throughput, {REQUESTS} pooled GETs, "
        f"disk-backed store",
        f"  caches off (store read per request): {uncached_rps:9.1f} req/s",
        f"  response cache on:                   {cached_rps:9.1f} req/s",
        f"  gain: {gain:.2f}x   response-cache hits={hits}",
    ]))
    record_json(serve_requests=REQUESTS,
                uncached_rps=round(uncached_rps, 1),
                cached_rps=round(cached_rps, 1),
                response_cache_gain=round(gain, 3),
                response_cache_hits=hits)
    assert hits >= REQUESTS  # the hot path really rode the cache
    # Throughput must not regress; the absolute gain depends on the
    # host's disk/loopback speed, so the bound is deliberately lenient.
    assert gain > 0.8
