"""Ablation — user think time (paper future work, section 6).

The paper's custom benchmark used zero think time, so each simulated
client exerts maximal pressure.  With human-scale think time each client
demands far less; the same cluster therefore supports many more *users*
at the same connection rate.  This bench quantifies that relationship.
"""

import pytest

from repro.bench.figures import ablation_think_time


@pytest.fixture(scope="module")
def result(scale):
    return ablation_think_time(scale)


def test_think_time_regenerate(benchmark, result, report):
    benchmark.pedantic(lambda: None, rounds=1)
    report("ablation_think_time", result.format())


def test_zero_think_time_maximizes_pressure(result):
    by_think = {row[0]: row[1] for row in result.rows}
    zero = by_think[0.0]
    assert all(zero >= cps for cps in by_think.values())


def test_per_client_demand_falls_with_think_time(result):
    per_client = [row[2] for row in result.rows]  # ordered by think time
    assert per_client == sorted(per_client, reverse=True)


def test_longer_thinking_lowers_load_monotonically(result):
    cps_values = [row[1] for row in result.rows]
    assert cps_values == sorted(cps_values, reverse=True)
