"""Ablation — bookmark / access-log-replay traffic (sections 4.4, 6).

A synthesized access log (pre-migration URLs, the way bookmarks and
search-engine indexes address a site) is replayed against a warmed
cluster while ordinary walkers browse.  Shape claims:

- stale URLs still succeed — the home answers 301 and the co-op serves;
- the redirect fraction is substantial on a warmed cluster (most
  documents have migrated) but every request completes;
- the concurrent walker population keeps its throughput.
"""

import pytest

from repro.bench.figures import ablation_bookmarks


@pytest.fixture(scope="module")
def result(scale):
    return ablation_bookmarks(scale)


def test_bookmarks_regenerate(benchmark, result, report):
    benchmark.pedantic(lambda: None, rounds=1)
    report("ablation_bookmarks", result.format())


def test_replay_traffic_flows(result):
    assert result.replay_requests > 100


def test_stale_urls_redirect_then_succeed(result):
    assert result.replay_redirected > 0
    # Every stale request completes (redirects terminate in 200s).
    assert result.replay_succeeded + result.replay_redirected >= \
        result.replay_requests * 0.95


def test_redirects_common_on_warmed_cluster(result):
    # With ~3/4 of documents migrated, a large share of original-URL
    # requests must bounce through a 301.
    assert result.redirect_fraction > 0.2


def test_walkers_unharmed(result):
    assert result.walker_cps > 0
