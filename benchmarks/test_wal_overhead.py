"""Write-ahead journal overhead on the serve path.

Durability is only free if the hot path stays hot: the WAL's design
goal is that ``fsync="interval"`` (the default) costs nearly nothing
per request, with ``"always"`` available when a deployment wants
zero-loss acknowledgements and is willing to pay the fsync.

The measurement drives a real :class:`ThreadedDCWSServer` on loopback
with a pooled keep-alive client.  The workload is deliberately
mutation-heavy — every ``UPDATE_EVERY``-th operation is a content
update (journaled) among plain GETs (never journaled) — because a pure
read workload would show zero WAL cost by construction.  Four modes run
over identical operation streams:

- ``none``      — no journal attached (the pre-durability baseline);
- ``off``       — journal appends, OS flush only;
- ``interval``  — journal appends, periodic group fsync (the default);
- ``always``    — every journaled mutation fsyncs before returning.

Acceptance: ``interval`` throughput within 10% of the no-WAL baseline.
Numbers land in ``benchmarks/results/wal_overhead.txt`` and the
machine-readable ``BENCH_wal.json`` at the repo root.
"""

import json
import os
import socket
import time

from repro.client.pool import ConnectionPool
from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.messages import Request
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.server.threaded import ThreadedDCWSServer

BENCH_JSON = os.path.join(os.path.dirname(__file__), "..",
                          "BENCH_wal.json")

UPDATE_EVERY = 5        # one journaled update per four served GETs
WARMUP = 30

DOC = b"<html>" + b"x" * 2048 + b"</html>"
SITE = {"/doc.html": DOC, "/other.html": DOC}


def operations(scale) -> int:
    return 400 if scale.name == "quick" else 1500


def record_json(**fields) -> None:
    """Merge *fields* into the repo-root benchmark record."""
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            data = json.load(handle)
    data.update(fields)
    with open(BENCH_JSON, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def run_mode(mode: str, tmp_path, ops: int) -> float:
    """Ops/second for one durability mode over the standard stream."""
    wal_fsync = mode if mode in ("off", "interval", "always") else "interval"
    config = ServerConfig(stats_interval=60.0, pinger_interval=60.0,
                          validation_interval=60.0,
                          migration_hit_threshold=1e9,
                          wal_fsync=wal_fsync)
    loc = Location("127.0.0.1", free_port())
    engine = DCWSEngine(loc, config, MemoryStore(dict(SITE)))
    journal_path = (None if mode == "none"
                    else str(tmp_path / f"{mode}.wal"))
    server = ThreadedDCWSServer(engine, tick_period=0.05,
                                journal_path=journal_path)
    server.start()
    try:
        with ConnectionPool(timeout=10.0) as pool:
            request = Request(method="GET", target="/doc.html")

            def one_op(index: int) -> None:
                if index % UPDATE_EVERY == 0:
                    with server._lock:
                        engine.update_document(
                            "/other.html", DOC + b"<!--%d-->" % index)
                else:
                    assert pool.fetch(loc, request).status == 200

            for index in range(WARMUP):
                one_op(index)
            start = time.perf_counter()
            for index in range(ops):
                one_op(index)
            elapsed = time.perf_counter() - start
    finally:
        server.stop()
    return ops / elapsed


def test_wal_overhead(report, scale, tmp_path):
    ops = operations(scale)
    rates = {}
    for mode in ("none", "off", "interval", "always"):
        rates[mode] = run_mode(mode, tmp_path, ops)

    baseline = rates["none"]
    relative = {mode: rates[mode] / baseline for mode in rates}
    lines = [
        f"WAL overhead, {ops} ops (1 update per {UPDATE_EVERY} ops, "
        f"{len(DOC)}-byte document), threaded front end",
        f"  {'mode':<10} {'ops/s':>10} {'vs no-WAL':>10}",
    ]
    for mode in ("none", "off", "interval", "always"):
        lines.append(f"  {mode:<10} {rates[mode]:>10.1f} "
                     f"{relative[mode]:>9.2%}")
    report("wal_overhead", "\n".join(lines))

    record_json(
        operations=ops,
        update_every=UPDATE_EVERY,
        ops_per_second={m: round(r, 1) for m, r in rates.items()},
        relative_to_baseline={m: round(r, 4) for m, r in relative.items()},
    )

    # The default policy must be near-free: within 10% of no-WAL.
    assert relative["interval"] >= 0.90, (
        f"interval fsync cost too high: {relative['interval']:.2%} "
        f"of baseline (rates {rates})")
    # And "off" certainly must not beat the laws of physics by much /
    # regress either.
    assert relative["off"] >= 0.85
