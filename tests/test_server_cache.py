"""Unit tests for the serve-path caches (byte cache + response cache)."""

import pytest

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.errors import DocumentNotFound
from repro.http.messages import Request
from repro.server.cache import (
    CachedResponse,
    CachingStore,
    LRUByteCache,
    ResponseCache,
)
from repro.server.engine import DCWSEngine, EngineReply
from repro.server.filestore import DiskStore, MemoryStore

HOME = Location("home", 8001)
COOP = Location("coop", 8002)

SITE = {
    "/index.html": b'<html><a href="d.html">D</a><a href="e.html">E</a>'
                   b'<img src="i.gif"></html>',
    "/d.html": b'<html><a href="e.html">E</a></html>',
    "/e.html": b"<html>leaf</html>",
    "/i.gif": b"GIF89a" + b"x" * 100,
}


def make_engine(location=HOME, site=None, peers=(COOP,), store=None,
                **config_kwargs):
    config_kwargs.setdefault("stats_interval", 1.0)
    config_kwargs.setdefault("migration_hit_threshold", 1.0)
    config = ServerConfig(**config_kwargs)
    if store is None:
        store = MemoryStore(site if site is not None else SITE)
    engine = DCWSEngine(location, config, store,
                        entry_points=["/index.html"], peers=peers)
    engine.initialize(0.0)
    return engine


def get(engine, path, now=1.0, headers=None, method="GET"):
    request = Request(method=method, target=path)
    if headers:
        for name, value in headers.items():
            request.headers.set(name, value)
    return engine.handle_request(request, now)


class TestLRUByteCache:
    def test_get_put_and_counters(self):
        cache = LRUByteCache(1024)
        assert cache.get("/a") is None
        cache.put("/a", b"xyz")
        assert cache.get("/a") == b"xyz"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_evicts_least_recently_used(self):
        cache = LRUByteCache(10)
        cache.put("/a", b"aaaa")
        cache.put("/b", b"bbbb")
        cache.get("/a")                 # /b is now the LRU entry
        cache.put("/c", b"cccc")        # 12 bytes > 10: evict /b
        assert cache.get("/a") == b"aaaa"
        assert cache.get("/b") is None
        assert cache.get("/c") == b"cccc"
        assert cache.stats.evictions == 1
        assert cache.used_bytes <= 10

    def test_oversized_value_not_cached(self):
        cache = LRUByteCache(4)
        cache.put("/big", b"x" * 10)
        assert cache.get("/big") is None
        assert len(cache) == 0

    def test_zero_capacity_disables_storage(self):
        cache = LRUByteCache(0)
        cache.put("/a", b"")
        assert cache.get("/a") is None
        assert len(cache) == 0

    def test_invalidate_and_counter(self):
        cache = LRUByteCache(1024)
        cache.put("/a", b"a")
        cache.invalidate("/a")
        cache.invalidate("/missing")    # no-op, still counted once below
        assert cache.get("/a") is None
        assert cache.stats.invalidations == 1

    def test_replacing_entry_adjusts_used_bytes(self):
        cache = LRUByteCache(1024)
        cache.put("/a", b"aaaa")
        cache.put("/a", b"aa")
        assert cache.used_bytes == 2
        assert cache.get("/a") == b"aa"


class TestCachingStore:
    def test_get_fills_and_hits(self):
        store = CachingStore(MemoryStore({"/a": b"data"}), 1024)
        assert store.get("/a") == b"data"
        assert store.get("/a") == b"data"
        assert store.cache.stats.misses == 1
        assert store.cache.stats.hits == 1

    def test_put_updates_cache_and_inner(self):
        inner = MemoryStore({"/a": b"old"})
        store = CachingStore(inner, 1024)
        store.get("/a")
        store.put("/a", b"new")
        assert store.get("/a") == b"new"
        assert inner.get("/a") == b"new"

    def test_delete_invalidates(self):
        store = CachingStore(MemoryStore({"/a": b"data"}), 1024)
        store.get("/a")
        store.delete("/a")
        with pytest.raises(DocumentNotFound):
            store.get("/a")

    def test_contains_and_names_delegate(self):
        store = CachingStore(MemoryStore({"/a": b"data"}), 1024)
        assert "/a" in store
        assert "/b" not in store
        assert store.names() == ["/a"]
        assert store.size("/a") == 4


class TestStoreContains:
    def test_disk_store_contains_without_listing(self, tmp_path):
        (tmp_path / "a.html").write_bytes(b"<html></html>")
        store = DiskStore(str(tmp_path))
        assert "/a.html" in store
        assert "/missing.html" not in store
        assert "/../escape" not in store

    def test_memory_store_contains(self):
        store = MemoryStore({"/a": b"x"})
        assert "/a" in store
        assert "/b" not in store


class TestResponseCache:
    def entry(self, body=b"data"):
        return CachedResponse(body=body, content_length=len(body),
                              content_type="text/html", version="1")

    def test_keyed_by_name_version_method(self):
        cache = ResponseCache(8)
        cache.put("/a", 1, "GET", self.entry())
        assert cache.get("/a", 1, "GET") is not None
        assert cache.get("/a", 2, "GET") is None
        assert cache.get("/a", 1, "HEAD") is None
        assert cache.get("/b", 1, "GET") is None

    def test_entry_bound_eviction(self):
        cache = ResponseCache(2)
        cache.put("/a", 1, "GET", self.entry())
        cache.put("/b", 1, "GET", self.entry())
        cache.get("/a", 1, "GET")
        cache.put("/c", 1, "GET", self.entry())
        assert cache.get("/a", 1, "GET") is not None
        assert cache.get("/b", 1, "GET") is None
        assert cache.stats.evictions == 1

    def test_invalidate_drops_every_version_and_method(self):
        cache = ResponseCache(8)
        cache.put("/a", 1, "GET", self.entry())
        cache.put("/a", 2, "GET", self.entry())
        cache.put("/a", 2, "HEAD", self.entry(body=b""))
        cache.put("/b", 1, "GET", self.entry())
        assert cache.invalidate("/a") == 3
        assert cache.get("/a", 2, "GET") is None
        assert cache.get("/b", 1, "GET") is not None

    def test_disabled_when_zero_entries(self):
        cache = ResponseCache(0)
        assert not cache.enabled
        cache.put("/a", 1, "GET", self.entry())
        assert cache.get("/a", 1, "GET") is None

    def test_name_index_survives_eviction(self):
        # The per-name invalidation index must not retain keys the LRU
        # already evicted (or re-invalidation would KeyError) and must
        # keep covering the entries that remain.
        cache = ResponseCache(2)
        cache.put("/a", 1, "GET", self.entry())
        cache.put("/a", 2, "GET", self.entry())
        cache.put("/a", 3, "GET", self.entry())  # evicts ("/a", 1)
        assert cache.invalidate("/a") == 2
        assert cache.invalidate("/a") == 0
        assert len(cache) == 0

    def test_invalidate_unknown_name_is_noop(self):
        cache = ResponseCache(4)
        assert cache.invalidate("/missing") == 0
        assert cache.stats.invalidations == 0

    def test_put_same_key_twice_indexes_once(self):
        cache = ResponseCache(4)
        cache.put("/a", 1, "GET", self.entry())
        cache.put("/a", 1, "GET", self.entry(body=b"newer"))
        assert cache.invalidate("/a") == 1
        assert len(cache) == 0


class TestEngineResponseCache:
    def test_repeat_serve_hits_cache(self):
        engine = make_engine()
        first = get(engine, "/e.html")
        second = get(engine, "/e.html", now=2.0)
        assert first.response.body == second.response.body == SITE["/e.html"]
        assert engine.response_cache.stats.hits == 1
        # Cached replies still count hits for migration policy.
        assert engine.graph.get("/e.html").hits == 2

    def test_head_and_get_cached_separately(self):
        engine = make_engine()
        get(engine, "/e.html")
        head = get(engine, "/e.html", method="HEAD")
        assert head.response.body == b""
        assert head.response.headers.get_int("content-length") == \
            len(SITE["/e.html"])
        cached_head = get(engine, "/e.html", method="HEAD", now=2.0)
        assert cached_head.response.body == b""
        assert cached_head.response.headers.get_int("content-length") == \
            len(SITE["/e.html"])

    def test_update_document_invalidates(self):
        engine = make_engine()
        get(engine, "/e.html")
        engine.update_document("/e.html", b"<html>edited</html>")
        reply = get(engine, "/e.html", now=2.0)
        assert reply.response.body == b"<html>edited</html>"

    def test_conditional_get_not_cached_as_304(self):
        engine = make_engine()
        full = get(engine, "/e.html")
        version = full.response.headers.get("X-DCWS-Version")
        conditional = get(engine, "/e.html", now=2.0,
                          headers={"X-DCWS-Version": version})
        assert conditional.response.status == 304
        # A later unconditional GET still returns the full entity.
        assert get(engine, "/e.html", now=3.0).response.body == SITE["/e.html"]

    def test_migration_regeneration_splices_and_invalidates(self):
        engine = make_engine()
        stale = get(engine, "/index.html")
        assert b"d.html" in stale.response.body
        engine.policy.force_migrate("/d.html", COOP, now=1.5)
        reply = get(engine, "/index.html", now=2.0)
        assert b"http://coop:8002/~migrate/home/8001/d.html" in \
            reply.response.body
        assert reply.reconstructed and reply.spliced
        assert engine.stats.splices == 1
        assert engine.stats.reconstructions == 1

    def test_link_templates_disabled_falls_back_to_full_parse(self):
        engine = make_engine(link_templates=False)
        engine.policy.force_migrate("/d.html", COOP, now=0.5)
        reply = get(engine, "/index.html")
        assert b"http://coop:8002/~migrate/home/8001/d.html" in \
            reply.response.body
        assert reply.reconstructed and not reply.spliced
        assert engine.stats.reconstructions == 1
        assert engine.stats.splices == 0
        assert engine.stats.template_builds == 0

    def test_splice_output_matches_full_parse_output(self):
        spliced = make_engine()
        full = make_engine(link_templates=False)
        for engine in (spliced, full):
            engine.policy.force_migrate("/d.html", COOP, now=0.5)
        assert get(spliced, "/index.html").response.body == \
            get(full, "/index.html").response.body

    def test_disk_store_wrapped_in_byte_cache(self, tmp_path):
        (tmp_path / "index.html").write_bytes(SITE["/index.html"])
        engine = make_engine(store=DiskStore(str(tmp_path)))
        assert isinstance(engine.store, CachingStore)
        get(engine, "/index.html")
        get(engine, "/index.html", now=2.0)
        counters = engine.cache_counters()
        assert "byte_cache" in counters
        assert counters["response_cache"]["hits"] == 1

    def test_byte_cache_disabled_by_config(self, tmp_path):
        (tmp_path / "index.html").write_bytes(SITE["/index.html"])
        engine = make_engine(store=DiskStore(str(tmp_path)),
                             byte_cache_bytes=0)
        assert isinstance(engine.store, DiskStore)

    def test_memory_store_not_double_cached(self):
        engine = make_engine()
        assert isinstance(engine.store, MemoryStore)

    def test_cache_counters_shape(self):
        engine = make_engine()
        counters = engine.cache_counters()
        assert set(counters) >= {"templates", "response_cache"}
        assert "hits" in counters["response_cache"]
        assert "hit_rate" in counters["response_cache"]

    def test_admin_caches_endpoint(self):
        engine = make_engine()
        get(engine, "/e.html")
        get(engine, "/e.html", now=2.0)
        reply = get(engine, "/~dcws/caches", now=3.0)
        assert reply.response.status == 200
        text = reply.response.body.decode()
        assert "response_cache:" in text
        assert "hits" in text

    def test_status_page_reports_splices(self):
        engine = make_engine()
        engine.policy.force_migrate("/d.html", COOP, now=0.5)
        get(engine, "/index.html")
        text = get(engine, "/~dcws/status", now=2.0).response.body.decode()
        assert "via template splice" in text
