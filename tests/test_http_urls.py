"""Unit tests for URL parsing, joining, and path utilities."""

import pytest

from repro.errors import URLError
from repro.http.urls import (
    URL,
    join_url,
    normalize_path,
    parse_url,
    split_path,
    strip_fragment,
)


class TestParse:
    def test_basic(self):
        url = parse_url("http://host/path/doc.html")
        assert (url.host, url.port, url.path) == ("host", 80, "/path/doc.html")
        assert url.query is None

    def test_explicit_port(self):
        url = parse_url("http://host:8080/x")
        assert url.port == 8080
        assert url.authority == "host:8080"

    def test_default_port_omitted_from_authority(self):
        assert parse_url("http://host/x").authority == "host"

    def test_no_path_becomes_root(self):
        assert parse_url("http://host").path == "/"

    def test_query_preserved(self):
        url = parse_url("http://h/cgi?x=1&y=2")
        assert url.query == "x=1&y=2"
        assert url.request_target == "/cgi?x=1&y=2"

    def test_empty_query_distinct_from_none(self):
        assert parse_url("http://h/a?").query == ""
        assert parse_url("http://h/a").query is None

    def test_str_round_trip(self):
        for text in ("http://h/", "http://h:81/a/b.html",
                     "http://h/a?q=1", "http://h:8080/"):
            assert str(parse_url(text)) == text

    @pytest.mark.parametrize("bad", [
        "https://h/x", "ftp://h/x", "host/path", "http://", "http:///x",
        "http://h:port/x", "",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(URLError):
            parse_url(bad)

    def test_rejects_bad_port_range(self):
        with pytest.raises(URLError):
            URL("h", 0)
        with pytest.raises(URLError):
            URL("h", 70000)

    def test_rejects_relative_path(self):
        with pytest.raises(URLError):
            URL("h", 80, "relative.html")

    def test_same_server(self):
        a = parse_url("http://h:81/x")
        assert a.same_server(parse_url("http://h:81/y"))
        assert not a.same_server(parse_url("http://h:82/x"))
        assert not a.same_server(parse_url("http://g:81/x"))


class TestJoin:
    BASE = parse_url("http://host/dir/page.html")

    def test_absolute_url(self):
        joined = join_url(self.BASE, "http://other:81/x.html")
        assert str(joined) == "http://other:81/x.html"

    def test_absolute_path(self):
        assert join_url(self.BASE, "/top.html").path == "/top.html"

    def test_relative_sibling(self):
        assert join_url(self.BASE, "img/x.gif").path == "/dir/img/x.gif"

    def test_relative_parent(self):
        assert join_url(self.BASE, "../up.html").path == "/up.html"

    def test_parent_never_escapes_root(self):
        assert join_url(self.BASE, "../../../../x.html").path == "/x.html"

    def test_dot_segments(self):
        assert join_url(self.BASE, "./same.html").path == "/dir/same.html"

    def test_fragment_only_points_to_base(self):
        joined = join_url(self.BASE, "#section2")
        assert joined.path == self.BASE.path

    def test_query_reference(self):
        joined = join_url(self.BASE, "cgi?x=1")
        assert joined.path == "/dir/cgi"
        assert joined.query == "x=1"

    def test_protocol_relative(self):
        joined = join_url(self.BASE, "//other/x.html")
        assert (joined.host, joined.path) == ("other", "/x.html")

    def test_keeps_base_server_for_relative(self):
        base = parse_url("http://h:8080/a/b.html")
        joined = join_url(base, "c.html")
        assert (joined.host, joined.port) == ("h", 8080)


class TestPathHelpers:
    def test_split_path(self):
        assert split_path("/a/b/c.html") == ["a", "b", "c.html"]
        assert split_path("/") == []
        assert split_path("/a//b/") == ["a", "b"]

    def test_split_path_requires_absolute(self):
        with pytest.raises(URLError):
            split_path("a/b")

    def test_normalize_path(self):
        assert normalize_path("/a/./b/../c") == "/a/c"
        assert normalize_path("/../x") == "/x"
        assert normalize_path("/a/b/") == "/a/b/"
        assert normalize_path("/") == "/"

    def test_strip_fragment(self):
        assert strip_fragment("a.html#top") == "a.html"
        assert strip_fragment("a.html") == "a.html"
        assert strip_fragment("#only") == ""


class TestQueryOnlyReference:
    """Regression: join_url dropped the new query of a '?a=1' reference."""

    BASE = parse_url("http://host/dir/page.html?old=0")

    def test_query_only_replaces_query(self):
        joined = join_url(self.BASE, "?page=2")
        assert joined.path == self.BASE.path
        assert joined.query == "page=2"

    def test_query_only_empty_query(self):
        joined = join_url(self.BASE, "?")
        assert joined.path == self.BASE.path
        assert joined.query == ""

    def test_empty_reference_keeps_base_query(self):
        joined = join_url(self.BASE, "")
        assert joined.query == "old=0"

    def test_fragment_only_keeps_base_query(self):
        joined = join_url(self.BASE, "#top")
        assert joined.query == "old=0"


class TestHostCaseInsensitivity:
    """Regression: same_server compared hosts case-sensitively."""

    def test_parse_lowercases_host(self):
        assert parse_url("http://HOST.Example:81/x").host == "host.example"

    def test_construction_lowercases_host(self):
        assert URL("HOST.Example", 81).host == "host.example"

    def test_same_server_mixed_case(self):
        a = parse_url("http://HOST.example:80/x")
        b = parse_url("http://host.EXAMPLE:80/y")
        assert a.same_server(b)

    def test_path_case_preserved(self):
        url = parse_url("http://HOST/Dir/Page.HTML")
        assert url.path == "/Dir/Page.HTML"
