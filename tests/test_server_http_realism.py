"""Engine-level tests for serve-path HTTP realism: client-validator
conditional GETs (304 off the response cache with zero store reads), gzip
variants, single-range 206/416, and tiered overload shedding."""

import gzip

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.content import etag_for, last_modified_for
from repro.http.messages import Request
from repro.server.engine import DCWSEngine, EngineReply, PullFromHome
from repro.server.filestore import MemoryStore

HOME = Location("home", 8001)
COOP = Location("coop", 8002)

BIG_PAGE = (b'<html><a href="/d.html">D</a>'
            + b"<p>lorem ipsum dolor sit amet</p>" * 64 + b"</html>")

SITE = {
    "/index.html": b'<html><a href="d.html">D</a></html>',
    "/d.html": BIG_PAGE,
    "/i.gif": b"GIF89a" + b"x" * 2048,
}


class CountingStore(MemoryStore):
    """A store that counts document reads, to prove 304s never touch it."""

    def __init__(self, initial=None):
        super().__init__(initial)
        self.reads = 0

    def get(self, name):
        self.reads += 1
        return super().get(name)


def make_engine(site=None, store=None, **config_kwargs):
    config_kwargs.setdefault("stats_interval", 1.0)
    config = ServerConfig(**config_kwargs)
    if store is None:
        store = MemoryStore(site if site is not None else SITE)
    engine = DCWSEngine(HOME, config, store,
                        entry_points=["/index.html"], peers=(COOP,))
    engine.initialize(0.0)
    return engine


def get(engine, path, now=1.0, headers=None, method="GET"):
    request = Request(method=method, target=path)
    if headers:
        for name, value in headers.items():
            request.headers.set(name, value)
    reply = engine.handle_request(request, now)
    assert isinstance(reply, EngineReply)
    return reply.response


class TestValidatorsOn200:
    def test_200_carries_etag_and_last_modified(self):
        response = get(make_engine(), "/d.html")
        assert response.status == 200
        assert response.headers.get("ETag") == etag_for("/d.html", 0)
        assert response.headers.get("Last-Modified") == last_modified_for(0)
        assert response.headers.get("Accept-Ranges") == "bytes"

    def test_head_carries_validators_without_body(self):
        response = get(make_engine(), "/d.html", method="HEAD")
        assert response.status == 200
        assert response.body == b""
        assert response.headers.get("ETag") == etag_for("/d.html", 0)

    def test_update_changes_both_validators(self):
        engine = make_engine()
        before = get(engine, "/d.html")
        engine.update_document("/d.html", b"<html>new</html>")
        engine.regenerate_dirty()
        after = get(engine, "/d.html", now=2.0)
        assert after.headers.get("ETag") != before.headers.get("ETag")
        assert after.headers.get("Last-Modified") != \
            before.headers.get("Last-Modified")


class TestConditionalGet:
    def test_if_none_match_returns_304(self):
        engine = make_engine()
        first = get(engine, "/d.html")
        second = get(engine, "/d.html", now=2.0,
                     headers={"If-None-Match": first.headers.get("ETag")})
        assert second.status == 304
        assert second.body == b""
        assert second.headers.get("ETag") == first.headers.get("ETag")
        assert engine.stats.conditional_304s == 1

    def test_304_reads_nothing_from_the_store(self):
        store = CountingStore(SITE)
        engine = make_engine(store=store)
        etag = get(engine, "/d.html").headers.get("ETag")
        reads_after_fill = store.reads
        for step in range(5):
            response = get(engine, "/d.html", now=2.0 + step,
                           headers={"If-None-Match": etag})
            assert response.status == 304
        assert store.reads == reads_after_fill

    def test_if_modified_since_returns_304(self):
        engine = make_engine()
        first = get(engine, "/d.html")
        second = get(engine, "/d.html", now=2.0, headers={
            "If-Modified-Since": first.headers.get("Last-Modified")})
        assert second.status == 304

    def test_stale_validator_after_update_gets_200(self):
        engine = make_engine()
        etag = get(engine, "/d.html").headers.get("ETag")
        engine.update_document("/d.html", b"<html>edited</html>")
        engine.regenerate_dirty()
        response = get(engine, "/d.html", now=2.0,
                       headers={"If-None-Match": etag})
        assert response.status == 200
        assert response.body == b"<html>edited</html>"

    def test_peer_version_header_still_works(self):
        engine = make_engine()
        response = get(engine, "/d.html", headers={"X-DCWS-Version": "0"})
        assert response.status == 304
        assert engine.stats.conditional_304s == 0  # peer path, not client


class TestGzip:
    def test_negotiated_gzip_round_trips(self):
        engine = make_engine()
        identity = get(engine, "/d.html")
        compressed = get(engine, "/d.html", now=2.0,
                         headers={"Accept-Encoding": "gzip"})
        assert compressed.headers.get("Content-Encoding") == "gzip"
        assert compressed.headers.get("Vary") == "Accept-Encoding"
        assert gzip.decompress(compressed.body) == identity.body
        assert len(compressed.body) < len(identity.body)
        assert int(compressed.headers.get("Content-Length")) == \
            len(compressed.body)
        assert engine.stats.gzip_responses == 1
        assert engine.stats.gzip_bytes_saved == \
            len(identity.body) - len(compressed.body)

    def test_identity_response_still_varies(self):
        # A compressed variant exists, so even the identity answer must
        # carry Vary or a shared cache would poison one encoding with
        # the other.
        response = get(make_engine(), "/d.html")
        assert response.headers.get("Vary") == "Accept-Encoding"
        assert response.headers.get("Content-Encoding") is None

    def test_incompressible_content_not_gzipped(self):
        response = get(make_engine(), "/i.gif",
                       headers={"Accept-Encoding": "gzip"})
        assert response.headers.get("Content-Encoding") is None
        assert response.headers.get("Vary") is None

    def test_small_bodies_not_gzipped(self):
        response = get(make_engine(), "/index.html",
                       headers={"Accept-Encoding": "gzip"})
        assert response.headers.get("Content-Encoding") is None

    def test_gzip_disabled_by_config(self):
        response = get(make_engine(gzip_enabled=False), "/d.html",
                       headers={"Accept-Encoding": "gzip"})
        assert response.headers.get("Content-Encoding") is None
        assert response.headers.get("Vary") is None

    def test_q_zero_refuses_gzip(self):
        response = get(make_engine(), "/d.html",
                       headers={"Accept-Encoding": "gzip;q=0"})
        assert response.headers.get("Content-Encoding") is None


class TestRange:
    def test_closed_range_206(self):
        engine = make_engine()
        full = get(engine, "/d.html").body
        response = get(engine, "/d.html", now=2.0,
                       headers={"Range": "bytes=0-9"})
        assert response.status == 206
        assert response.body == full[:10]
        assert response.headers.get("Content-Range") == \
            f"bytes 0-9/{len(full)}"
        assert int(response.headers.get("Content-Length")) == 10
        assert engine.stats.responses_206 == 1

    def test_suffix_range(self):
        engine = make_engine()
        full = get(engine, "/d.html").body
        response = get(engine, "/d.html", now=2.0,
                       headers={"Range": "bytes=-20"})
        assert response.status == 206
        assert response.body == full[-20:]

    def test_range_wins_over_gzip(self):
        # Ranges address the identity representation; mixing them with a
        # compressed transfer would make offsets ambiguous.
        engine = make_engine()
        full = get(engine, "/d.html").body
        response = get(engine, "/d.html", now=2.0, headers={
            "Range": "bytes=0-9", "Accept-Encoding": "gzip"})
        assert response.status == 206
        assert response.headers.get("Content-Encoding") is None
        assert response.body == full[:10]

    def test_unsatisfiable_range_416(self):
        engine = make_engine()
        size = len(get(engine, "/d.html").body)
        response = get(engine, "/d.html", now=2.0,
                       headers={"Range": f"bytes={size + 5}-"})
        assert response.status == 416
        assert response.headers.get("Content-Range") == f"bytes */{size}"
        assert response.body == b""
        assert engine.stats.responses_416 == 1

    def test_malformed_range_ignored(self):
        response = get(make_engine(), "/d.html",
                       headers={"Range": "bytes=5-2"})
        assert response.status == 200

    def test_if_none_match_beats_range(self):
        engine = make_engine()
        etag = get(engine, "/d.html").headers.get("ETag")
        response = get(engine, "/d.html", now=2.0, headers={
            "If-None-Match": etag, "Range": "bytes=0-9"})
        assert response.status == 304


class TestTieredShedding:
    def test_dirty_regeneration_shed_under_overload(self):
        engine = make_engine()
        engine.update_document("/d.html", BIG_PAGE)  # dirty again
        engine.overloaded = True
        response = get(engine, "/d.html")
        assert response.status == 503
        assert response.headers.get("Retry-After") == "1"
        assert engine.stats.regenerations_shed == 1

    def test_clean_document_served_under_overload(self):
        engine = make_engine()
        engine.overloaded = True
        assert get(engine, "/d.html").status == 200

    def test_304_served_under_overload(self):
        engine = make_engine()
        etag = get(engine, "/d.html").headers.get("ETag")
        engine.overloaded = True
        response = get(engine, "/d.html", now=2.0,
                       headers={"If-None-Match": etag})
        assert response.status == 304

    def test_shedding_disabled_by_config(self):
        engine = make_engine(tiered_shedding=False)
        engine.update_document("/d.html", BIG_PAGE)
        engine.overloaded = True
        assert get(engine, "/d.html").status == 200

    def test_unfetched_pull_shed_under_overload(self):
        coop = make_coop()
        key = f"/~migrate/{HOME.host}/{HOME.port}/d.html"
        coop.overloaded = True
        response = get(coop, key)
        assert response.status == 503
        assert coop.stats.pulls_shed == 1

    def test_fetched_copy_served_under_overload(self):
        coop, key = make_fetched_coop()
        coop.overloaded = True
        assert get(coop, key).status == 200


def make_coop():
    coop = DCWSEngine(COOP, ServerConfig(), MemoryStore({}), peers=(HOME,))
    coop.initialize(0.0)
    return coop


def make_fetched_coop():
    """A co-op whose hosted copy of /d.html has already been pulled."""
    coop = make_coop()
    home = make_engine()
    key = f"/~migrate/{HOME.host}/{HOME.port}/d.html"
    pull = coop.handle_request(Request("GET", key), 0.5)
    assert isinstance(pull, PullFromHome)
    upstream = home.handle_request(pull.request, 0.6)
    coop.complete_pull(pull, upstream.response, 0.7)
    return coop, key


class TestCoopValidators:
    def test_hosted_copy_serves_validators(self):
        coop, key = make_fetched_coop()
        version = coop.hosted[key].version
        response = get(coop, key)
        assert response.status == 200
        assert response.headers.get("ETag") == etag_for(key, version)
        assert response.headers.get("Last-Modified") == \
            last_modified_for(version)

    def test_hosted_copy_conditional_304(self):
        coop, key = make_fetched_coop()
        etag = get(coop, key).headers.get("ETag")
        response = get(coop, key, now=2.0, headers={"If-None-Match": etag})
        assert response.status == 304
        assert coop.stats.conditional_304s == 1

    def test_hosted_copy_gzip(self):
        coop, key = make_fetched_coop()
        identity = get(coop, key)
        response = get(coop, key, now=2.0,
                       headers={"Accept-Encoding": "gzip"})
        assert response.headers.get("Content-Encoding") == "gzip"
        assert gzip.decompress(response.body) == identity.body
