"""Unit tests for the bench result objects' logic (no simulation runs)."""

import pytest

from repro.bench.figures import (
    BaselineComparison,
    CpsVsBpsResult,
    Figure6Result,
    Figure7Result,
    Figure8Result,
    HeterogeneityAblation,
    ReplicationAblation,
    SelectionAblation,
    Table2Result,
    Table2Row,
    ThinkTimeAblation,
)


class TestFigure6Result:
    RESULT = Figure6Result(dataset="lod", rows=[
        (2, 16, 700.0, 2e6), (2, 48, 1700.0, 5e6),
        (4, 16, 750.0, 2e6), (4, 48, 3300.0, 9e6),
    ])

    def test_series_for(self):
        assert self.RESULT.series_for(2) == [(16, 700.0, 2e6),
                                             (48, 1700.0, 5e6)]

    def test_peaks(self):
        assert self.RESULT.peak_cps(2) == 1700.0
        assert self.RESULT.peak_bps(4) == 9e6
        assert self.RESULT.peak_cps(16) == 0.0

    def test_format_mentions_dataset(self):
        assert "LOD" in self.RESULT.format()


class TestFigure7Result:
    RESULT = Figure7Result(rows=[
        ("lod", 2, 2000.0, 5e6), ("lod", 8, 7600.0, 20e6),
        ("sblog", 2, 1100.0, 22e6), ("sblog", 8, 2800.0, 58e6),
    ])

    def test_scaling_ratio(self):
        assert self.RESULT.scaling_ratio("lod", 2, 8) == pytest.approx(3.8)
        assert self.RESULT.scaling_ratio("sblog", 2, 8) == \
            pytest.approx(2800.0 / 1100.0)

    def test_scaling_ratio_bps(self):
        assert self.RESULT.scaling_ratio("lod", 2, 8, metric="bps") == \
            pytest.approx(4.0)

    def test_zero_base_is_infinite(self):
        result = Figure7Result(rows=[("x", 1, 0.0, 0.0), ("x", 2, 5.0, 1.0)])
        assert result.scaling_ratio("x", 1, 2) == float("inf")


class TestFigure8Result:
    def make(self, cps):
        return Figure8Result(dataset="lod", servers=4,
                             times=[float(i) for i in range(len(cps))],
                             cps=cps, bps=[c * 1000 for c in cps],
                             migrations=10)

    def test_accelerating_curve_detected(self):
        exponential = self.make([100, 110, 125, 150, 200, 300, 500, 800])
        assert exponential.is_accelerating()

    def test_decelerating_curve_rejected(self):
        logarithmic = self.make([100, 400, 600, 700, 750, 775, 790, 795])
        assert not logarithmic.is_accelerating()

    def test_short_series_not_accelerating(self):
        assert not self.make([1, 2]).is_accelerating()

    def test_warmup_gain(self):
        assert self.make([100, 400]).warmup_gain() == 4.0
        assert self.make([0.0, 100]).warmup_gain() == float("inf")

    def test_growth_profile(self):
        assert self.make([1, 3, 6]).cps_growth() == [2, 3]


class TestTable2:
    def test_higher_with_low_expectation(self):
        row = Table2Row("T_pi", 10, 40, "pings", 20.0, 5.0,
                        expectation="higher_with_low")
        assert row.matches_expectation
        bad = Table2Row("T_pi", 10, 40, "pings", 5.0, 20.0,
                        expectation="higher_with_low")
        assert not bad.matches_expectation

    def test_higher_with_high_expectation(self):
        row = Table2Row("X", 1, 2, "m", 1.0, 2.0,
                        expectation="higher_with_high")
        assert row.matches_expectation

    def test_result_lookup(self):
        result = Table2Result(rows=[Table2Row("T_st", 1, 2, "m", 3.0, 1.0,
                                              "higher_with_low")])
        assert result.row("T_st").metric == "m"
        with pytest.raises(KeyError):
            result.row("T_zz")
        assert "T_st" in result.format()


class TestSmallResults:
    def test_cps_vs_bps_orders(self):
        result = CpsVsBpsResult(rows=[
            ("lod", 3000.0, 9e6, 3000.0),
            ("sequoia", 300.0, 40e6, 130000.0),
        ])
        assert result.cps_order() == ["lod", "sequoia"]
        assert result.bps_order() == ["sequoia", "lod"]

    def test_baseline_lookup(self):
        result = BaselineComparison(rows=[
            ("lod", "dcws", 8, 6000.0, 1e7, 7e5)])
        assert result.steady_cps_of("lod", "dcws", 8) == 6000.0
        with pytest.raises(KeyError):
            result.steady_cps_of("lod", "dcws", 2)

    def test_replication_gain(self):
        result = ReplicationAblation("sblog", 8, cps_without=2000.0,
                                     cps_with=2500.0, replications=3)
        assert result.gain == 1.25
        zero = ReplicationAblation("sblog", 8, 0.0, 1.0, 0)
        assert zero.gain == float("inf")

    def test_selection_lookup(self):
        result = SelectionAblation(rows=[("paper", 100.0, 5, 50)])
        assert result.row("paper")[2] == 5
        with pytest.raises(KeyError):
            result.row("nope")

    def test_heterogeneity_lookup(self):
        result = HeterogeneityAblation(rows=[
            ("homogeneous", "dcws", 3000.0, 0.0)])
        assert result.cps_of("homogeneous", "dcws") == 3000.0
        with pytest.raises(KeyError):
            result.cps_of("heterogeneous", "dcws")

    def test_think_time_format(self):
        result = ThinkTimeAblation(rows=[(0.0, 3000.0, 30.0)])
        assert "think time" in result.format()
