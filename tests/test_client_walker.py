"""Unit tests for the synchronous Algorithm 2 walker."""

import random

import pytest

from repro.client.walker import (
    ExponentialBackoff,
    FetchOutcome,
    RandomWalker,
    select_next_link,
)
from repro.http.urls import URL


class TestBackoff:
    def test_doubling(self):
        backoff = ExponentialBackoff()
        assert [backoff.on_drop() for __ in range(4)] == [1.0, 2.0, 4.0, 8.0]

    def test_ceiling(self):
        backoff = ExponentialBackoff(base=1.0, ceiling=4.0)
        delays = [backoff.on_drop() for __ in range(5)]
        assert delays[-1] == 4.0

    def test_success_resets(self):
        backoff = ExponentialBackoff()
        backoff.on_drop()
        backoff.on_drop()
        backoff.on_success()
        assert backoff.on_drop() == 1.0

    def test_custom_base(self):
        backoff = ExponentialBackoff(base=0.3)
        assert backoff.on_drop() == pytest.approx(0.3)
        assert backoff.on_drop() == pytest.approx(0.6)


class TestSelectNextLink:
    def test_empty_returns_none(self):
        assert select_next_link([], random.Random(0)) is None

    def test_uniform_choice(self):
        rng = random.Random(0)
        seen = {select_next_link(["a", "b", "c"], rng) for __ in range(100)}
        assert seen == {"a", "b", "c"}


class FakeSite:
    """An in-memory site answering walker fetches."""

    def __init__(self):
        self.pages = {
            "http://h/index.html": FetchOutcome(
                status=200, size=1000,
                links=["a.html", "b.html"], images=["i.gif"]),
            "http://h/a.html": FetchOutcome(status=200, size=500,
                                            links=["b.html"]),
            "http://h/b.html": FetchOutcome(status=200, size=500, links=[]),
            "http://h/i.gif": FetchOutcome(status=200, size=2000),
        }
        self.requests = []
        self.drop_next = 0
        self.refuse_next = 0

    def fetch(self, url: URL) -> FetchOutcome:
        self.requests.append(str(url))
        if self.refuse_next > 0:
            self.refuse_next -= 1
            raise ConnectionRefusedError("injected")
        if self.drop_next > 0:
            self.drop_next -= 1
            return FetchOutcome(status=503)
        return self.pages.get(str(url), FetchOutcome(status=404))


def make_walker(site, **kwargs):
    kwargs.setdefault("seed", 42)
    kwargs.setdefault("sleep", lambda s: None)
    return RandomWalker(["http://h/index.html"], site.fetch, **kwargs)


class TestWalker:
    def test_requires_entry_points(self):
        with pytest.raises(ValueError):
            RandomWalker([], lambda u: FetchOutcome(200))

    def test_sequence_starts_at_entry(self):
        site = FakeSite()
        walker = make_walker(site)
        walker.run_sequence()
        assert site.requests[0] == "http://h/index.html"

    def test_images_fetched_with_page(self):
        site = FakeSite()
        walker = make_walker(site)
        walker.run_sequence()
        assert "http://h/i.gif" in site.requests

    def test_cache_prevents_refetch_within_sequence(self):
        site = FakeSite()
        walker = make_walker(site, min_steps=25, max_steps=25)
        walker.run_sequence()
        # index.html fetched exactly once despite possible revisits.
        assert site.requests.count("http://h/index.html") == 1

    def test_cache_reset_between_sequences(self):
        site = FakeSite()
        walker = make_walker(site)
        walker.run(sequences=3)
        assert site.requests.count("http://h/index.html") == 3

    def test_503_backs_off_and_retries(self):
        site = FakeSite()
        site.drop_next = 2
        slept = []
        walker = make_walker(site, sleep=slept.append)
        walker.run_sequence()
        assert walker.stats.drops == 2
        assert slept == [1.0, 2.0]
        assert walker.stats.backoff_time == 3.0

    def test_stats_accumulate(self):
        site = FakeSite()
        walker = make_walker(site)
        stats = walker.run(sequences=5)
        assert stats.sequences == 5
        assert stats.requests >= 5
        assert stats.bytes_received > 0

    def test_sequence_ends_on_leaf_page(self):
        site = FakeSite()
        # Every page links only to b.html, which has no links.
        walker = make_walker(site, min_steps=25, max_steps=25)
        walker.run_sequence()
        assert walker.stats.steps <= 25

    def test_404_ends_sequence(self):
        site = FakeSite()
        site.pages["http://h/index.html"] = FetchOutcome(
            status=200, size=10, links=["missing.html"])
        walker = make_walker(site)
        walker.run_sequence()
        assert walker.stats.errors >= 0  # sequence terminated, no crash

    def test_transport_exception_counted(self):
        def broken(url):
            raise OSError("connection refused")

        walker = RandomWalker(["http://h/x.html"], broken,
                              sleep=lambda s: None)
        walker.run_sequence()
        assert walker.stats.errors == 1

    def test_transport_failure_backs_off_then_recovers(self):
        site = FakeSite()
        site.refuse_next = 2
        slept = []
        walker = make_walker(site, sleep=slept.append)
        walker.run_sequence()
        # Same capped exponential backoff schedule as 503 drops.
        assert slept[:2] == [1.0, 2.0]
        assert walker.stats.transport_failures == 2
        assert walker.stats.transport_retries == 2
        assert walker.stats.errors == 0
        assert walker.stats.sequences == 1

    def test_transport_retries_are_bounded(self):
        site = FakeSite()
        site.refuse_next = 50  # never recovers within the retry budget
        walker = make_walker(site, max_transport_retries=2)
        walker.run_sequence()
        # One initial attempt plus two retries, then the fetch is dropped
        # and counted as an error (the walk moves on, no crash).
        assert walker.stats.transport_failures == 3
        assert walker.stats.transport_retries == 2
        assert walker.stats.errors == 1

    def test_transport_success_resets_backoff(self):
        site = FakeSite()
        site.refuse_next = 1
        slept = []
        walker = make_walker(site, sleep=slept.append)
        walker.run_sequence()
        site.refuse_next = 1
        walker.run_sequence()
        # Each recovery reset the schedule: both retries waited the base.
        assert slept == [1.0, 1.0]
