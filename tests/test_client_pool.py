"""ConnectionPool: persistent per-peer channels for server-to-server HTTP."""

import socket
import time

import pytest

from repro.client.breaker import (
    BreakerOpenError,
    CLOSED,
    CircuitBreaker,
    OPEN,
)
from repro.client.pool import ConnectionPool, _Channel
from repro.errors import HTTPError
from repro.faults import FaultPlan, FaultRule
from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.messages import Request
from repro.server.engine import DCWSEngine
from repro.server.filestore import MemoryStore
from repro.server.threaded import ThreadedDCWSServer

SITE = {"/a.html": b"<html>pooled</html>"}


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def make_server(**config_kwargs) -> ThreadedDCWSServer:
    loc = Location("127.0.0.1", free_port())
    config = ServerConfig(stats_interval=60.0, pinger_interval=60.0,
                          **config_kwargs)
    engine = DCWSEngine(loc, config, MemoryStore(dict(SITE)))
    return ThreadedDCWSServer(engine)


@pytest.fixture()
def server():
    srv = make_server()
    srv.start()
    try:
        yield srv
    finally:
        srv.stop()


def get(pool: ConnectionPool, server: ThreadedDCWSServer, target="/a.html"):
    peer = Location("127.0.0.1", server.port)
    return pool.fetch(peer, Request(method="GET", target=target))


def test_channel_reused_across_fetches(server):
    with ConnectionPool() as pool:
        for __ in range(5):
            assert get(pool, server).status == 200
        assert pool.requests == 5
        assert pool.opens == 1
        assert pool.reuses == 4
        assert pool.idle_count() == 1


def test_head_request_over_pooled_channel(server):
    """HEAD's Content-Length describes the omitted body; the channel must
    not be poisoned by reading body bytes that never come."""
    peer = Location("127.0.0.1", server.port)
    with ConnectionPool() as pool:
        for __ in range(3):
            response = pool.fetch(peer, Request(method="HEAD",
                                                target="/a.html"))
            assert response.status == 200
            assert response.body == b""
        assert pool.opens == 1
        assert pool.reuses == 2


def test_head_error_response_keeps_channel_clean(server):
    """Regression: error paths used to leave the body in HEAD responses,
    so the pinger's ``HEAD /`` (a 404 on most servers) dirtied the channel
    and ping exchanges were never pooled."""
    peer = Location("127.0.0.1", server.port)
    with ConnectionPool() as pool:
        for __ in range(3):
            response = pool.fetch(peer, Request(method="HEAD", target="/"))
            assert response.status == 404
            assert response.body == b""
        assert pool.opens == 1
        assert pool.reuses == 2


def test_stale_idle_channel_evicted_and_retried(server):
    with ConnectionPool() as pool:
        assert get(pool, server).status == 200
        # Simulate the peer silently dropping the idle channel.
        for idle in pool._idle.values():
            for channel in idle:
                channel.sock.close()
        assert get(pool, server).status == 200
        assert pool.evictions >= 1
        assert pool.opens == 2


def test_peer_closing_connection_prevents_pooling():
    srv = make_server(keep_alive=False)
    srv.start()
    try:
        with ConnectionPool() as pool:
            for __ in range(3):
                assert get(pool, srv).status == 200
            # Every response said Connection: close, so nothing is pooled.
            assert pool.idle_count() == 0
            assert pool.opens == 3
            assert pool.reuses == 0
    finally:
        srv.stop()


def test_idle_channels_bounded_per_peer():
    pool = ConnectionPool(max_per_peer=1)
    a, b = socket.socketpair()
    c, d = socket.socketpair()
    try:
        pool._give_back("h:80", _Channel(a))
        pool._give_back("h:80", _Channel(c))
        assert pool.idle_count() == 1
    finally:
        pool.close()
        for sock in (a, b, c, d):
            try:
                sock.close()
            except OSError:
                pass


def test_close_drains_idle_channels(server):
    pool = ConnectionPool()
    assert get(pool, server).status == 200
    assert pool.idle_count() == 1
    pool.close()
    assert pool.idle_count() == 0
    # A closed pool still serves fetches; it just stops retaining channels.
    assert get(pool, server).status == 200
    assert pool.idle_count() == 0


def test_unreachable_peer_raises():
    dead = Location("127.0.0.1", free_port())
    with ConnectionPool(timeout=0.5) as pool:
        with pytest.raises(OSError):
            pool.fetch(dead, Request(method="GET", target="/a.html"))


def test_non_idempotent_request_not_replayed_on_stale_channel(server):
    """A POST whose exchange dies on a previously-idle channel must raise,
    not silently replay: the peer may already have executed it."""
    peer = Location("127.0.0.1", server.port)
    with ConnectionPool() as pool:
        assert get(pool, server).status == 200
        for idle in pool._idle.values():
            for channel in idle:
                channel.sock.close()
        with pytest.raises((OSError, HTTPError)):
            pool.fetch(peer, Request(method="POST", target="/a.html"))
        assert pool.evictions == 1
        assert pool.opens == 1  # no second connection was attempted


def test_breaker_opens_and_fastfails_toward_dead_peer():
    dead = Location("127.0.0.1", free_port())
    breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0,
                             max_reset_timeout=60.0, jitter=0.0)
    with ConnectionPool(timeout=0.5, breaker=breaker) as pool:
        for __ in range(2):
            with pytest.raises(OSError):
                pool.fetch(dead, Request(method="GET", target="/a.html"))
        assert breaker.state(str(dead)) == OPEN
        # The third fetch never touches the network.
        with pytest.raises(BreakerOpenError):
            pool.fetch(dead, Request(method="GET", target="/a.html"))
        assert pool.breaker_fastfails == 1
        assert pool.opens == 0  # create_connection always failed/skipped


def test_breaker_recovers_through_half_open_probe(server):
    plan = FaultPlan([FaultRule(kind="connect_refused", max_injections=2)])
    breaker = CircuitBreaker(failure_threshold=2, reset_timeout=0.05,
                             jitter=0.0)
    peer = Location("127.0.0.1", server.port)
    with ConnectionPool(breaker=breaker, faults=plan) as pool:
        for __ in range(2):
            with pytest.raises(ConnectionRefusedError):
                get(pool, server)
        assert breaker.is_open(str(peer))
        time.sleep(0.06)
        # Past the backoff window the probe is admitted, succeeds (the
        # fault rule is exhausted), and closes the breaker.
        assert get(pool, server).status == 200
        assert breaker.state(str(peer)) == CLOSED


def test_injected_connect_refused_surfaces_then_clears(server):
    plan = FaultPlan([FaultRule(kind="connect_refused", max_injections=1)])
    with ConnectionPool(faults=plan) as pool:
        with pytest.raises(ConnectionRefusedError):
            get(pool, server)
        assert get(pool, server).status == 200
        assert [event.kind for event in plan.injected] == ["connect_refused"]


def test_injected_reset_on_reused_channel_replayed_for_get(server):
    plan = FaultPlan([FaultRule(kind="reset", skip_first=1,
                                max_injections=1)])
    with ConnectionPool(faults=plan) as pool:
        assert get(pool, server).status == 200
        # The reused channel takes the reset; GET is replayed on a fresh
        # connection and the caller never sees the fault.
        assert get(pool, server).status == 200
        assert pool.evictions == 1
        assert pool.opens == 2


def test_injected_corruption_rejected_and_replayed_for_get(server):
    """A seeded in-transit byte flip fails the X-DCWS-Digest check; the
    pool rejects the body and replays the GET on a fresh channel, so the
    caller only ever sees verified bytes."""
    plan = FaultPlan([FaultRule(kind="corrupt", max_injections=1)], seed=11)
    with ConnectionPool(faults=plan) as pool:
        response = get(pool, server)
        assert response.status == 200
        assert response.body == SITE["/a.html"]
        assert pool.digest_rejects == 1
        assert pool.opens == 2  # corrupt exchange evicted its channel
        assert [event.kind for event in plan.injected] == ["corrupt"]


def test_injected_corruption_exhausts_retry_and_raises(server):
    """Persistent corruption (every exchange flipped) must surface as an
    error, not an infinite retry loop or a silently corrupt body."""
    from repro.errors import DigestMismatch

    plan = FaultPlan([FaultRule(kind="corrupt")], seed=11)
    with ConnectionPool(faults=plan) as pool:
        with pytest.raises(DigestMismatch):
            get(pool, server)
        assert pool.digest_rejects == 2  # first try + one replay


def test_injected_reset_on_reused_channel_raises_for_post(server):
    plan = FaultPlan([FaultRule(kind="reset", skip_first=1)])
    peer = Location("127.0.0.1", server.port)
    with ConnectionPool(faults=plan) as pool:
        assert get(pool, server).status == 200
        with pytest.raises(ConnectionResetError):
            pool.fetch(peer, Request(method="POST", target="/a.html"))
        assert pool.opens == 1
