"""Engine edge cases beyond the main behavioural suite."""

import pytest

from repro.core.config import ServerConfig
from repro.core.document import Location
from repro.http.messages import Request
from repro.server.engine import DCWSEngine, EngineReply, PullFromHome
from repro.server.filestore import DiskStore, MemoryStore

HOME = Location("home", 8001)
COOP = Location("coop", 8002)

SITE = {
    "/index.html": b'<html><a href="sub/d.html">D</a></html>',
    "/sub/d.html": b'<html><a href="../index.html">up</a>'
                   b'<a href="e.html">sib</a></html>',
    "/sub/e.html": b"<html>leaf</html>",
}


def make_engine(store=None, **config_kwargs):
    engine = DCWSEngine(HOME, ServerConfig(**config_kwargs),
                        store if store is not None else MemoryStore(SITE),
                        entry_points=["/index.html"], peers=[COOP])
    engine.initialize(0.0)
    return engine


class TestRelativeLinkResolution:
    def test_subdirectory_links_resolved(self):
        engine = make_engine()
        record = engine.graph.get("/sub/d.html")
        assert record.link_to == {"/index.html", "/sub/e.html"}

    def test_rewrite_of_parent_relative_link(self):
        engine = make_engine()
        engine.policy.force_migrate("/sub/e.html", COOP, 0.5)
        reply = engine.handle_request(Request("GET", "/sub/d.html"), 1.0)
        assert b"http://coop:8002/~migrate/home/8001/sub/e.html" in \
            reply.response.body
        # The parent-relative link is absolutized but stays home.
        assert b"http://home:8001/index.html" in reply.response.body


class TestMethodHandling:
    def test_head_on_migrated_document_redirects(self):
        engine = make_engine()
        engine.policy.force_migrate("/sub/d.html", COOP, 0.5)
        reply = engine.handle_request(Request("HEAD", "/sub/d.html"), 1.0)
        assert reply.response.status == 301

    def test_post_treated_like_get_for_static_content(self):
        engine = make_engine()
        reply = engine.handle_request(
            Request("POST", "/sub/e.html", body=b"x=1"), 1.0)
        assert reply.response.status == 200


class TestDiskStoreEngine:
    def test_engine_over_disk_store(self, tmp_path):
        store = DiskStore(str(tmp_path))
        for name, data in SITE.items():
            store.put(name, data)
        engine = DCWSEngine(HOME, ServerConfig(), store,
                            entry_points=["/index.html"], peers=[COOP])
        engine.initialize(0.0)
        assert len(engine.graph) == len(SITE)
        reply = engine.handle_request(Request("GET", "/sub/d.html"), 1.0)
        assert reply.response.status == 200
        # Regeneration writes back to disk.
        engine.policy.force_migrate("/sub/e.html", COOP, 2.0)
        reply = engine.handle_request(Request("GET", "/sub/d.html"), 3.0)
        assert reply.reconstructed
        assert b"~migrate" in store.get("/sub/d.html")


class TestAccounting:
    def test_bytes_sent_accumulates(self):
        engine = make_engine()
        engine.handle_request(Request("GET", "/sub/e.html"), 1.0)
        assert engine.stats.bytes_sent == len(SITE["/sub/e.html"])

    def test_redirect_costs_no_body_bytes_of_document(self):
        engine = make_engine()
        engine.policy.force_migrate("/sub/e.html", COOP, 0.5)
        before = engine.stats.bytes_sent
        reply = engine.handle_request(Request("GET", "/sub/e.html"), 1.0)
        assert reply.response.status == 301
        # The redirect body is small (no document payload).
        assert engine.stats.bytes_sent - before < 300

    def test_hosted_hits_reported_once(self):
        coop = DCWSEngine(COOP, ServerConfig(validation_interval=5.0),
                          MemoryStore(), peers=[HOME])
        coop.initialize(0.0)
        home = make_engine()
        pull = coop.handle_request(
            Request("GET", "/~migrate/home/8001/sub/e.html"), 1.0)
        assert isinstance(pull, PullFromHome)
        upstream = home.handle_request(pull.request, 1.1)
        coop.complete_pull(pull, upstream.response, 1.2)
        for __ in range(5):
            coop.handle_request(
                Request("GET", "/~migrate/home/8001/sub/e.html"), 1.3)
        first = [a for a in coop.tick(30.0) if a.kind == "validate"]
        reported = first[0].request.headers.get_int("X-DCWS-Hosted-Hits")
        assert reported == 6  # pull + five serves
        # Immediately re-validating reports nothing new.
        coop.validation.mark(first[0].key, 30.0)
        second = [a for a in coop.tick(60.0) if a.kind == "validate"]
        assert second[0].request.headers.get("X-DCWS-Hosted-Hits") is None


class TestPathEdgeCases:
    def test_query_string_ignored_for_lookup(self):
        engine = make_engine()
        reply = engine.handle_request(
            Request("GET", "/sub/e.html?utm=x"), 1.0)
        assert reply.response.status == 200

    def test_dot_segments_cannot_escape(self):
        engine = make_engine()
        reply = engine.handle_request(
            Request("GET", "/../../etc/passwd"), 1.0)
        assert reply.response.status == 404

    def test_trailing_garbage_is_404_not_error(self):
        engine = make_engine()
        reply = engine.handle_request(Request("GET", "/sub/"), 1.0)
        assert isinstance(reply, EngineReply)
        assert reply.response.status == 404
